"""Broken-link checker for the repo's Markdown docs (stdlib only, CI gate).

Scans Markdown files for inline links and images (``[text](target)`` /
``![alt](target)``) and validates every **relative** target:

* file targets must exist on disk, resolved from the linking file's
  directory (an optional ``#fragment`` is split off first);
* same-file anchors (``#section``) and fragments on ``.md`` targets must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* absolute URLs (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on network reachability — as are relative targets
  that climb out of the checkout (GitHub-side URLs like the CI badge's
  ``../../actions/...`` path, which only resolve on github.com).

Exit status is non-zero when any link is broken, with one line per
offender (``file:line: target — reason``), so the CI docs job fails
loudly and the offending link is clickable in the log.

Run:  python tools/check_links.py README.md docs
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline links/images. The target group stops at whitespace or ')' which
#: covers every link in this repo; optional '"title"' suffixes are dropped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, hyphenate spaces."""
    text = re.sub(r"[`*_]|\[|\]|\(.*?\)", "", heading)
    text = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return re.sub(r" +", "-", text)


def headings(path: str) -> List[str]:
    slugs: List[str] = []
    with open(path, encoding="utf-8") as f:
        in_code = False
        for line in f:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.append(slugify(match.group(1)))
    return slugs


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    with open(path, encoding="utf-8") as f:
        in_code = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def check_file(path: str) -> List[str]:
    errors: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES):
            continue
        name, _, fragment = target.partition("#")
        if not name:  # same-file anchor
            if fragment and slugify(fragment) not in headings(path):
                errors.append(f"{path}:{lineno}: #{fragment} — no such heading")
            continue
        resolved = os.path.normpath(os.path.join(base, name))
        if not resolved.startswith(os.getcwd() + os.sep):
            # Climbs out of the checkout — a GitHub-side URL like the CI
            # badge's ../../actions/... path; nothing to verify on disk.
            continue
        if not os.path.exists(resolved):
            errors.append(f"{path}:{lineno}: {target} — file does not exist")
            continue
        if fragment and resolved.endswith(".md"):
            if slugify(fragment) not in headings(resolved):
                errors.append(
                    f"{path}:{lineno}: {target} — no heading "
                    f"#{fragment} in {os.path.relpath(resolved)}"
                )
    return errors


def collect(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".md")
                )
        elif path.endswith(".md"):
            files.append(path)
        else:
            sys.exit(f"not a Markdown file or directory: {path}")
    return files


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", default=["README.md", "docs"],
        help="Markdown files and/or directories to scan (default: README.md docs)",
    )
    args = parser.parse_args()
    files = collect(args.paths or ["README.md", "docs"])
    if not files:
        sys.exit("no Markdown files found — wrong invocation directory?")
    errors: List[str] = []
    n_links = 0
    for path in files:
        n_links += sum(1 for _ in iter_links(path))
        errors.extend(check_file(path))
    if errors:
        print("\n".join(errors))
        sys.exit(f"{len(errors)} broken link(s) across {len(files)} file(s)")
    print(f"link check passed: {n_links} links across {len(files)} files")


if __name__ == "__main__":
    main()
