"""Broken-link checker for the repo's Markdown docs (stdlib only, CI gate).

Scans Markdown files for inline links and images (``[text](target)`` /
``![alt](target)``) and validates every **relative** target:

* file targets must exist on disk, resolved from the linking file's
  directory (an optional ``#fragment`` is split off first);
* same-file anchors (``#section``) and fragments on ``.md`` targets must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens);
* absolute URLs (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on network reachability — as are relative targets
  that climb out of the checkout (GitHub-side URLs like the CI badge's
  ``../../actions/...`` path, which only resolve on github.com).

It also keeps documented config tables honest: under a heading that
names a ``*Config`` class (``## Cascade (`ServingConfig.cascade`)``),
every table row whose first cell is a bare-identifier code span must
name a real dataclass field of that class. Classes and their fields are
parsed (``ast``, no import) from the serving config module
(``--serving-config``, default ``src/repro/serving/config.py``; the
check is skipped when the file does not exist). Attribute paths resolve
through nested config fields, so ``ServingConfig.http`` scopes its table
to ``HttpConfig``'s fields.

Exit status is non-zero when any link is broken, with one line per
offender (``file:line: target — reason``), so the CI docs job fails
loudly and the offending link is clickable in the log.

Run:  python tools/check_links.py README.md docs
"""

from __future__ import annotations

import argparse
import ast
import os
import re
import sys
from typing import Dict, Iterator, List, Optional, Tuple

#: Inline links/images. The target group stops at whitespace or ')' which
#: covers every link in this repo; optional '"title"' suffixes are dropped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

#: A heading that scopes the tables below it to a config class: the class
#: name itself (``HttpConfig``) or an attribute path into a nested config
#: field (``ServingConfig.http`` -> HttpConfig).
CONFIG_HEADING_RE = re.compile(r"\b(\w*Config)\b(?:\.(\w+))?")
#: A table row's first cell documenting one field: a bare identifier in a
#: code span, optionally followed by prose (type, default).
FIELD_CELL_RE = re.compile(r"`([A-Za-z_][A-Za-z0-9_]*)`")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, hyphenate spaces."""
    text = re.sub(r"[`*_]|\[|\]|\(.*?\)", "", heading)
    text = re.sub(r"[^\w\- ]", "", text.strip().lower())
    return re.sub(r" +", "-", text)


def headings(path: str) -> List[str]:
    slugs: List[str] = []
    with open(path, encoding="utf-8") as f:
        in_code = False
        for line in f:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.append(slugify(match.group(2)))
    return slugs


def config_fields(config_path: str) -> Dict[str, Dict[str, Optional[str]]]:
    """``class -> {field -> nested *Config class or None}`` via ast, no import.

    Every ``*Config`` class's annotated assignments are its fields; a
    field whose annotation mentions another ``*Config`` class (e.g.
    ``http: Optional[HttpConfig]``) maps to that class so documented
    attribute paths like ``ServingConfig.http`` resolve through it.
    """
    with open(config_path, encoding="utf-8") as f:
        tree = ast.parse(f.read(), filename=config_path)
    classes: Dict[str, Dict[str, Optional[str]]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Config"):
            continue
        fields: Dict[str, Optional[str]] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                nested = re.search(r"\b(\w+Config)\b", ast.unparse(stmt.annotation))
                fields[stmt.target.id] = nested.group(1) if nested else None
        classes[node.name] = fields
    return classes


def resolve_config_heading(
    heading: str, classes: Dict[str, Dict[str, Optional[str]]]
) -> Optional[str]:
    """The config class a heading scopes its tables to, if any."""
    for match in CONFIG_HEADING_RE.finditer(heading):
        cls, attr = match.group(1), match.group(2)
        if cls not in classes:
            continue
        if attr is None:
            return cls
        nested = classes[cls].get(attr)
        if nested in classes:
            return nested
    return None


def check_config_tables(
    path: str, classes: Dict[str, Dict[str, Optional[str]]]
) -> Tuple[List[str], int]:
    """Validate field code spans in tables under config-class headings.

    Returns ``(errors, n_checked)``. Only the *first* cell of a table row
    is a field declaration; later cells may cite unrelated identifiers.
    A heading scopes everything until the next heading of the same or
    higher level (tracked with a context stack).
    """
    errors: List[str] = []
    n_checked = 0
    stack: List[Tuple[int, Optional[str]]] = []  # (heading level, class)
    with open(path, encoding="utf-8") as f:
        in_code = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            heading = HEADING_RE.match(line)
            if heading:
                level = len(heading.group(1))
                while stack and stack[-1][0] >= level:
                    stack.pop()
                stack.append(
                    (level, resolve_config_heading(heading.group(2), classes))
                )
                continue
            current = next(
                (cls for _, cls in reversed(stack) if cls is not None), None
            )
            if current is None or not line.lstrip().startswith("|"):
                continue
            cells = line.strip().strip("|").split("|")
            if not cells:
                continue
            first = cells[0].strip()
            match = FIELD_CELL_RE.match(first)
            if match is None or set(first) <= {"-", ":", " "}:
                continue  # separator row, header row, or prose cell
            field = match.group(1)
            if field in classes[current]:
                n_checked += 1
            else:
                errors.append(
                    f"{path}:{lineno}: `{field}` — not a field of "
                    f"{current} (documented table is stale)"
                )
    return errors, n_checked


def iter_links(path: str) -> Iterator[Tuple[int, str]]:
    with open(path, encoding="utf-8") as f:
        in_code = False
        for lineno, line in enumerate(f, start=1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def check_file(path: str) -> List[str]:
    errors: List[str] = []
    base = os.path.dirname(os.path.abspath(path))
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES):
            continue
        name, _, fragment = target.partition("#")
        if not name:  # same-file anchor
            if fragment and slugify(fragment) not in headings(path):
                errors.append(f"{path}:{lineno}: #{fragment} — no such heading")
            continue
        resolved = os.path.normpath(os.path.join(base, name))
        if not resolved.startswith(os.getcwd() + os.sep):
            # Climbs out of the checkout — a GitHub-side URL like the CI
            # badge's ../../actions/... path; nothing to verify on disk.
            continue
        if not os.path.exists(resolved):
            errors.append(f"{path}:{lineno}: {target} — file does not exist")
            continue
        if fragment and resolved.endswith(".md"):
            if slugify(fragment) not in headings(resolved):
                errors.append(
                    f"{path}:{lineno}: {target} — no heading "
                    f"#{fragment} in {os.path.relpath(resolved)}"
                )
    return errors


def collect(paths: List[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in sorted(names)
                    if n.endswith(".md")
                )
        elif path.endswith(".md"):
            files.append(path)
        else:
            sys.exit(f"not a Markdown file or directory: {path}")
    return files


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", default=["README.md", "docs"],
        help="Markdown files and/or directories to scan (default: README.md docs)",
    )
    parser.add_argument(
        "--serving-config", default="src/repro/serving/config.py",
        help="config module whose *Config dataclass fields gate documented "
        "config tables (skipped when the file does not exist)",
    )
    args = parser.parse_args()
    files = collect(args.paths or ["README.md", "docs"])
    if not files:
        sys.exit("no Markdown files found — wrong invocation directory?")
    classes = (
        config_fields(args.serving_config)
        if os.path.exists(args.serving_config) else {}
    )
    errors: List[str] = []
    n_links = 0
    n_fields = 0
    for path in files:
        n_links += sum(1 for _ in iter_links(path))
        errors.extend(check_file(path))
        if classes:
            field_errors, checked = check_config_tables(path, classes)
            errors.extend(field_errors)
            n_fields += checked
    if errors:
        print("\n".join(errors))
        sys.exit(
            f"{len(errors)} broken link(s)/stale field(s) "
            f"across {len(files)} file(s)"
        )
    print(
        f"link check passed: {n_links} links and {n_fields} documented "
        f"config fields across {len(files)} files"
    )


if __name__ == "__main__":
    main()
