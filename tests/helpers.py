"""Shared test utilities: brute-force reference implementations.

These enumerate joins naively (exponential time) for tiny schemas, providing
ground truth to validate the linear-time join-count DP, the sampler's
distribution, and the exact executor.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table


def row_key_values(table: Table, cols, row: int) -> Tuple:
    """Raw (decoded) key values of one row; None components mean NULL."""
    return tuple(table.column(c).decode([table.codes(c)[row]])[0] for c in cols)


def matching_rows(schema: JoinSchema, edge: JoinEdge, parent_row: int) -> List[int]:
    """Child rows equi-joining with a parent row (NULL matches nothing)."""
    parent = schema.table(edge.parent)
    child = schema.table(edge.child)
    pkey = row_key_values(parent, edge.parent_columns, parent_row)
    if any(v is None for v in pkey):
        return []
    out = []
    for crow in range(child.n_rows):
        ckey = row_key_values(child, edge.child_columns, crow)
        if ckey == pkey:
            out.append(crow)
    return out


def orphan_rows(schema: JoinSchema, edge: JoinEdge) -> List[int]:
    """Child rows with no join partner in the parent table."""
    parent = schema.table(edge.parent)
    child = schema.table(edge.child)
    parent_keys = set()
    for prow in range(parent.n_rows):
        key = row_key_values(parent, edge.parent_columns, prow)
        if not any(v is None for v in key):
            parent_keys.add(key)
    out = []
    for crow in range(child.n_rows):
        ckey = row_key_values(child, edge.child_columns, crow)
        if any(v is None for v in ckey) or ckey not in parent_keys:
            out.append(crow)
    return out


FullJoinRow = Dict[str, Optional[int]]


def brute_force_full_join(schema: JoinSchema) -> List[FullJoinRow]:
    """All full-outer-join rows under SQL semantics (see counts.py docstring).

    Each row maps table name -> base row id or None (the virtual ⊥ tuple).
    Rows either carry a real root tuple, or are a single orphan *fragment*
    (shallowest real tuple in one subtree, NULL everywhere else).
    """

    def subtree(table: str, row: int) -> List[FullJoinRow]:
        """All subtree combinations below a REAL row of ``table``."""
        partial: List[FullJoinRow] = [{table: row}]
        for edge in schema.child_edges(table):
            partners = matching_rows(schema, edge, row)
            if partners:
                expansions = [
                    sub for c in partners for sub in subtree(edge.child, c)
                ]
            else:
                expansions = [{edge.child: None}]  # whole child subtree NULL
            partial = [dict(p, **e) for p, e in product(partial, expansions)]
        return partial

    all_null = {t: None for t in schema.tables}
    rows: List[FullJoinRow] = []
    root = schema.root
    for root_row in range(schema.table(root).n_rows):
        for sub in subtree(root, root_row):
            rows.append({**all_null, **sub})
    for table in schema.tables:
        edge = schema.parent_edge(table)
        if edge is None:
            continue
        for orphan in orphan_rows(schema, edge):
            for sub in subtree(table, orphan):
                rows.append({**all_null, **sub})
    return rows


def brute_force_inner_count(schema: JoinSchema, query) -> int:
    """Exact inner-join COUNT with filters by naive enumeration."""
    tables = list(query.tables)
    masks = {
        t: [True] * schema.table(t).n_rows for t in tables
    }
    for pred in query.predicates:
        pmask = pred.mask(schema.table(pred.table))
        masks[pred.table] = [bool(a and b) for a, b in zip(masks[pred.table], pmask)]

    edges_in_query = [
        e
        for e in schema.edges
        if e.parent in query.tables and e.child in query.tables
    ]
    count = 0
    for combo in product(*(range(schema.table(t).n_rows) for t in tables)):
        assignment = dict(zip(tables, combo))
        if not all(masks[t][assignment[t]] for t in tables):
            continue
        ok = True
        for edge in edges_in_query:
            pkey = row_key_values(
                schema.table(edge.parent), edge.parent_columns, assignment[edge.parent]
            )
            ckey = row_key_values(
                schema.table(edge.child), edge.child_columns, assignment[edge.child]
            )
            if any(v is None for v in pkey) or pkey != ckey:
                ok = False
                break
        if ok:
            count += 1
    return count


def paper_figure4_schema() -> JoinSchema:
    """The running example of Figure 4: A(x) -- B(x, y) -- C(y)."""
    a = Table.from_dict("A", {"x": [1, 2]})
    b = Table.from_dict("B", {"x": [1, 2, 2], "y": ["a", "b", "c"]})
    c = Table.from_dict("C", {"y": ["c", "c", "d"]})
    edges = [
        JoinEdge(parent="A", child="B", keys=(("x", "x"),)),
        JoinEdge(parent="B", child="C", keys=(("y", "y"),)),
    ]
    return JoinSchema(tables={"A": a, "B": b, "C": c}, edges=edges, root="A")
