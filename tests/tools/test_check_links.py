"""The CI docs gate's link checker: broken targets caught, valid ones pass."""

import os
import subprocess
import sys

import pytest

TOOL = os.path.join(os.path.dirname(__file__), "..", "..", "tools", "check_links.py")


def run_checker(cwd, *paths):
    return subprocess.run(
        [sys.executable, os.path.abspath(TOOL), *paths],
        cwd=cwd, capture_output=True, text=True,
    )


@pytest.fixture()
def docs_tree(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "guide.md").write_text(
        "# Guide\n\n## Deep Dive\n\nBack to [readme](../README.md#intro).\n"
    )
    (tmp_path / "README.md").write_text(
        "# Intro\n\nSee the [guide](docs/guide.md#deep-dive) and "
        "[site](https://example.com/x) and [self](#intro).\n"
    )
    return tmp_path


def test_valid_tree_passes(docs_tree):
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "link check passed" in result.stdout


def test_missing_file_and_bad_anchor_fail(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\nSee [gone](missing.md) and [bad](../README.md#nope).\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode != 0
    assert "missing.md" in result.stdout
    assert "#nope" in result.stdout
    # The failing line is clickable: file:line: target.
    assert "guide.md:3" in result.stdout


def test_links_inside_code_fences_are_ignored(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\n## Deep Dive\n\n```\n[not a link](nowhere.md)\n```\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr


def test_escaping_the_checkout_is_skipped(docs_tree):
    # GitHub-side URLs (the CI badge) resolve only on github.com.
    (docs_tree / "README.md").write_text(
        "# Intro\n\n[badge](../../actions/workflows/ci.yml/badge.svg)\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr
