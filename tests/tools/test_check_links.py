"""The CI docs gate's link checker: broken targets caught, valid ones pass."""

import os
import subprocess
import sys

import pytest

TOOL = os.path.join(os.path.dirname(__file__), "..", "..", "tools", "check_links.py")


def run_checker(cwd, *paths):
    return subprocess.run(
        [sys.executable, os.path.abspath(TOOL), *paths],
        cwd=cwd, capture_output=True, text=True,
    )


@pytest.fixture()
def docs_tree(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "guide.md").write_text(
        "# Guide\n\n## Deep Dive\n\nBack to [readme](../README.md#intro).\n"
    )
    (tmp_path / "README.md").write_text(
        "# Intro\n\nSee the [guide](docs/guide.md#deep-dive) and "
        "[site](https://example.com/x) and [self](#intro).\n"
    )
    return tmp_path


def test_valid_tree_passes(docs_tree):
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "link check passed" in result.stdout


def test_missing_file_and_bad_anchor_fail(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\nSee [gone](missing.md) and [bad](../README.md#nope).\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode != 0
    assert "missing.md" in result.stdout
    assert "#nope" in result.stdout
    # The failing line is clickable: file:line: target.
    assert "guide.md:3" in result.stdout


def test_links_inside_code_fences_are_ignored(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\n## Deep Dive\n\n```\n[not a link](nowhere.md)\n```\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr


def test_escaping_the_checkout_is_skipped(docs_tree):
    # GitHub-side URLs (the CI badge) resolve only on github.com.
    (docs_tree / "README.md").write_text(
        "# Intro\n\n[badge](../../actions/workflows/ci.yml/badge.svg)\n"
    )
    result = run_checker(docs_tree, "README.md", "docs")
    assert result.returncode == 0, result.stdout + result.stderr


# ----------------------------------------------------------------------
# Documented config-field tables checked against the dataclasses (PR 10)
# ----------------------------------------------------------------------
CONFIG_SRC = '''\
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class HttpConfig:
    host: str = "127.0.0.1"
    port: int = 0


@dataclass(frozen=True)
class CascadeConfig:
    tiers: Tuple[str, ...] = ("per_table", "neural")
    default_budget_ms: Optional[float] = None


@dataclass(frozen=True)
class ServingConfig:
    max_batch: int = 64
    http: Optional[HttpConfig] = None
    cascade: Optional[CascadeConfig] = None
'''


def run_config_checker(cwd, *paths):
    return subprocess.run(
        [
            sys.executable, os.path.abspath(TOOL),
            "--serving-config", "config.py", *paths,
        ],
        cwd=cwd, capture_output=True, text=True,
    )


@pytest.fixture()
def config_tree(tmp_path):
    (tmp_path / "config.py").write_text(CONFIG_SRC)
    (tmp_path / "docs").mkdir()
    return tmp_path


def write_doc(tree, body):
    (tree / "docs" / "config.md").write_text(body)


def test_valid_config_tables_pass_and_are_counted(config_tree):
    write_doc(
        config_tree,
        "# Config\n\n## Scheduler (`ServingConfig`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `max_batch` | flush size |\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "1 documented config fields" in result.stdout


def test_stale_field_fails_with_a_clickable_location(config_tree):
    write_doc(
        config_tree,
        "# Config\n\n## Scheduler (`ServingConfig`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `max_batchh` | typo |\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode != 0
    assert "max_batchh" in result.stdout
    assert "config.md:7" in result.stdout
    assert "ServingConfig" in result.stdout


def test_attribute_path_headings_resolve_nested_sections(config_tree):
    write_doc(
        config_tree,
        "# Config\n\n## HTTP (`ServingConfig.http`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `host` | bind |\n"
        "| `port` | 0 = ephemeral |\n\n"
        "## Cascade (`ServingConfig.cascade`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `tiers` | order |\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "3 documented config fields" in result.stdout
    # The same field names under the wrong section are stale.
    write_doc(
        config_tree,
        "# Config\n\n## Cascade (`ServingConfig.cascade`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `host` | wrong class |\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode != 0
    assert "CascadeConfig" in result.stdout


def test_a_later_heading_closes_the_config_scope(config_tree):
    write_doc(
        config_tree,
        "# Config\n\n## HTTP (`ServingConfig.http`)\n\nIntro.\n\n"
        "## Unrelated notes\n\n"
        "| Column | Meaning |\n| --- | --- |\n| `whatever` | unchecked |\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode == 0, result.stdout + result.stderr


def test_tables_inside_code_fences_are_ignored(config_tree):
    write_doc(
        config_tree,
        "# Config\n\n## Scheduler (`ServingConfig`)\n\n"
        "```\n| `max_batchh` | not real |\n```\n",
    )
    result = run_config_checker(config_tree, "docs")
    assert result.returncode == 0, result.stdout + result.stderr


def test_absent_config_module_skips_field_checking(config_tree):
    (config_tree / "config.py").unlink()
    write_doc(
        config_tree,
        "# Config\n\n## Scheduler (`ServingConfig`)\n\n"
        "| Field | Meaning |\n| --- | --- |\n| `max_batchh` | typo |\n",
    )
    # Links still checked; field validation silently off without the module.
    result = run_config_checker(config_tree, "docs")
    assert result.returncode == 0, result.stdout + result.stderr
