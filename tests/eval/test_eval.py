"""Metrics, harness, figures, and the update pipeline."""

import numpy as np
import pytest

from repro.core.config import NeuroCardConfig
from repro.errors import DataError, EstimationError
from repro.eval.figures import ascii_cdf, cdf_series, selectivity_spectrum
from repro.eval.harness import (
    evaluate_estimator,
    format_report,
    true_cardinalities,
)
from repro.eval.metrics import q_error, summarize_errors
from repro.eval.updates import partition_by_year, run_update_experiment
from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.workloads import job_light_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_clamped_at_one(self):
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.5, 0.2) == 1.0

    def test_minimum_is_one(self):
        assert q_error(42, 42) == 1.0

    def test_summary_quantiles(self):
        errors = [1.0] * 98 + [10.0, 100.0]
        s = summarize_errors(errors)
        assert s.median == 1.0
        assert s.maximum == 100.0
        assert s.p99 >= 10.0

    def test_empty_errors_rejected(self):
        with pytest.raises(EstimationError):
            summarize_errors([])


class _TruthOracle:
    """Estimator wrapper returning exact answers (harness plumbing test)."""

    size_bytes = 123

    def __init__(self, schema, counts):
        self.schema, self.counts = schema, counts

    def estimate(self, query):
        return query_cardinality(self.schema, query, counts=self.counts)


@pytest.fixture(scope="module")
def small():
    schema = job_light_schema(ImdbScale(n_title=300))
    return schema, JoinCounts(schema)


class TestHarness:
    def test_oracle_estimator_scores_one(self, small):
        schema, counts = small
        queries = job_light_queries(schema, n=10, counts=counts)
        truths = true_cardinalities(schema, queries, counts)
        res = evaluate_estimator("oracle", _TruthOracle(schema, counts), queries, truths)
        assert res.summary().maximum == 1.0
        assert res.size_bytes == 123
        assert len(res.latencies_ms) == 10

    def test_format_report_includes_paper_rows(self, small):
        schema, counts = small
        queries = job_light_queries(schema, n=5, counts=counts)
        truths = true_cardinalities(schema, queries, counts)
        res = evaluate_estimator("oracle", _TruthOracle(schema, counts), queries, truths)
        text = format_report("T", [res], paper_rows={"oracle": "1 1 1 1"})
        assert "oracle" in text
        assert "(paper)" in text


class TestFigures:
    def test_selectivity_spectrum_in_unit_interval(self, small):
        schema, counts = small
        queries = job_light_queries(schema, n=8, counts=counts)
        sels = selectivity_spectrum(schema, queries, counts)
        assert ((sels > 0) & (sels <= 1.0)).all()

    def test_cdf_series_monotone(self):
        series = cdf_series([5, 1, 3, 2, 4], n_points=5)
        values = [series[k] for k in sorted(series)]
        assert values == sorted(values)

    def test_ascii_cdf_renders(self):
        text = ascii_cdf({"a": [1e-4, 1e-2, 1.0]}, "title")
        assert "title" in text and "a" in text and "[" in text


class TestUpdatePipeline:
    def test_partitions_are_cumulative(self, small):
        schema, _ = small
        snapshots = partition_by_year(schema, n_partitions=3)
        sizes = [s.table("title").n_rows for s in snapshots]
        assert sizes == sorted(sizes)
        assert sizes[-1] == schema.table("title").n_rows
        child_sizes = [s.table("cast_info").n_rows for s in snapshots]
        assert child_sizes == sorted(child_sizes)

    def test_partitions_share_dictionaries(self, small):
        schema, _ = small
        snapshots = partition_by_year(schema, n_partitions=3)
        for snap in snapshots:
            for tname, table in snap.tables.items():
                for cname, col in table.columns.items():
                    assert (
                        col.domain_size
                        == schema.table(tname).column(cname).domain_size
                    )

    def test_rejects_single_partition(self, small):
        schema, _ = small
        with pytest.raises(DataError):
            partition_by_year(schema, n_partitions=1)

    def test_update_experiment_shapes(self, small):
        schema, counts = small
        snapshots = partition_by_year(schema, n_partitions=2)
        queries = job_light_queries(schema, n=6, counts=counts)[:4]
        config = NeuroCardConfig(
            d_emb=8, d_ff=32, n_blocks=1, train_tuples=20_000,
            learning_rate=5e-3, progressive_samples=200, sampler_threads=1,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        )
        exp = run_update_experiment(snapshots, queries, config)
        assert len(exp.row("stale")) == 2
        assert len(exp.row("fast update")) == 2
        assert len(exp.row("retrain")) == 2
        text = exp.format()
        assert "stale" in text and "retrain" in text
