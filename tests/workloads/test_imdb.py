"""Synthetic IMDB generator tests: shape, correlations, determinism."""

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.workloads.imdb import (
    DEFAULT_EXCLUDED_COLUMNS,
    ImdbScale,
    JOB_LIGHT_TABLES,
    job_light_schema,
    job_m_schema,
)

SCALE = ImdbScale(n_title=600)


@pytest.fixture(scope="module")
def light():
    return job_light_schema(SCALE)


@pytest.fixture(scope="module")
def jobm():
    return job_m_schema(SCALE)


class TestShape:
    def test_job_light_has_6_tables(self, light):
        assert set(light.tables) == set(JOB_LIGHT_TABLES)
        assert light.root == "title"

    def test_job_light_is_star(self, light):
        for edge in light.edges:
            assert edge.parent == "title"
            assert edge.keys == (("id", "movie_id"),)

    def test_job_m_has_16_tables(self, jobm):
        assert len(jobm.tables) == 16
        assert len(jobm.edges) == 15

    def test_job_m_multi_key_joins(self, jobm):
        key_columns = {e.keys[0][0] for e in jobm.edges}
        # Joins run through several distinct keys, not just title.id.
        assert len(key_columns) >= 5

    def test_deterministic_under_seed(self):
        a = job_light_schema(SCALE)
        b = job_light_schema(SCALE)
        for name in a.tables:
            assert np.array_equal(
                a.table(name).codes("movie_id" if name != "title" else "id"),
                b.table(name).codes("movie_id" if name != "title" else "id"),
            )

    def test_scale_controls_size(self):
        small = job_light_schema(ImdbScale(n_title=200))
        assert small.table("title").n_rows == 200
        assert small.table("cast_info").n_rows < SCALE.n_title * 10


class TestDataProperties:
    def test_foreign_keys_mostly_valid(self, light):
        title_ids = set(range(light.table("title").n_rows))
        ci = light.table("cast_info")
        values = ci.column("movie_id").decode(ci.codes("movie_id"))
        valid = sum(1 for v in values if v in title_ids)
        assert valid / len(values) > 0.95

    def test_null_fractions(self, light):
        title = light.table("title")
        assert title.column("production_year").has_nulls
        assert title.column("episode_nr").has_nulls
        ci = light.table("cast_info")
        assert ci.column("person_role_id").has_nulls

    def test_year_kind_correlation(self, light):
        title = light.table("title")
        years = title.codes("production_year")
        kinds = np.array(
            title.column("kind_id").decode(title.codes("kind_id"))
        )
        recent = years >= np.quantile(years[years > 0], 0.7)
        # kind 7 (episodes) concentrates in recent years by construction.
        frac_recent = (kinds[recent] == 7).mean()
        frac_old = (kinds[~recent] == 7).mean()
        assert frac_recent > frac_old

    def test_rating_year_cross_table_correlation(self, light):
        title = light.table("title")
        mii = light.table("movie_info_idx")
        movie_ids = np.array(mii.column("movie_id").decode(mii.codes("movie_id")))
        ratings = np.array(mii.column("info").decode(mii.codes("info")))
        keep = np.array([m is not None for m in movie_ids])
        years = title.codes("production_year")
        parent_years = years[movie_ids[keep].astype(np.int64)]
        rho = spearmanr(parent_years, ratings[keep]).statistic
        assert rho > 0.25

    def test_key_skew_is_zipfian(self, light):
        mk = light.table("movie_keyword")
        _, counts = np.unique(mk.codes("keyword_id"), return_counts=True)
        # Top keyword should be far more frequent than the median keyword.
        assert counts.max() > 10 * np.median(counts)

    def test_excluded_columns_exist(self, jobm):
        for full in DEFAULT_EXCLUDED_COLUMNS:
            table, col = full.split(".")
            assert col in jobm.table(table).column_names
