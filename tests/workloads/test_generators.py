"""Workload generator tests: §7.1 recipe compliance."""

import pytest

from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.workloads import (
    job_light_queries,
    job_light_ranges_queries,
    job_m_queries,
    job_light_schema,
    job_m_schema,
    workload_stats,
)
from repro.workloads.imdb import ImdbScale


@pytest.fixture(scope="module")
def light():
    schema = job_light_schema(ImdbScale(n_title=500))
    return schema, JoinCounts(schema)


@pytest.fixture(scope="module")
def jobm():
    schema = job_m_schema(ImdbScale(n_title=400))
    return schema, JoinCounts(schema)


class TestJobLight:
    def test_count_and_validity(self, light):
        schema, counts = light
        queries = job_light_queries(schema, n=30, counts=counts)
        assert len(queries) == 30
        for q in queries:
            q.validate(schema)
            assert 2 <= len(q.tables) <= 5
            assert q.tables[0] == "title"

    def test_filters_follow_the_recipe(self, light):
        schema, counts = light
        for q in job_light_queries(schema, n=30, counts=counts):
            for pred in q.predicates:
                if pred.column == "production_year":
                    assert pred.op in ("<=", ">=", "=")
                else:
                    assert pred.op == "="

    def test_queries_are_nonempty(self, light):
        schema, counts = light
        for q in job_light_queries(schema, n=30, counts=counts):
            assert query_cardinality(schema, q, counts=counts) >= 1


class TestJobLightRanges:
    def test_join_graph_spread(self, light):
        schema, counts = light
        queries = job_light_ranges_queries(schema, n=90, counts=counts)
        graphs = {tuple(sorted(q.tables)) for q in queries}
        assert len(graphs) >= 15  # close to the 18 distinct graphs

    def test_filter_counts(self, light):
        schema, counts = light
        for q in job_light_ranges_queries(schema, n=60, counts=counts):
            assert 2 <= len(q.predicates) <= 6

    def test_has_range_and_in_variety(self, light):
        schema, counts = light
        queries = job_light_ranges_queries(schema, n=200, counts=counts)
        ops = {p.op for q in queries for p in q.predicates}
        assert {"<=", ">=", "="} <= ops
        assert "IN" in ops

    def test_nonempty(self, light):
        schema, counts = light
        for q in job_light_ranges_queries(schema, n=40, counts=counts):
            assert query_cardinality(schema, q, counts=counts) >= 1


class TestJobM:
    def test_count_and_span(self, jobm):
        schema, counts = jobm
        queries = job_m_queries(schema, n=40, counts=counts)
        assert len(queries) == 40
        sizes = [len(q.tables) for q in queries]
        assert min(sizes) >= 2
        assert max(sizes) >= 6  # reaches deep join graphs
        for q in queries:
            q.validate(schema)

    def test_touches_dimension_tables(self, jobm):
        schema, counts = jobm
        queries = job_m_queries(schema, n=40, counts=counts)
        touched = {t for q in queries for t in q.tables}
        assert "company_name" in touched or "name" in touched or "keyword" in touched

    def test_nonempty(self, jobm):
        schema, counts = jobm
        for q in job_m_queries(schema, n=25, counts=counts):
            assert query_cardinality(schema, q, counts=counts) >= 1


class TestStats:
    def test_workload_stats_row(self, light):
        schema, counts = light
        stats = workload_stats("JOB-light", schema, counts)
        assert stats.n_tables == 6
        assert stats.full_join_rows > schema.table("title").n_rows
        assert stats.max_domain > 0
        assert "JOB-light" in stats.row()
