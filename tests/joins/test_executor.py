"""Exact executor vs naive enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count, query_cardinality, query_selectivity
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import brute_force_inner_count, paper_figure4_schema

key_values = st.lists(st.one_of(st.integers(0, 4), st.none()), min_size=1, max_size=6)


class TestPaperExamples:
    def test_q1_inner_join_count(self):
        """Q1 of Figure 4d: three-way join, A.x = 2 -> 2 rows."""
        schema = paper_figure4_schema()
        query = Query.make(["A", "B", "C"], [Predicate("A", "x", "=", 2)])
        assert query_cardinality(schema, query) == 2.0

    def test_q2_single_table(self):
        """Q2 of Figure 4d: single table, A.x = 2 -> 1 row."""
        schema = paper_figure4_schema()
        query = Query.make(["A"], [Predicate("A", "x", "=", 2)])
        assert query_cardinality(schema, query) == 1.0

    def test_subset_join(self):
        schema = paper_figure4_schema()
        query = Query.make(["B", "C"])
        # B(2,c) joins two C rows; others join none -> 2 rows.
        assert query_cardinality(schema, query) == 2.0


class TestAgainstBruteForce:
    @given(key_values, key_values, key_values, st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_chain_with_filters(self, a_keys, b_keys, c_keys, literal):
        a = Table.from_dict("A", {"x": a_keys})
        b = Table.from_dict(
            "B", {"x": b_keys, "y": [i % 3 for i in range(len(b_keys))]}
        )
        c = Table.from_dict("C", {"y": c_keys})
        schema = JoinSchema(
            tables={"A": a, "B": b, "C": c},
            edges=[
                JoinEdge("A", "B", (("x", "x"),)),
                JoinEdge("B", "C", (("y", "y"),)),
            ],
            root="A",
        )
        counts = JoinCounts(schema)
        for tables in (["A"], ["A", "B"], ["B", "C"], ["A", "B", "C"]):
            column = "x" if tables[0] != "C" else "y"
            query = Query.make(tables, [Predicate(tables[0], column, "<=", literal)])
            exact = query_cardinality(schema, query, counts=counts)
            brute = brute_force_inner_count(schema, query)
            assert exact == pytest.approx(brute)

    @given(key_values, key_values)
    @settings(max_examples=40, deadline=None)
    def test_star_subsets(self, c1_keys, c2_keys):
        r = Table.from_dict("R", {"id": [0, 1, 2, 3]})
        c1 = Table.from_dict("C1", {"rid": c1_keys})
        c2 = Table.from_dict("C2", {"rid": c2_keys})
        schema = JoinSchema(
            tables={"R": r, "C1": c1, "C2": c2},
            edges=[
                JoinEdge("R", "C1", (("id", "rid"),)),
                JoinEdge("R", "C2", (("id", "rid"),)),
            ],
            root="R",
        )
        counts = JoinCounts(schema)
        for tables in (["R", "C1"], ["R", "C2"], ["R", "C1", "C2"]):
            query = Query.make(tables)
            assert query_cardinality(schema, query, counts=counts) == pytest.approx(
                brute_force_inner_count(schema, query)
            )


class TestSelectivity:
    def test_selectivity_in_unit_interval(self):
        schema = paper_figure4_schema()
        query = Query.make(["A", "B", "C"], [Predicate("A", "x", "=", 2)])
        sel = query_selectivity(schema, query)
        assert 0.0 <= sel <= 1.0
        assert sel == pytest.approx(2.0 / 2.0)

    def test_empty_join_graph_raises(self):
        a = Table.from_dict("A", {"x": [1]})
        b = Table.from_dict("B", {"x": [2]})
        schema = JoinSchema(
            tables={"A": a, "B": b},
            edges=[JoinEdge("A", "B", (("x", "x"),))],
            root="A",
        )
        with pytest.raises(QueryError):
            query_selectivity(schema, Query.make(["A", "B"]))

    def test_inner_join_count_matches_cardinality_of_unfiltered(self):
        schema = paper_figure4_schema()
        assert inner_join_count(schema, ["A", "B"]) == query_cardinality(
            schema, Query.make(["A", "B"])
        )
