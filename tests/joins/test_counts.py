"""Join-count DP vs brute-force full-outer-join enumeration."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.counts import JoinCounts
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import brute_force_full_join, paper_figure4_schema

key_values = st.lists(
    st.one_of(st.integers(0, 4), st.none()), min_size=1, max_size=6
)


def make_chain_schema(a_keys, b_keys, c_keys):
    a = Table.from_dict("A", {"x": a_keys})
    b = Table.from_dict("B", {"x": b_keys, "y": [i % 3 for i in range(len(b_keys))]})
    c = Table.from_dict("C", {"y": c_keys})
    edges = [
        JoinEdge("A", "B", (("x", "x"),)),
        JoinEdge("B", "C", (("y", "y"),)),
    ]
    return JoinSchema(tables={"A": a, "B": b, "C": c}, edges=edges, root="A")


def make_star_schema(root_keys, child1_keys, child2_keys):
    r = Table.from_dict("R", {"id": root_keys})
    c1 = Table.from_dict("C1", {"rid": child1_keys})
    c2 = Table.from_dict("C2", {"rid": child2_keys})
    edges = [
        JoinEdge("R", "C1", (("id", "rid"),)),
        JoinEdge("R", "C2", (("id", "rid"),)),
    ]
    return JoinSchema(tables={"R": r, "C1": c1, "C2": c2}, edges=edges, root="R")


class TestPaperFigure4:
    """The end-to-end example of Figure 4 is reproduced exactly."""

    def test_full_join_size_is_5(self):
        counts = JoinCounts(paper_figure4_schema())
        assert counts.full_join_size == 5.0

    def test_root_join_counts(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        a = schema.table("A")
        w = counts.weights["A"]
        assert w[list(a.codes("x")).index(a.column("x").code_for(1))] == 1.0
        assert w[list(a.codes("x")).index(a.column("x").code_for(2))] == 3.0

    def test_b_join_counts(self):
        # B's counts w.r.t. its subtree {B, C}: (1,a)->1, (2,b)->1, (2,c)->2.
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        assert list(counts.weights["B"]) == [1.0, 1.0, 2.0]

    def test_fanouts_match_figure(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        ops = counts.edge_ops["A<-B"]
        # F_{B.x}: value 2 appears twice in B.x.
        assert list(ops.child_fanout) == [1, 2, 2]
        # F_{A.x} is all ones (unique key).
        assert list(ops.parent_fanout) == [1, 1]
        ops_bc = counts.edge_ops["B<-C"]
        # F_{C.y}: c appears twice in C.y.
        assert list(ops_bc.child_fanout) == [2, 2, 1]

    def test_brute_force_agrees(self):
        schema = paper_figure4_schema()
        rows = brute_force_full_join(schema)
        assert len(rows) == 5


class TestAgainstBruteForce:
    @given(key_values, key_values, key_values)
    @settings(max_examples=60, deadline=None)
    def test_chain_full_join_size(self, a_keys, b_keys, c_keys):
        schema = make_chain_schema(a_keys, b_keys, c_keys)
        counts = JoinCounts(schema)
        rows = brute_force_full_join(schema)
        assert counts.full_join_size == pytest.approx(len(rows))

    @given(key_values, key_values, key_values)
    @settings(max_examples=60, deadline=None)
    def test_star_full_join_size(self, r_keys, c1_keys, c2_keys):
        schema = make_star_schema(r_keys, c1_keys, c2_keys)
        counts = JoinCounts(schema)
        rows = brute_force_full_join(schema)
        assert counts.full_join_size == pytest.approx(len(rows))

    @given(key_values, key_values, key_values)
    @settings(max_examples=40, deadline=None)
    def test_root_weights_are_multiplicities(self, a_keys, b_keys, c_keys):
        schema = make_chain_schema(a_keys, b_keys, c_keys)
        counts = JoinCounts(schema)
        rows = brute_force_full_join(schema)
        multiplicity = Counter(r["A"] for r in rows if r["A"] is not None)
        for row_id, weight in enumerate(counts.weights["A"]):
            assert weight == pytest.approx(multiplicity.get(row_id, 0))


class TestCompositeKeys:
    def test_two_column_join(self):
        a = Table.from_dict("A", {"k1": [1, 1, 2], "k2": [1, 2, 1]})
        b = Table.from_dict("B", {"k1": [1, 1, 1], "k2": [1, 1, 2]})
        schema = JoinSchema(
            tables={"A": a, "B": b},
            edges=[JoinEdge("A", "B", (("k1", "k1"), ("k2", "k2")))],
            root="A",
        )
        counts = JoinCounts(schema)
        rows = brute_force_full_join(schema)
        assert counts.full_join_size == len(rows)
        # (1,1) matches two B rows; (1,2) matches one; (2,1) none.
        assert list(counts.weights["A"]) == [2.0, 1.0, 1.0]


class TestSingleTable:
    def test_single_table_schema(self):
        a = Table.from_dict("A", {"x": [1, 2, 3]})
        schema = JoinSchema(tables={"A": a}, edges=[], root="A")
        counts = JoinCounts(schema)
        assert counts.full_join_size == 3.0
