"""Tests for packed-key utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins import keyops
from repro.relational.column import Column


class TestTranslation:
    def test_translation_roundtrip(self):
        src = Column.from_values("s", [10, 20, 30])
        dst = Column.from_values("d", [20, 30, 40])
        arr = keyops.translation_array(src, dst)
        assert arr[0] == 0  # NULL -> NULL
        assert arr[src.code_for(10)] == -1
        assert arr[src.code_for(20)] == dst.code_for(20)
        assert arr[src.code_for(30)] == dst.code_for(30)

    def test_translation_empty_dst(self):
        src = Column.from_values("s", [1, 2])
        dst = Column.from_values("d", [None])
        arr = keyops.translation_array(src, dst)
        assert (arr[1:] == -1).all()

    @given(
        st.lists(st.integers(0, 30), min_size=0, max_size=25),
        st.lists(st.integers(0, 30), min_size=0, max_size=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_translation_is_value_identity(self, src_vals, dst_vals):
        src = Column.from_values("s", src_vals)
        dst = Column.from_values("d", dst_vals)
        arr = keyops.translation_array(src, dst)
        for value in set(src_vals):
            code = src.code_for(value)
            expected = dst.code_for(value)
            assert arr[code] == (expected if expected is not None else -1)


class TestPacking:
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 4)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_is_injective_over_tuples(self, tuples):
        mat = np.array(tuples, dtype=np.int64)
        packed = keyops.pack_codes(mat, [7, 5], null_is_invalid=False)
        seen = {}
        for t, p in zip(tuples, packed):
            if p in seen:
                assert seen[p] == t
            seen[p] = t
        assert len(set(seen.values())) == len(set(packed))

    def test_null_invalid_probe_side(self):
        mat = np.array([[0, 1], [1, 1], [-1, 2]], dtype=np.int64)
        packed = keyops.pack_codes(mat, [5, 5], null_is_invalid=True)
        assert packed[0] == -1
        assert packed[1] >= 0
        assert packed[2] == -1

    def test_null_valid_build_side(self):
        mat = np.array([[0, 1]], dtype=np.int64)
        packed = keyops.pack_codes(mat, [5, 5], null_is_invalid=False)
        assert packed[0] == 1


class TestGroupedRows:
    @given(st.lists(st.integers(0, 8), min_size=0, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_groups_partition_rows(self, keys):
        packed = np.array(keys, dtype=np.int64)
        groups = keyops.GroupedRows(packed)
        seen = []
        for g in range(groups.n_groups):
            rows = groups.rows_of_group(g)
            assert (packed[rows] == groups.unique_keys[g]).all()
            seen.extend(rows.tolist())
        assert sorted(seen) == list(range(len(keys)))

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_group_sums_match_manual(self, keys):
        packed = np.array(keys, dtype=np.int64)
        weights = np.arange(1, len(keys) + 1, dtype=np.float64)
        groups = keyops.GroupedRows(packed)
        sums = groups.group_sums(weights)
        for g, key in enumerate(groups.unique_keys):
            manual = weights[packed == key].sum()
            assert sums[g] == manual

    def test_find_handles_misses(self):
        groups = keyops.GroupedRows(np.array([3, 5, 5], dtype=np.int64))
        idx = groups.find(np.array([3, 4, 5, -1], dtype=np.int64))
        assert idx[0] == 0
        assert idx[1] == -1
        assert idx[2] == 1
        assert idx[3] == -1

    def test_empty(self):
        groups = keyops.GroupedRows(np.array([], dtype=np.int64))
        assert groups.n_groups == 0
        assert groups.find(np.array([1], dtype=np.int64))[0] == -1


class TestKeyFrequencies:
    @given(st.lists(st.integers(0, 6), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_frequencies_match_counts(self, keys):
        packed = np.array(keys, dtype=np.int64)
        freq = keyops.key_frequencies(packed)
        for i, key in enumerate(keys):
            assert freq[i] == keys.count(key)
