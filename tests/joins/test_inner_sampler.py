"""InnerJoinSampler: validity and uniformity of inner-join samples."""

from collections import Counter

import numpy as np
import pytest

from repro.errors import DataError
from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count
from repro.joins.sampler import InnerJoinSampler
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import paper_figure4_schema, row_key_values


class TestValidity:
    def test_samples_actually_join(self):
        schema = paper_figure4_schema()
        sampler = InnerJoinSampler(schema)
        rows = sampler.sample_row_ids(["A", "B", "C"], 500, np.random.default_rng(0))
        a, b, c = schema.table("A"), schema.table("B"), schema.table("C")
        for i in range(500):
            assert row_key_values(a, ("x",), rows["A"][i]) == row_key_values(
                b, ("x",), rows["B"][i]
            )
            assert row_key_values(b, ("y",), rows["B"][i]) == row_key_values(
                c, ("y",), rows["C"][i]
            )

    def test_subset_sampling(self):
        schema = paper_figure4_schema()
        sampler = InnerJoinSampler(schema)
        rows = sampler.sample_row_ids(["B", "C"], 200, np.random.default_rng(1))
        assert set(rows) == {"B", "C"}
        assert (rows["B"] >= 0).all()

    def test_empty_join_rejected(self):
        a = Table.from_dict("A", {"x": [1]})
        b = Table.from_dict("B", {"x": [2]})
        schema = JoinSchema(
            tables={"A": a, "B": b},
            edges=[JoinEdge("A", "B", (("x", "x"),))],
            root="A",
        )
        with pytest.raises(DataError):
            InnerJoinSampler(schema).sample_row_ids(["A", "B"], 5, np.random.default_rng(2))


class TestUniformity:
    def test_figure4_inner_join_uniform(self):
        """The 3-way inner join has exactly 2 rows (A=2, B=(2,c), C=c x2);
        sample frequencies must be ~equal."""
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        assert inner_join_count(schema, ["A", "B", "C"], counts=counts) == 2
        sampler = InnerJoinSampler(schema, counts)
        n = 15_000
        rows = sampler.sample_row_ids(["A", "B", "C"], n, np.random.default_rng(3))
        combos = Counter(
            (int(rows["A"][i]), int(rows["B"][i]), int(rows["C"][i])) for i in range(n)
        )
        assert len(combos) == 2
        for count in combos.values():
            assert count == pytest.approx(n / 2, rel=0.05)
