"""Sampler correctness: uniformity over the full join, virtual columns."""

from collections import Counter

import numpy as np
import pytest
from scipy import stats

from repro.errors import SamplerError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import (
    FullJoinSampler,
    LoopJoinSampler,
    ThreadedSampler,
    joined_column_specs,
)
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import brute_force_full_join, paper_figure4_schema


def row_signature(rows, i, order):
    return tuple(int(rows[t][i]) for t in order)


class TestUniformity:
    def test_figure4_distribution_is_uniform(self):
        """Empirical frequencies over the 5 full-join rows pass a chi-square test."""
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rng = np.random.default_rng(0)
        n = 20_000
        rows = sampler.sample_row_ids(n, rng)
        order = schema.bfs_order()
        observed = Counter(row_signature(rows, i, order) for i in range(n))

        brute = brute_force_full_join(schema)
        expected_keys = {
            tuple(-1 if r[t] is None else r[t] for t in order) for r in brute
        }
        assert set(observed) == expected_keys
        freqs = np.array([observed[k] for k in sorted(expected_keys)], dtype=float)
        chi2 = ((freqs - n / len(expected_keys)) ** 2 / (n / len(expected_keys))).sum()
        p_value = 1.0 - stats.chi2.cdf(chi2, df=len(expected_keys) - 1)
        assert p_value > 1e-4

    def test_star_with_nulls_uniform(self):
        r = Table.from_dict("R", {"id": [1, 2, 3]})
        c1 = Table.from_dict("C1", {"rid": [1, 1, 9]})  # 9 is an orphan
        c2 = Table.from_dict("C2", {"rid": [2, None]})
        schema = JoinSchema(
            tables={"R": r, "C1": c1, "C2": c2},
            edges=[
                JoinEdge("R", "C1", (("id", "rid"),)),
                JoinEdge("R", "C2", (("id", "rid"),)),
            ],
            root="R",
        )
        sampler = FullJoinSampler(schema)
        brute = brute_force_full_join(schema)
        assert sampler.full_join_size == len(brute)

        rng = np.random.default_rng(1)
        n = 30_000
        rows = sampler.sample_row_ids(n, rng)
        order = schema.bfs_order()
        observed = Counter(row_signature(rows, i, order) for i in range(n))
        expected_keys = {
            tuple(-1 if r[t] is None else r[t] for t in order) for r in brute
        }
        assert set(observed) == expected_keys
        expected = n / len(expected_keys)
        for key in expected_keys:
            assert observed[key] == pytest.approx(expected, rel=0.15)

    def test_all_null_row_never_sampled(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rows = sampler.sample_row_ids(5000, np.random.default_rng(2))
        order = schema.bfs_order()
        all_null = np.ones(5000, dtype=bool)
        for t in order:
            all_null &= rows[t] < 0
        assert not all_null.any()


def star_with_nulls_schema():
    r = Table.from_dict("R", {"id": [1, 2, 3]})
    c1 = Table.from_dict("C1", {"rid": [1, 1, 9]})  # 9 is an orphan
    c2 = Table.from_dict("C2", {"rid": [2, None]})
    return JoinSchema(
        tables={"R": r, "C1": c1, "C2": c2},
        edges=[
            JoinEdge("R", "C1", (("id", "rid"),)),
            JoinEdge("R", "C2", (("id", "rid"),)),
        ],
        root="R",
    )


class TestMatrixSampler:
    def test_matrix_and_dict_share_one_stream(self):
        """sample_row_ids is exactly the matrix draw viewed per table."""
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        matrix = sampler.sample_row_id_matrix(777, np.random.default_rng(11))
        rows = sampler.sample_row_ids(777, np.random.default_rng(11))
        assert matrix.shape == (777, len(schema.tables))
        for j, table in enumerate(sampler.table_order):
            assert np.array_equal(matrix[:, j], rows[table])

    def test_table_order_is_bfs(self):
        schema = paper_figure4_schema()
        assert FullJoinSampler(schema).table_order == schema.bfs_order()

    def test_nonpositive_size_rejected(self):
        from repro.errors import DataError

        sampler = FullJoinSampler(paper_figure4_schema())
        with pytest.raises(DataError):
            sampler.sample_row_id_matrix(0, np.random.default_rng(0))


class TestLoopOracleEquivalence:
    """The per-row loop oracle and the vectorized matrix sampler draw the
    same row-id distribution under pinned seeds (satellite: sampler
    equivalence)."""

    @pytest.mark.parametrize("make_schema", [paper_figure4_schema, star_with_nulls_schema])
    def test_same_support_and_distribution(self, make_schema):
        schema = make_schema()
        order = schema.bfs_order()
        n = 20_000
        vec = FullJoinSampler(schema)
        loop = LoopJoinSampler(schema)
        vec_rows = vec.sample_row_ids(n, np.random.default_rng(5))
        loop_rows = loop.sample_row_ids(n, np.random.default_rng(6))
        vec_counts = Counter(row_signature(vec_rows, i, order) for i in range(n))
        loop_counts = Counter(row_signature(loop_rows, i, order) for i in range(n))

        brute = brute_force_full_join(schema)
        expected_keys = {
            tuple(-1 if r[t] is None else r[t] for t in order) for r in brute
        }
        assert set(vec_counts) == expected_keys
        assert set(loop_counts) == expected_keys

        # Homogeneity chi-square: both samplers draw from one distribution.
        keys = sorted(expected_keys)
        table = np.array(
            [[vec_counts[k] for k in keys], [loop_counts[k] for k in keys]]
        )
        _, p_value, _, _ = stats.chi2_contingency(table)
        assert p_value > 1e-4

    def test_loop_assembles_identical_columns(self):
        """Same row ids -> same virtual columns through either class."""
        schema = paper_figure4_schema()
        vec = FullJoinSampler(schema)
        loop = LoopJoinSampler(schema)
        rows = loop.sample_row_ids(512, np.random.default_rng(9))
        a, b = vec.assemble(rows), loop.assemble(rows)
        assert set(a) == set(b)
        for name in a:
            assert np.array_equal(a[name], b[name])


class TestVirtualColumns:
    def test_specs_ordering(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts)
        kinds = [s.kind for s in specs]
        # Content columns first, then indicators, then fanouts (§6).
        first_indicator = kinds.index("indicator")
        assert all(k == "content" for k in kinds[:first_indicator])
        assert "fanout" not in kinds[:first_indicator]
        assert kinds[-1] == "fanout" or "fanout" not in kinds

    def test_unit_fanouts_omitted(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts)
        names = [s.name for s in specs]
        # A.x and B.y are unique keys -> their fanouts are omitted (Fig. 4c).
        assert "__fanout_A.x" not in names
        assert "__fanout_B.y" not in names
        assert "__fanout_B.x" in names
        assert "__fanout_C.y" in names

    def test_indicator_and_fanout_values(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rng = np.random.default_rng(3)
        rows = sampler.sample_row_ids(4000, rng)
        batch = sampler.assemble(rows)
        # Indicators match realness of the sampled row ids.
        for t in ("A", "B", "C"):
            assert (batch[f"__in_{t}"] == (rows[t] >= 0)).all()
        # Fanouts: B rows with x=2 must carry fanout 2; NULL B tuples carry 1.
        b = schema.table("B")
        x2 = b.column("x").code_for(2)
        real_b = rows["B"] >= 0
        got = batch["__fanout_B.x"]
        expect_two = real_b & (b.codes("x")[np.maximum(rows["B"], 0)] == x2)
        assert (got[expect_two] == 2).all()
        assert (got[~real_b] == 1).all()

    def test_content_null_codes_for_missing_tables(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rows = sampler.sample_row_ids(2000, np.random.default_rng(4))
        batch = sampler.assemble(rows)
        missing_c = rows["C"] < 0
        assert (batch["C.y"][missing_c] == 0).all()
        assert (batch["C.y"][~missing_c] > 0).all()

    def test_exclude_content_column(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts, exclude=["B.y"])
        assert "B.y" not in [s.name for s in specs]


class _ExplodingSampler(FullJoinSampler):
    """Worker-side failure injection for the pool's death-detection tests."""

    def sample_row_id_matrix(self, n, rng):
        raise RuntimeError("disk on fire")


class TestThreadedSampler:
    def test_threads_produce_valid_batches(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        with ThreadedSampler(sampler, batch_size=64, n_threads=2, seed=7) as threaded:
            batch = threaded.get_batch()
        assert set(batch) == set(sampler.column_names())
        assert all(len(v) == 64 for v in batch.values())

    def test_worker_encode_produces_token_batches(self):
        """The fused path runs inside workers: payloads arrive pre-encoded."""
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        encode = lambda rows: rows * 2  # stand-in for FusedEncoder.encode_row_ids
        with ThreadedSampler(
            sampler, batch_size=32, n_threads=2, seed=7, encode=encode
        ) as threaded:
            batch = threaded.get_batch()
        assert isinstance(batch, np.ndarray)
        assert batch.shape == (32, len(schema.tables))
        assert (batch % 2 == 0).all()

    def test_dead_producer_raises_instead_of_hanging(self):
        sampler = _ExplodingSampler(paper_figure4_schema())
        with ThreadedSampler(sampler, batch_size=16, n_threads=2, seed=1) as threaded:
            with pytest.raises(SamplerError, match="disk on fire"):
                threaded.get_batch(timeout=10.0)

    def test_close_is_idempotent_and_fails_fast_afterwards(self):
        sampler = FullJoinSampler(paper_figure4_schema())
        threaded = ThreadedSampler(sampler, batch_size=16, n_threads=2, seed=2)
        threaded.get_batch()
        threaded.close()
        threaded.close()  # second close is a no-op, not an error
        with pytest.raises(SamplerError, match="closed"):
            threaded.get_batch()

    def test_backpressure_bounds_queue(self):
        sampler = FullJoinSampler(paper_figure4_schema())
        with ThreadedSampler(
            sampler, batch_size=8, n_threads=2, seed=3, max_queued=2
        ) as threaded:
            import time as _time

            _time.sleep(0.3)  # let producers saturate the bounded queue
            assert threaded._queue.qsize() <= 2
            # and the pool still serves fresh batches afterwards
            for _ in range(5):
                assert len(threaded.get_batch()["__in_A"]) == 8
