"""Sampler correctness: uniformity over the full join, virtual columns."""

from collections import Counter

import numpy as np
import pytest
from scipy import stats

from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler, ThreadedSampler, joined_column_specs
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import brute_force_full_join, paper_figure4_schema


def row_signature(rows, i, order):
    return tuple(int(rows[t][i]) for t in order)


class TestUniformity:
    def test_figure4_distribution_is_uniform(self):
        """Empirical frequencies over the 5 full-join rows pass a chi-square test."""
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rng = np.random.default_rng(0)
        n = 20_000
        rows = sampler.sample_row_ids(n, rng)
        order = schema.bfs_order()
        observed = Counter(row_signature(rows, i, order) for i in range(n))

        brute = brute_force_full_join(schema)
        expected_keys = {
            tuple(-1 if r[t] is None else r[t] for t in order) for r in brute
        }
        assert set(observed) == expected_keys
        freqs = np.array([observed[k] for k in sorted(expected_keys)], dtype=float)
        chi2 = ((freqs - n / len(expected_keys)) ** 2 / (n / len(expected_keys))).sum()
        p_value = 1.0 - stats.chi2.cdf(chi2, df=len(expected_keys) - 1)
        assert p_value > 1e-4

    def test_star_with_nulls_uniform(self):
        r = Table.from_dict("R", {"id": [1, 2, 3]})
        c1 = Table.from_dict("C1", {"rid": [1, 1, 9]})  # 9 is an orphan
        c2 = Table.from_dict("C2", {"rid": [2, None]})
        schema = JoinSchema(
            tables={"R": r, "C1": c1, "C2": c2},
            edges=[
                JoinEdge("R", "C1", (("id", "rid"),)),
                JoinEdge("R", "C2", (("id", "rid"),)),
            ],
            root="R",
        )
        sampler = FullJoinSampler(schema)
        brute = brute_force_full_join(schema)
        assert sampler.full_join_size == len(brute)

        rng = np.random.default_rng(1)
        n = 30_000
        rows = sampler.sample_row_ids(n, rng)
        order = schema.bfs_order()
        observed = Counter(row_signature(rows, i, order) for i in range(n))
        expected_keys = {
            tuple(-1 if r[t] is None else r[t] for t in order) for r in brute
        }
        assert set(observed) == expected_keys
        expected = n / len(expected_keys)
        for key in expected_keys:
            assert observed[key] == pytest.approx(expected, rel=0.15)

    def test_all_null_row_never_sampled(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rows = sampler.sample_row_ids(5000, np.random.default_rng(2))
        order = schema.bfs_order()
        all_null = np.ones(5000, dtype=bool)
        for t in order:
            all_null &= rows[t] < 0
        assert not all_null.any()


class TestVirtualColumns:
    def test_specs_ordering(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts)
        kinds = [s.kind for s in specs]
        # Content columns first, then indicators, then fanouts (§6).
        first_indicator = kinds.index("indicator")
        assert all(k == "content" for k in kinds[:first_indicator])
        assert "fanout" not in kinds[:first_indicator]
        assert kinds[-1] == "fanout" or "fanout" not in kinds

    def test_unit_fanouts_omitted(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts)
        names = [s.name for s in specs]
        # A.x and B.y are unique keys -> their fanouts are omitted (Fig. 4c).
        assert "__fanout_A.x" not in names
        assert "__fanout_B.y" not in names
        assert "__fanout_B.x" in names
        assert "__fanout_C.y" in names

    def test_indicator_and_fanout_values(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rng = np.random.default_rng(3)
        rows = sampler.sample_row_ids(4000, rng)
        batch = sampler.assemble(rows)
        # Indicators match realness of the sampled row ids.
        for t in ("A", "B", "C"):
            assert (batch[f"__in_{t}"] == (rows[t] >= 0)).all()
        # Fanouts: B rows with x=2 must carry fanout 2; NULL B tuples carry 1.
        b = schema.table("B")
        x2 = b.column("x").code_for(2)
        real_b = rows["B"] >= 0
        got = batch["__fanout_B.x"]
        expect_two = real_b & (b.codes("x")[np.maximum(rows["B"], 0)] == x2)
        assert (got[expect_two] == 2).all()
        assert (got[~real_b] == 1).all()

    def test_content_null_codes_for_missing_tables(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        rows = sampler.sample_row_ids(2000, np.random.default_rng(4))
        batch = sampler.assemble(rows)
        missing_c = rows["C"] < 0
        assert (batch["C.y"][missing_c] == 0).all()
        assert (batch["C.y"][~missing_c] > 0).all()

    def test_exclude_content_column(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        specs = joined_column_specs(schema, counts, exclude=["B.y"])
        assert "B.y" not in [s.name for s in specs]


class TestThreadedSampler:
    def test_threads_produce_valid_batches(self):
        schema = paper_figure4_schema()
        sampler = FullJoinSampler(schema)
        with ThreadedSampler(sampler, batch_size=64, n_threads=2, seed=7) as threaded:
            batch = threaded.get_batch()
        assert set(batch) == set(sampler.column_names())
        assert all(len(v) == 64 for v in batch.values())
