"""Region algebra tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import Region

interval = st.tuples(st.integers(0, 30), st.integers(0, 30))
codeset = st.lists(st.integers(0, 30), max_size=10)


def as_set(region):
    return set(region.to_codes().tolist())


class TestRegion:
    @given(interval, interval)
    @settings(max_examples=60, deadline=None)
    def test_interval_intersection(self, a, b):
        ra = Region.interval(*a)
        rb = Region.interval(*b)
        expected = as_set(ra) & as_set(rb)
        assert as_set(ra.intersect(rb)) == expected

    @given(interval, codeset)
    @settings(max_examples=60, deadline=None)
    def test_mixed_intersection(self, a, codes)    :
        ra = Region.interval(*a)
        rb = Region.of_codes(np.array(codes, dtype=np.int64))
        assert as_set(ra.intersect(rb)) == as_set(ra) & as_set(rb)
        assert as_set(rb.intersect(ra)) == as_set(ra) & as_set(rb)

    @given(codeset, codeset)
    @settings(max_examples=60, deadline=None)
    def test_set_intersection(self, a, b):
        ra = Region.of_codes(np.array(a, dtype=np.int64))
        rb = Region.of_codes(np.array(b, dtype=np.int64))
        assert as_set(ra.intersect(rb)) == set(a) & set(b)

    def test_emptiness(self):
        assert Region.interval(5, 4).is_empty
        assert Region.of_codes(np.array([], dtype=np.int64)).is_empty
        assert not Region.interval(2, 2).is_empty

    def test_contains(self):
        assert Region.interval(1, 3).contains(2)
        assert not Region.interval(1, 3).contains(0)
        assert Region.of_codes(np.array([4, 7])).contains(7)

    def test_from_predicate(self):
        r = Region.from_predicate(("interval", (2, 5)))
        assert r.kind == "interval" and (r.lo, r.hi) == (2, 5)
        r = Region.from_predicate(("set", np.array([1, 2])))
        assert r.kind == "set"
