"""Lossless column factorization: roundtrip, interval translation, tries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.factorization import Factorizer, IntervalState, SetTrie
from repro.errors import EstimationError


class TestFactorizerShape:
    def test_small_domain_not_factorized(self):
        f = Factorizer(domain=10, bits=14)
        assert not f.is_factorized
        assert f.sub_domains == [10]

    def test_disabled_bits(self):
        f = Factorizer(domain=10**6, bits=None)
        assert f.n_sub == 1

    def test_paper_example_shape(self):
        # Figure 5: domain 10^6, 10 bits -> two subcolumns.
        f = Factorizer(domain=10**6 + 1, bits=10)
        assert f.n_sub == 2
        assert f.sub_domains[1] == 1024
        assert f.sub_domains[0] == (10**6 >> 10) + 1

    def test_paper_example_values(self):
        # Figure 5: 1,000,000 -> (976, 576); 1 -> (0, 1).
        f = Factorizer(domain=10**6 + 1, bits=10)
        assert f.chunks_of(1_000_000) == [976, 576]
        assert f.chunks_of(1) == [0, 1]

    def test_bad_domain(self):
        with pytest.raises(EstimationError):
            Factorizer(domain=0, bits=4)


class TestRoundtrip:
    @given(st.integers(2, 5000), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_identity(self, domain, bits):
        f = Factorizer(domain, bits)
        codes = np.arange(domain, dtype=np.int64)
        chunks = f.encode(codes)
        assert (f.decode(chunks) == codes).all()
        for k, dom in enumerate(f.sub_domains):
            assert chunks[:, k].min() >= 0
            assert chunks[:, k].max() < dom

    @given(st.integers(2, 5000), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_chunk_domains_bounded(self, domain, bits):
        f = Factorizer(domain, bits)
        for dom in f.sub_domains[1:]:
            assert dom == 2**bits
        assert f.sub_domains[0] <= 2**bits or f.n_sub == 1


def accepted_by_interval_walk(factorizer, lo, hi, code):
    """Simulate the progressive per-chunk constraint for a single value."""
    chunks = factorizer.chunks_of(code)
    lo_chunks = factorizer.chunks_of(lo)
    hi_chunks = factorizer.chunks_of(hi)
    tight_lo = tight_hi = True
    for k, chunk in enumerate(chunks):
        low = lo_chunks[k] if tight_lo else 0
        high = hi_chunks[k] if tight_hi else factorizer.sub_domains[k] - 1
        if not (low <= chunk <= high):
            return False
        tight_lo = tight_lo and chunk == lo_chunks[k]
        tight_hi = tight_hi and chunk == hi_chunks[k]
    return True


class TestIntervalTranslation:
    @given(st.integers(2, 600), st.integers(1, 5), st.data())
    @settings(max_examples=80, deadline=None)
    def test_walk_accepts_exactly_the_interval(self, domain, bits, data):
        """The progressively relaxed chunk bounds admit exactly [lo, hi]."""
        f = Factorizer(domain, bits)
        lo = data.draw(st.integers(0, domain - 1))
        hi = data.draw(st.integers(lo, domain - 1))
        accepted = {
            code for code in range(domain) if accepted_by_interval_walk(f, lo, hi, code)
        }
        assert accepted == set(range(lo, hi + 1))

    def test_interval_state_vectorized_bounds(self):
        f = Factorizer(domain=256, bits=4)
        state = IntervalState(f, lo=17, hi=200, n_samples=3)
        lo0, hi0 = state.bounds(0)
        assert (lo0 == f.chunks_of(17)[0]).all()
        assert (hi0 == f.chunks_of(200)[0]).all()
        # Draw inside the range strictly -> both bounds relax for chunk 1.
        inside = np.array([f.chunks_of(100)[0]] * 3)
        state.observe(0, inside)
        lo1, hi1 = state.bounds(1)
        assert (lo1 == 0).all()
        assert (hi1 == f.sub_domains[1] - 1).all()

    def test_empty_interval_rejected(self):
        f = Factorizer(16, 2)
        with pytest.raises(EstimationError):
            IntervalState(f, lo=5, hi=4, n_samples=1)


class TestSetTrie:
    @given(
        st.integers(8, 600),
        st.integers(1, 4),
        st.lists(st.integers(0, 599), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_trie_paths_are_exactly_the_members(self, domain, bits, raw_codes):
        codes = sorted({c % domain for c in raw_codes})
        f = Factorizer(domain, bits)
        trie = SetTrie(f, np.array(codes))

        def walk(prefix, k):
            if k == f.n_sub:
                return {f.decode(np.array([list(prefix)]))[0]}
            out = set()
            for v in trie.valid(prefix, k):
                out |= walk(prefix + (int(v),), k + 1)
            return out

        assert walk((), 0) == set(codes)

    def test_unknown_prefix_empty(self):
        f = Factorizer(64, 2)
        trie = SetTrie(f, np.array([0]))
        assert len(trie.valid((3,), 1)) == 0

    @given(
        st.integers(8, 600),
        st.integers(1, 4),
        st.lists(st.integers(0, 599), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_walk_matches_valid(self, domain, bits, raw_codes):
        """codes_at/advance agree with the tuple-keyed valid() view."""
        codes = sorted({c % domain for c in raw_codes})
        f = Factorizer(domain, bits)
        trie = SetTrie(f, np.array(codes))
        rng = np.random.default_rng(0)
        n = 16
        nodes = np.zeros(n, dtype=np.int64)
        prefixes = [() for _ in range(n)]
        for k in range(f.n_sub):
            for i in range(n):
                by_prefix = trie.valid(prefixes[i], k)
                by_node = trie.codes_at(int(nodes[i]), k)
                assert np.array_equal(by_prefix, by_node)
            drawn = np.array(
                [rng.choice(trie.codes_at(int(nodes[i]), k)) for i in range(n)],
                dtype=np.int64,
            )
            nodes = trie.advance(nodes, drawn, k)
            prefixes = [p + (int(d),) for p, d in zip(prefixes, drawn)]
        decoded = f.decode(np.array(prefixes, dtype=np.int64))
        assert set(decoded.tolist()) <= set(codes)

    def test_advance_maps_missing_edges_to_root(self):
        f = Factorizer(64, 2)
        trie = SetTrie(f, np.array([0, 63]))
        nodes = np.zeros(2, dtype=np.int64)
        # Chunk 1 at level 0 is not on any path for codes {0, 63}.
        out = trie.advance(nodes, np.array([1, 1]), 0)
        assert (out == 0).all()
