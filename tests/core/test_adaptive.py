"""Variance-adaptive progressive sampling: escalation, bounds, accounting.

Contract under test (``ProgressiveSampler.estimate_batch(max_rel_var=...)``):
every query first runs a probe walk on a child stream spawned off its own
generator; queries whose relative standard error exceeds the bound escalate
to the full ``n_samples`` walk on their *pristine* pinned streams. Escalated
results are therefore bitwise-equal to a fixed-``n_samples`` run, and
early-stopped queries must carry a recorded relative standard error within
the declared bound — both pinned here on the deterministic tabular oracle.
"""

import numpy as np
import pytest

from repro.core.inference import CompiledEngine
from repro.core.progressive import ProgressiveSampler
from repro.errors import EstimationError
from tests.core.oracle import OracleModel
from tests.core.test_batched import mixed_workload
from tests.core.test_compiled import batch, engines, fitted, workload  # noqa: F401
from tests.core.test_progressive_oracle import rich_schema


@pytest.fixture(scope="module", params=["reference", "fp64"])
def oracle_engine(request):
    """Both executors over the exact tabular oracle (bitwise-stable)."""
    schema = rich_schema(seed=3)
    oracle = OracleModel(schema, factorization_bits=2)
    if request.param == "reference":
        return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
    return CompiledEngine(oracle, oracle.layout, oracle.full_join_size, mode="fp64")


def run(engine, queries, n=200, max_rel_var=None, min_samples=None, base_seed=90):
    return engine.estimate_batch(
        queries,
        n_samples=n,
        rngs=[np.random.default_rng(base_seed + i) for i in range(len(queries))],
        max_rel_var=max_rel_var,
        min_samples=min_samples,
    )


class TestEscalationBitwise:
    def test_zero_bound_escalates_all_and_matches_fixed_run(self, oracle_engine):
        """max_rel_var=0 forces every non-exact query to the full walk."""
        queries = mixed_workload()
        fixed = run(oracle_engine, queries)
        adaptive = run(oracle_engine, queries, max_rel_var=0.0)
        state = oracle_engine.last_adaptive
        escalated = state["escalated"]
        # Zero-variance probes (exact/empty regions) legally stop early; for
        # them the probe mean may differ from the full mean in the last ulp
        # (same constant averaged over a different sample count).
        assert (escalated == (state["rel_se"] > 0.0)).all()
        np.testing.assert_array_equal(adaptive[escalated], fixed[escalated])
        np.testing.assert_allclose(adaptive[~escalated], fixed[~escalated], rtol=1e-12)

    @pytest.mark.parametrize("bound", [0.01, 0.05, 0.2])
    def test_partial_escalation_is_per_query_bitwise(self, oracle_engine, bound):
        """Escalated queries match the fixed run; early stops obey the bound."""
        queries = mixed_workload()
        fixed = run(oracle_engine, queries)
        adaptive = run(oracle_engine, queries, max_rel_var=bound)
        state = oracle_engine.last_adaptive
        escalated = state["escalated"]
        np.testing.assert_array_equal(adaptive[escalated], fixed[escalated])
        # The probe's recorded relative standard error is the stop criterion:
        # every early-stopped query satisfies the declared bound.
        assert (state["rel_se"][~escalated] <= bound).all()
        assert (state["rel_se"][escalated] > bound).all()
        # n_effective is total work: escalated queries pay probe + full walk.
        probe = state["probe_samples"]
        assert (state["n_effective"][escalated] == probe + 200).all()
        assert (state["n_effective"][~escalated] == probe).all()

    def test_probe_does_not_consume_the_pinned_stream(self, oracle_engine):
        """spawn()-based probes leave the parent generators untouched."""
        queries = mixed_workload()
        rngs = [np.random.default_rng(90 + i) for i in range(len(queries))]
        adaptive = oracle_engine.estimate_batch(
            queries, n_samples=200, rngs=rngs, max_rel_var=0.0
        )
        escalated = oracle_engine.last_adaptive["escalated"]
        fixed = run(oracle_engine, queries)
        np.testing.assert_array_equal(adaptive[escalated], fixed[escalated])

    def test_trained_fp64_engine_close_to_fixed_run(self, fitted):
        """Escalation on a trained model reproduces the fixed run to GEMM noise.

        The strict bitwise property lives on the tabular oracle above: its
        conditionals are per-row table lookups. A trained ResMADE forward
        runs batched fp64 GEMMs whose per-row round-off depends on the
        batch shape, so the escalated sub-batch (fewer rows than the full
        batch) agrees only to ~1e-9 relative — far inside the fp32 serving
        gate, but not bitwise.
        """
        _, estimator = fitted
        engine = engines(estimator, "fp64")[0]
        queries = workload()
        fixed = batch(engine, queries)
        adaptive = engine.estimate_batch(
            queries,
            n_samples=96,
            rngs=[np.random.default_rng(700 + i) for i in range(len(queries))],
            max_rel_var=0.0,
        )
        np.testing.assert_allclose(adaptive, fixed, rtol=1e-7)

    def test_trained_fp32_engine_within_serving_tolerance(self, fitted):
        """fp32 GEMMs are batch-shape sensitive only to round-off."""
        _, estimator = fitted
        engine = engines(estimator, "fp32")[0]
        queries = workload()
        fixed = batch(engine, queries)
        adaptive = engine.estimate_batch(
            queries,
            n_samples=96,
            rngs=[np.random.default_rng(700 + i) for i in range(len(queries))],
            max_rel_var=0.0,
        )
        np.testing.assert_allclose(adaptive, fixed, rtol=5e-6)


class TestAccounting:
    def test_loose_bound_saves_samples(self, oracle_engine):
        queries = mixed_workload()
        run(oracle_engine, queries, max_rel_var=1e9)
        state = oracle_engine.last_adaptive
        assert not state["escalated"].any()
        assert state["probe_samples"] == max(16, 200 // 8)
        stats = oracle_engine.adaptive_stats()
        assert stats["adaptive_queries"] >= len(queries)
        assert stats["adaptive_samples_saved"] > 0

    def test_min_samples_overrides_probe_size(self, oracle_engine):
        queries = mixed_workload()
        run(oracle_engine, queries, max_rel_var=1e9, min_samples=48)
        assert oracle_engine.last_adaptive["probe_samples"] == 48

    def test_fixed_runs_leave_no_adaptive_state(self, oracle_engine):
        run(oracle_engine, mixed_workload(), max_rel_var=1e9)
        run(oracle_engine, mixed_workload())
        assert oracle_engine.last_adaptive is None

    def test_validation_errors(self, oracle_engine):
        queries = mixed_workload()
        with pytest.raises(EstimationError):
            run(oracle_engine, queries, max_rel_var=-0.5)
        with pytest.raises(EstimationError):
            run(oracle_engine, queries, max_rel_var=0.1, min_samples=1)


class TestEstimatorPassthrough:
    def test_estimate_batch_accepts_max_rel_var(self, fitted):
        _, estimator = fitted
        queries = workload()
        rngs = [np.random.default_rng(40 + i) for i in range(len(queries))]
        fixed = estimator.estimate_batch(queries, rngs=rngs)
        rngs = [np.random.default_rng(40 + i) for i in range(len(queries))]
        adaptive = estimator.estimate_batch(queries, rngs=rngs, max_rel_var=0.0)
        np.testing.assert_allclose(adaptive, fixed, rtol=5e-6)
        assert estimator.inference.last_adaptive is not None
