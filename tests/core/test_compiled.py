"""Compiled inference engine: kernel equivalence, plan caches, lifecycle.

The uncompiled path is the correctness oracle throughout: ``fp64`` mode
must match it bitwise (same executor, reference forward), ``fp32`` mode to
fp32 round-off on conditionals and estimates, and the dynamic caches
(wildcard-pattern constants, per-step kernels, fold sessions) must never
leak state across queries, calls, or weight changes.
"""

import numpy as np
import pytest

from repro.core.estimator import NeuroCard
from repro.core.inference import (
    CompiledEngine,
    build_engine,
    compiled_model,
    compiled_size_bytes,
    precompile_plan,
)
from repro.core.progressive import ProgressiveSampler
from repro.errors import EstimationError
from repro.nn.compiled import CompiledResMADE
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from tests.core.oracle import OracleModel
from tests.core.test_batched import mixed_workload
from tests.core.test_estimator import correlated_schema, small_config
from tests.core.test_progressive_oracle import rich_schema


@pytest.fixture(scope="module")
def fitted():
    schema = correlated_schema(n_root=120, seed=1)
    config = small_config(
        train_tuples=15_000, sampler_threads=1, progressive_samples=96
    )
    return schema, NeuroCard(schema, config).fit()


def workload():
    return [
        Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
        Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)]),
        Query.make(["R", "C2"], [Predicate("C2", "score", "<", 10)]),
        Query.make(["R", "C1"], [Predicate("R", "year", "IN", (1991, 1996))]),
        Query.make(["C1"], []),
        Query.make(["R", "C1", "C2"], [Predicate("R", "year", "<", 1994)]),
    ]


def engines(estimator, *modes):
    J = estimator.counts.full_join_size
    return [
        build_engine(estimator.model, estimator.layout, J, mode) for mode in modes
    ]


def batch(engine, queries, n=96, base_seed=700):
    return engine.estimate_batch(
        queries, n_samples=n,
        rngs=[np.random.default_rng(base_seed + i) for i in range(len(queries))],
    )


class TestKernelEquivalence:
    def test_fp32_conditionals_match_reference(self, fitted):
        """Folded LUT kernels reproduce the reference forward to fp32 noise."""
        _, estimator = fitted
        model = estimator.model
        compiled = CompiledResMADE(model, mode="fp32")
        rng = np.random.default_rng(3)
        tokens = np.column_stack([rng.integers(0, d, 64) for d in model.domains])
        wildcard = rng.random((64, model.n_columns)) < 0.5
        for col in range(model.n_columns):
            for wc in (wildcard, None):
                ref = model.column_conditional(tokens, col, wc)
                got = compiled.column_conditional(tokens, col, wc)
                np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-6)

    def test_scratch_reuse_is_bitwise_stable(self, fitted):
        """Reused fp32 scratch buffers never bleed between calls."""
        _, estimator = fitted
        compiled = CompiledResMADE(estimator.model, mode="fp32")
        rng = np.random.default_rng(5)
        model = estimator.model
        tokens = np.column_stack([rng.integers(0, d, 40) for d in model.domains])
        wildcard = rng.random((40, model.n_columns)) < 0.3
        col = model.n_columns - 1
        first = compiled.column_conditional(tokens, col, wildcard)
        # Interleave a differently-shaped call, then repeat the original.
        compiled.column_conditional(tokens[:7], 2, wildcard[:7])
        again = compiled.column_conditional(tokens, col, wildcard)
        assert np.array_equal(first, again)

    def test_fp64_oracle_engine_bitwise_on_trained_model(self, fitted):
        _, estimator = fitted
        ref, oracle = engines(estimator, "off", "fp64")
        queries = workload()
        np.testing.assert_array_equal(batch(ref, queries), batch(oracle, queries))

    @pytest.mark.parametrize("bits", [None, 2], ids=["flat", "factorized"])
    def test_fp64_executor_bitwise_on_tabular_oracle(self, bits):
        """The restructured executor (vectorized draws, one-pass apply,
        indicator batching off) is exact against the PR-1 reference loop
        under the deterministic tabular oracle."""
        schema = rich_schema(seed=3)
        oracle = OracleModel(schema, factorization_bits=bits)
        reference = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
        compiled = CompiledEngine(
            oracle, oracle.layout, oracle.full_join_size, mode="fp64"
        )
        queries = mixed_workload()
        np.testing.assert_array_equal(
            batch(reference, queries, n=200), batch(compiled, queries, n=200)
        )

    def test_fp32_estimates_within_tolerance(self, fitted):
        _, estimator = fitted
        ref, fast = engines(estimator, "off", "fp32")
        queries = workload()
        a, b = batch(ref, queries), batch(fast, queries)
        rel = np.abs(b - a) / np.maximum(np.abs(a), 1e-12)
        assert np.median(rel) <= 1e-4
        assert np.quantile(rel, 0.9) <= 1e-3


class TestPlanCaches:
    def test_wildcard_patterns_do_not_leak_across_queries(self, fitted):
        """Warm caches (patterns seeded by other queries' plans) must give
        the same bits as a cold engine for every wildcard set."""
        _, estimator = fitted
        (fast,) = engines(estimator, "fp32")
        queries = workload()
        warm_first = batch(fast, queries)
        warm_again = batch(fast, queries)  # every cache hot now
        (cold,) = engines(estimator, "fp32")
        cold_run = batch(cold, queries)
        np.testing.assert_array_equal(warm_first, warm_again)
        np.testing.assert_array_equal(warm_again, cold_run)

    def test_distinct_wildcard_sets_get_distinct_patterns(self, fitted):
        """Two wildcard sets at one step never share a cached constant."""
        _, estimator = fitted
        model = estimator.model
        compiled = CompiledResMADE(model, mode="fp32")
        col = model.n_columns - 1
        a = np.zeros(model.n_columns, dtype=bool)
        b = np.zeros(model.n_columns, dtype=bool)
        a[0] = True
        b[1] = True
        assert compiled.warm_pattern(a, col) == 1
        assert compiled.warm_pattern(b, col) == 1  # distinct key, new entry
        assert compiled.warm_pattern(a, col) == 0  # cached
        # A mixed batch splits into per-pattern groups and matches the
        # reference forward row for row.
        rng = np.random.default_rng(7)
        tokens = np.column_stack([rng.integers(0, d, 8) for d in model.domains])
        wildcard = np.vstack([np.tile(a, (4, 1)), np.tile(b, (4, 1))])
        np.testing.assert_allclose(
            compiled.column_conditional(tokens, col, wildcard),
            model.column_conditional(tokens, col, wildcard),
            rtol=1e-4, atol=1e-6,
        )

    def test_precompile_plan_seeds_patterns_without_changing_results(self, fitted):
        _, estimator = fitted
        cold, warmed = engines(estimator, "fp32", "fp32")
        query = workload()[1]
        seeded = precompile_plan(warmed, warmed.plan(query))
        assert seeded > 0
        assert precompile_plan(warmed, warmed.plan(query)) == 0  # idempotent
        a = cold.estimate(query, n_samples=64, rng=np.random.default_rng(9))
        b = warmed.estimate(query, n_samples=64, rng=np.random.default_rng(9))
        assert a == b


class TestLifecycle:
    def test_lazy_compile_and_size_accounting(self, fitted):
        schema, _ = fitted
        config = small_config(
            train_tuples=2_000, sampler_threads=1, progressive_samples=32
        )
        estimator = NeuroCard(schema, config).fit()
        assert compiled_size_bytes(estimator.inference) == 0  # not folded yet
        assert estimator.size_bytes == estimator.model.size_bytes
        before = estimator.estimate(workload()[0], rng=np.random.default_rng(4))
        extra = compiled_size_bytes(estimator.inference)
        assert extra > 0
        assert estimator.size_bytes == estimator.model.size_bytes + extra
        stats = compiled_model(estimator.inference).stats()
        assert stats["compiled"] == 1 and stats["size_bytes"] == extra

        estimator.invalidate_compiled()
        assert compiled_size_bytes(estimator.inference) == 0
        again = estimator.estimate(workload()[0], rng=np.random.default_rng(4))
        assert before == again  # refolding identical weights is exact

    def test_estimate_routes_through_batched_engine(self, fitted):
        _, estimator = fitted
        query = workload()[2]
        direct = estimator.estimate(query, rng=np.random.default_rng(11))
        pinned = estimator.inference.estimate_batch(
            [query],
            n_samples=estimator.config.progressive_samples,
            rngs=[np.random.default_rng(11)],
        )[0]
        assert direct == pinned

    def test_compile_modes_and_validation(self, fitted):
        schema, estimator = fitted
        off = NeuroCard(schema, small_config(train_tuples=1_000)).fit(compile=False)
        assert off.inference.model is off.model  # raw reference engine
        assert compiled_model(off.inference) is None
        assert isinstance(estimator.inference, CompiledEngine)  # default fp32
        with pytest.raises(EstimationError):
            build_engine(
                estimator.model, estimator.layout, estimator.full_join_size, "fp16"
            )
        with pytest.raises(EstimationError):
            CompiledResMADE(object(), mode="fp32")
