"""Vectorized training path vs the sequential dict-batch oracle.

The acceptance bar of the vectorized pipeline: under pinned seeds, feeding
``train_autoregressive`` pre-encoded token matrices (matrix sampler +
:class:`FusedEncoder`) must reproduce the loop path's NLL trajectory and
final weights *bitwise* — the speedup is pure restructuring, zero drift.
"""

import numpy as np

from repro.core.encoding import FusedEncoder, Layout
from repro.core.estimator import NeuroCard
from repro.core.training import train_autoregressive
from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler, ThreadedSampler, joined_column_specs
from repro.nn.resmade import ResMADE
from tests.core.test_estimator import correlated_schema, small_config


def build_env(bits=4):
    schema = correlated_schema(n_root=120)
    counts = JoinCounts(schema)
    specs = joined_column_specs(schema, counts)
    sampler = FullJoinSampler(schema, counts, specs=specs)
    layout = Layout(schema, counts, specs, bits)
    return schema, sampler, layout


def run_training(layout, next_batch, n_tuples=8192, batch=512, seed=5):
    model = ResMADE(layout.domains, d_emb=8, d_ff=32, n_blocks=1, seed=2)
    result = train_autoregressive(
        model, layout, next_batch, n_tuples, batch, learning_rate=5e-3, seed=seed
    )
    return model, result


class TestBitwiseEquivalence:
    def test_fused_tokens_match_dict_oracle(self):
        _, sampler, layout = build_env()
        fused = FusedEncoder(layout, sampler)

        rng_a = np.random.default_rng(1)
        model_a, oracle = run_training(
            layout, lambda: sampler.sample_batch(512, rng_a)
        )
        rng_b = np.random.default_rng(1)
        model_b, vectorized = run_training(
            layout,
            lambda: fused.encode_row_ids(sampler.sample_row_id_matrix(512, rng_b)),
        )

        assert oracle.losses == vectorized.losses  # bitwise, not approx
        assert oracle.tuples_seen == vectorized.tuples_seen
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            assert np.array_equal(pa.value, pb.value)

    def test_single_thread_estimator_reproducible(self):
        """Two NeuroCard fits with one worker thread are bit-identical, so
        the fused pipeline keeps the estimator deterministic."""
        schema = correlated_schema(n_root=100)
        config = small_config(train_tuples=6_000, sampler_threads=1)
        a = NeuroCard(schema, config).fit()
        b = NeuroCard(schema, config).fit()
        assert a.train_result.losses == b.train_result.losses
        for pa, pb in zip(a.model.parameters(), b.model.parameters()):
            assert np.array_equal(pa.value, pb.value)


class TestPooledTraining:
    def test_prefetch_pool_trains_to_same_quality_regime(self):
        """The pool path converges like the sequential path (not bitwise —
        batch order depends on thread interleaving — but same loss scale)."""
        _, sampler, layout = build_env()
        fused = FusedEncoder(layout, sampler)

        rng = np.random.default_rng(1)
        _, sequential = run_training(
            layout, lambda: fused.encode_row_ids(sampler.sample_row_id_matrix(512, rng))
        )
        with ThreadedSampler(
            sampler, 512, n_threads=3, seed=4, encode=fused.encode_row_ids
        ) as pool:
            _, pooled = run_training(layout, pool.get_batch)

        assert pooled.steps == sequential.steps
        assert np.isfinite(pooled.final_loss)
        assert pooled.final_loss < sequential.losses[0]  # it actually learned
        assert abs(pooled.final_loss - sequential.final_loss) < 1.0
