"""Batched inference engine: equivalence with the sequential oracle path.

The sequential ``estimate`` loop is the correctness oracle: given the same
per-query generator, ``estimate_batch`` must reproduce its results — exactly
under the deterministic tabular oracle model (both paths draw identical
uniform streams and the oracle's conditionals are row-independent), and
within Monte Carlo tolerance end-to-end on a trained NeuroCard.
"""

import numpy as np
import pytest

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.core.progressive import ProgressiveSampler
from repro.errors import EstimationError
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from tests.core.oracle import OracleModel
from tests.core.test_progressive_oracle import rich_schema
from tests.helpers import paper_figure4_schema


def oracle_sampler(schema, factorization_bits=None):
    oracle = OracleModel(schema, factorization_bits=factorization_bits)
    return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)


def mixed_workload():
    """Queries spanning interval, IN, fanout-downscaled, and empty regions."""
    return [
        Query.make(["R"], [Predicate("R", "year", ">=", 1993)]),
        Query.make(["R", "C1"], [Predicate("C1", "kind", "IN", (0, 2, 3))]),
        Query.make(
            ["R", "C2"],
            [Predicate("C2", "score", ">", 10), Predicate("C2", "score", "<=", 40)],
        ),
        Query.make(["C1"], [Predicate("C1", "kind", "=", 2)]),  # fanout downscale
        Query.make(["R", "C1", "C2"], []),
        Query.make(["R"], [Predicate("R", "year", "=", 3000)]),  # empty region
        Query.make(["R", "C2"], [Predicate("C2", "score", "IN", (1, 7, 30, 44))]),
        Query.make(["R"], [Predicate("R", "year", "=", 1995)]),
    ]


class TestOracleEquivalence:
    @pytest.mark.parametrize("bits", [None, 2], ids=["flat", "factorized"])
    def test_batch_matches_sequential_loop(self, bits):
        """Same per-query rng => batched == sequential, to fp exactness."""
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema, factorization_bits=bits)
        queries = mixed_workload()
        n = 250
        sequential = np.array(
            [
                ps.estimate(q, n_samples=n, rng=np.random.default_rng(50 + i))
                for i, q in enumerate(queries)
            ]
        )
        batched = ps.estimate_batch(
            queries,
            n_samples=n,
            rngs=[np.random.default_rng(50 + i) for i in range(len(queries))],
        )
        np.testing.assert_allclose(batched, sequential, rtol=1e-9)

    def test_fanout_downscaled_subset(self):
        """The paper's Q2 shape: single-table query with fanout scaling."""
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        queries = [
            Query.make(["A"], [Predicate("A", "x", "=", 2)]),
            Query.make(["A", "B", "C"], [Predicate("A", "x", "=", 2)]),
            Query.make(["B", "C"]),
        ]
        batched = ps.estimate_batch(
            queries, n_samples=4000, rng=np.random.default_rng(1)
        )
        assert batched[0] == pytest.approx(1.0, rel=0.1)
        assert batched[1] == pytest.approx(2.0, rel=0.1)

    def test_default_rng_spawns_independent_streams(self):
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema)
        queries = [Query.make(["R"], [Predicate("R", "year", ">=", 1993)])] * 3
        out = ps.estimate_batch(queries, n_samples=200, rng=np.random.default_rng(7))
        # Same query, independent streams: close but not identical estimates.
        assert len(set(np.round(out, 12))) > 1
        assert np.allclose(out, out[0], rtol=0.25)

    def test_empty_batch_and_bad_args(self):
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema)
        assert len(ps.estimate_batch([])) == 0
        query = Query.make(["R"])
        with pytest.raises(EstimationError):
            ps.estimate_batch([query], n_samples=0)
        with pytest.raises(EstimationError):
            ps.estimate_batch([query, query], rngs=[np.random.default_rng(0)])


class TestPlanCache:
    def test_repeated_shapes_hit_cache(self):
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema)
        queries = [
            Query.make(["R", "C1"], [Predicate("R", "year", ">=", 1990 + i % 3)])
            for i in range(12)
        ]
        ps.estimate_batch(queries, n_samples=8, rng=np.random.default_rng(0))
        assert ps.plan_cache_misses == 1  # one distinct table set
        assert ps.plan_cache_hits == 11
        assert len(ps._region_cache) == 3  # three distinct predicate values

    def test_cached_plans_do_not_change_results(self):
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema)
        query = Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 2)])
        first = ps.estimate(query, n_samples=300, rng=np.random.default_rng(3))
        again = ps.estimate(query, n_samples=300, rng=np.random.default_rng(3))
        assert first == again
        assert ps.plan_cache_hits >= 1

    def test_region_cache_bounded(self):
        schema = rich_schema(seed=3)
        ps = oracle_sampler(schema)
        ps.REGION_CACHE_LIMIT = 4
        for year in range(1990, 1997):
            ps.plan(Query.make(["R"], [Predicate("R", "year", "=", year)]))
        assert len(ps._region_cache) <= 4


class TestTrainedModelEquivalence:
    @pytest.fixture(scope="class")
    def fitted(self):
        from tests.core.test_estimator import correlated_schema, small_config

        schema = correlated_schema(n_root=150)
        config = small_config(train_tuples=30_000, progressive_samples=128)
        return schema, NeuroCard(schema, config).fit()

    def test_estimate_batch_matches_sequential(self, fitted):
        _, estimator = fitted
        queries = [
            Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
            Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)]),
            Query.make(["R", "C2"], [Predicate("C2", "score", "<", 10)]),
            Query.make(["R", "C1"], [Predicate("R", "year", "IN", (1991, 1996))]),
            Query.make(["C1"], []),
        ]
        n = estimator.config.progressive_samples
        sequential = np.array(
            [
                estimator.inference.estimate(
                    q, n_samples=n, rng=np.random.default_rng(900 + i)
                )
                for i, q in enumerate(queries)
            ]
        )
        batched = estimator.inference.estimate_batch(
            queries,
            n_samples=n,
            rngs=[np.random.default_rng(900 + i) for i in range(len(queries))],
        )
        # Identical uniform streams; only BLAS batching order may differ.
        np.testing.assert_allclose(batched, sequential, rtol=0.05)

    def test_public_api_returns_one_estimate_per_query(self, fitted):
        _, estimator = fitted
        queries = [
            Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
            Query.make(["R", "C1"], []),
        ]
        out = estimator.estimate_batch(queries, rng=np.random.default_rng(0))
        assert out.shape == (2,)
        assert (out >= 0).all()

    def test_column_conditional_matches_full_forward(self, fitted):
        """The sliced inference fast path computes the same conditionals."""
        _, estimator = fitted
        model = estimator.model
        rng = np.random.default_rng(0)
        n_cols = model.n_columns
        tokens = np.column_stack(
            [rng.integers(0, dom, 64) for dom in model.domains]
        )
        wildcard = rng.random((64, n_cols)) < 0.5
        for col in (0, 1, n_cols // 2, n_cols - 1):
            full = model.conditional(tokens, col, wildcard)
            sliced = model.column_conditional(tokens, col, wildcard)
            np.testing.assert_allclose(sliced, full, rtol=1e-4, atol=1e-7)

    def test_batch_unfitted_raises(self):
        from tests.core.test_estimator import correlated_schema, small_config

        estimator = NeuroCard(correlated_schema(n_root=20), small_config())
        with pytest.raises(EstimationError):
            estimator.estimate_batch([Query.make(["R"])])
