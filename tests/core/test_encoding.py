"""Layout / encoder tests."""

import numpy as np
import pytest

from repro.core.encoding import FanoutEncoder, FusedEncoder, Layout
from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler, joined_column_specs
from tests.helpers import paper_figure4_schema


def make_layout(bits=None):
    schema = paper_figure4_schema()
    counts = JoinCounts(schema)
    specs = joined_column_specs(schema, counts)
    return schema, counts, specs, Layout(schema, counts, specs, bits)


class TestFanoutEncoder:
    def test_vocab_includes_one(self):
        enc = FanoutEncoder(np.array([3, 3, 7]))
        assert 1 in enc.values.tolist()
        assert enc.vocab_size == 3

    def test_encode_known_values(self):
        enc = FanoutEncoder(np.array([1, 2, 5]))
        codes = enc.encode(np.array([1, 2, 5]))
        assert (enc.values[codes] == [1, 2, 5]).all()

    def test_unknown_value_clamps_to_nearest(self):
        enc = FanoutEncoder(np.array([1, 10]))
        codes = enc.encode(np.array([2, 9, 100]))
        assert (enc.values[codes] == [1, 10, 10]).all()

    def test_reciprocals(self):
        enc = FanoutEncoder(np.array([1, 4]))
        assert enc.reciprocals.tolist() == [1.0, 0.25]


class TestLayout:
    def test_domains_match_specs(self):
        schema, counts, specs, layout = make_layout()
        assert layout.n_columns == len(specs)  # no factorization: 1 col/spec
        # Content columns keep dictionary domain sizes.
        assert layout.domains[0] == schema.table("A").column("x").domain_size

    def test_factorized_layout_expands_columns(self):
        _, _, specs, layout = make_layout(bits=1)
        assert layout.n_columns > len(specs)
        for name, factorizer in layout.factorizers.items():
            start, end = layout.spec_ranges[name]
            assert end - start == factorizer.n_sub

    def test_encode_batch_roundtrip(self):
        schema, counts, specs, layout = make_layout(bits=1)
        sampler = FullJoinSampler(schema, counts, specs=specs)
        batch = sampler.sample_batch(256, np.random.default_rng(0))
        tokens = layout.encode_batch(batch)
        assert tokens.shape == (256, layout.n_columns)
        # Factorized content decodes back to the raw codes.
        for spec in specs:
            if spec.kind != "content":
                continue
            start, end = layout.spec_ranges[spec.name]
            decoded = layout.factorizers[spec.name].decode(tokens[:, start:end])
            assert (decoded == batch[spec.name]).all()

    def test_tokens_within_domains(self):
        schema, counts, specs, layout = make_layout(bits=1)
        sampler = FullJoinSampler(schema, counts, specs=specs)
        batch = sampler.sample_batch(512, np.random.default_rng(1))
        tokens = layout.encode_batch(batch)
        for col, dom in enumerate(layout.domains):
            assert tokens[:, col].min() >= 0
            assert tokens[:, col].max() < dom

    def test_fanout_spec_name_lookup(self):
        schema, counts, specs, layout = make_layout()
        edge = schema.edge_between("A", "B")
        assert layout.fanout_spec_name("B", edge) == "__fanout_B.x"
        # A's side is a unique key -> omitted from the model.
        assert layout.fanout_spec_name("A", edge) is None

    def test_unknown_spec_name(self):
        from repro.errors import EstimationError

        _, _, _, layout = make_layout()
        with pytest.raises(EstimationError):
            layout.spec_by_name("nope")


class TestFusedEncoder:
    """The fused row-ids -> tokens gather is bit-identical to
    assemble() + encode_batch() (the two-pass oracle)."""

    @pytest.mark.parametrize("bits", [None, 1, 2])
    def test_bitwise_matches_two_pass_encoding(self, bits):
        schema, counts, specs, layout = make_layout(bits=bits)
        sampler = FullJoinSampler(schema, counts, specs=specs)
        fused = FusedEncoder(layout, sampler)
        matrix = sampler.sample_row_id_matrix(1024, np.random.default_rng(3))
        expected = layout.encode_batch(
            sampler.assemble(sampler.row_ids_as_dict(matrix))
        )
        assert np.array_equal(fused.encode_row_ids(matrix), expected)

    def test_all_null_fragments_tokenize_like_oracle(self):
        """Rows where a whole subtree is ⊥ hit the LUT's trailing null row."""
        schema, counts, specs, layout = make_layout(bits=1)
        sampler = FullJoinSampler(schema, counts, specs=specs)
        fused = FusedEncoder(layout, sampler)
        # Hand-built matrix: root real, everything below ⊥ / orphan mixes.
        matrix = np.array([[0, -1, -1], [1, 2, 2], [-1, -1, 0]], dtype=np.int64)
        expected = layout.encode_batch(
            sampler.assemble(sampler.row_ids_as_dict(matrix))
        )
        assert np.array_equal(fused.encode_row_ids(matrix), expected)

    def test_shape_validation(self):
        from repro.errors import EstimationError

        schema, counts, specs, layout = make_layout()
        sampler = FullJoinSampler(schema, counts, specs=specs)
        fused = FusedEncoder(layout, sampler)
        with pytest.raises(EstimationError):
            fused.encode_row_ids(np.zeros((4, 99), dtype=np.int64))

    def test_mismatched_universe_rejected(self):
        from repro.errors import EstimationError

        schema, counts, _specs, layout = make_layout()
        narrowed = joined_column_specs(schema, counts, exclude=["B.y"])
        sampler = FullJoinSampler(schema, counts, specs=narrowed)
        with pytest.raises(EstimationError):
            FusedEncoder(layout, sampler)
