"""Save/load round-trips for trained estimators."""

import json

import numpy as np
import pytest

from repro.core.persistence import load_model, save_model
from repro.errors import EstimationError, PersistenceError
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.table import Table
from tests.core.test_estimator import correlated_schema, small_config
from repro.core.estimator import NeuroCard


@pytest.fixture(scope="module")
def trained():
    schema = correlated_schema(n_root=150)
    config = small_config(train_tuples=30_000)
    return schema, NeuroCard(schema, config).fit()


class TestRoundtrip:
    def test_estimates_survive_roundtrip(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "model.npz")
        loaded = load_model(path, schema)
        query = Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)])
        rng1, rng2 = np.random.default_rng(7), np.random.default_rng(7)
        assert estimator.estimate(query, rng=rng1) == pytest.approx(
            loaded.estimate(query, rng=rng2)
        )

    def test_estimate_batch_survives_roundtrip(self, trained, tmp_path):
        """A reloaded estimator feeds the batched serving path unchanged."""
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "batched.npz")
        loaded = load_model(path, schema)
        queries = [
            Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)]),
            Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
            Query.make(["R", "C2"], [Predicate("C2", "score", "<=", 10)]),
        ]
        before = estimator.estimate_batch(queries, rng=np.random.default_rng(13))
        after = loaded.estimate_batch(queries, rng=np.random.default_rng(13))
        assert before.shape == after.shape == (3,)
        assert np.all(np.isfinite(after)) and np.all(after >= 0)
        # Identical weights + pinned streams -> identical batched estimates.
        np.testing.assert_allclose(before, after, rtol=1e-9)

    def test_weights_identical(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "m.npz")
        loaded = load_model(path, schema)
        for a, b in zip(estimator.model.parameters(), loaded.model.parameters()):
            assert np.array_equal(a.value, b.value)

    def test_snapshot_metadata_roundtrip(self, trained, tmp_path):
        """data_version + row counts survive save/load and are readable
        without loading any weights (the refresher's freshness probe)."""
        from repro.core.persistence import read_snapshot_metadata

        schema, estimator = trained
        estimator.data_version = 3
        try:
            path = save_model(estimator, tmp_path / "versioned.npz")
        finally:
            estimator.data_version = 0  # shared fixture: restore
        meta = read_snapshot_metadata(path)
        assert meta["data_version"] == 3
        assert meta["n_rows"] == {
            name: table.n_rows for name, table in schema.tables.items()
        }
        assert meta["tuples_seen"] == estimator.train_result.tuples_seen
        loaded = load_model(path, schema)
        assert loaded.data_version == 3

    def test_unfitted_rejected(self, tmp_path):
        schema = correlated_schema(n_root=30)
        with pytest.raises(EstimationError):
            save_model(NeuroCard(schema, small_config()), tmp_path / "x.npz")

    def test_wrong_schema_rejected(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "m2.npz")
        from repro.relational.schema import JoinSchema
        from repro.relational.table import Table

        other = JoinSchema(
            tables={"Z": Table.from_dict("Z", {"a": [1]})}, edges=[], root="Z"
        )
        with pytest.raises(EstimationError):
            load_model(path, other)

    def test_changed_dictionaries_rejected(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "m3.npz")
        from repro.relational.table import Table

        mutated = schema.replace_table(
            Table.from_dict("C2", {"rid": [0, 1], "score": [999, 1000]})
        )
        with pytest.raises(EstimationError):
            load_model(path, mutated)


class TestCompatibilityValidation:
    """Schema/config drift fails early with a clear PersistenceError."""

    def test_extra_column_rejected_with_table_name(self, trained, tmp_path):
        """Mismatched column *counts* fail at validation, not weight loading."""
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "cols.npz")
        c2 = schema.table("C2")
        widened = schema.replace_table(
            Table.from_dict(
                "C2",
                {
                    "rid": list(c2.codes("rid")),
                    "score": list(c2.codes("score")),
                    "extra": [0] * c2.n_rows,
                },
            )
        )
        with pytest.raises(PersistenceError, match="'C2' columns changed"):
            load_model(path, widened)

    def test_renamed_column_rejected(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "renamed.npz")
        c2 = schema.table("C2")
        renamed = schema.replace_table(
            Table.from_dict(
                "C2",
                {"rid": list(c2.codes("rid")), "points": list(c2.codes("score"))},
            )
        )
        with pytest.raises(PersistenceError, match="columns changed"):
            load_model(path, renamed)

    def test_changed_domain_names_offending_column(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "domain.npz")
        mutated = schema.replace_table(
            Table.from_dict("C2", {"rid": [0, 1], "score": [999, 1000]})
        )
        with pytest.raises(PersistenceError, match="C2.(rid|score)"):
            load_model(path, mutated)

    def test_bad_saved_config_rejected(self, trained, tmp_path):
        """A config from a different build fails with a clear message."""
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "config.npz")
        _corrupt_meta(path, lambda m: m["config"].update(not_a_real_knob=1))
        with pytest.raises(PersistenceError, match="config"):
            load_model(path, schema)

    def test_v1_artifact_without_columns_still_loads(self, trained, tmp_path):
        """Back-compat: pre-metadata artifacts load via the domains check."""
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "v1.npz")

        def downgrade(meta):
            meta.pop("columns")
            meta["format_version"] = 1

        _corrupt_meta(path, downgrade)
        loaded = load_model(path, schema)
        query = Query.make(["R"], [Predicate("R", "year", ">=", 1995)])
        assert loaded.estimate(query, rng=np.random.default_rng(3)) >= 0

    def test_unknown_format_version_rejected(self, trained, tmp_path):
        schema, estimator = trained
        path = save_model(estimator, tmp_path / "future.npz")
        _corrupt_meta(path, lambda m: m.update(format_version=99))
        with pytest.raises(PersistenceError, match="unsupported model format"):
            load_model(path, schema)


class TestCompiledCacheExemption:
    """Compiled kernels are derived state: never persisted, lazily refolded."""

    def test_artifact_is_weights_only_and_excludes_compiled_buffers(
        self, trained, tmp_path
    ):
        from repro.core.inference import compiled_size_bytes

        schema, estimator = trained
        query = Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)])
        estimator.estimate(query, rng=np.random.default_rng(2))  # fold kernels
        assert compiled_size_bytes(estimator.inference) > 0
        path = save_model(estimator, tmp_path / "compiled.npz")
        with np.load(path) as data:
            meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
            assert meta["format_version"] == 4
            assert all(
                key == "__meta__" or key.startswith("param::") for key in data.files
            )

    def test_load_recompiles_lazily_from_loaded_weights(self, trained, tmp_path):
        from repro.core.inference import compiled_size_bytes

        schema, estimator = trained
        path = save_model(estimator, tmp_path / "lazy.npz")
        loaded = load_model(path, schema)
        # Nothing folded at load time — especially nothing folded from the
        # throwaway initialization load_model trains before copying weights.
        assert compiled_size_bytes(loaded.inference) == 0
        query = Query.make(["R"], [Predicate("R", "year", ">=", 1995)])
        a = estimator.estimate(query, rng=np.random.default_rng(6))
        b = loaded.estimate(query, rng=np.random.default_rng(6))
        # First estimate folds kernels from the *loaded* weights; identical
        # weights + pinned stream = identical estimate.
        assert a == pytest.approx(b, rel=1e-9)
        assert compiled_size_bytes(loaded.inference) > 0


def _corrupt_meta(path, mutate) -> None:
    """Rewrite the artifact's __meta__ blob in place (test-only tampering)."""
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
    mutate(meta)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
