"""End-to-end NeuroCard: train on a correlated schema, check accuracy & API."""

import numpy as np
import pytest

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.errors import EstimationError, SchemaError, TrainingError
from repro.eval.metrics import q_error
from repro.joins.executor import query_cardinality
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table


def correlated_schema(n_root=300, seed=0):
    """Star schema with strong inter-table correlation.

    Child 'kind' deterministically tracks the root's 'year' bucket, so any
    estimator assuming inter-table independence fails badly here.
    """
    rng = np.random.default_rng(seed)
    years = rng.integers(1990, 2000, n_root)
    root = Table.from_dict(
        "R", {"id": list(range(n_root)), "year": [int(y) for y in years]}
    )
    rows = []
    for rid, year in enumerate(years):
        for _ in range(int(rng.integers(0, 4))):
            rows.append((rid, int(year >= 1995)))
    c1 = Table.from_dict(
        "C1", {"rid": [r[0] for r in rows], "kind": [r[1] for r in rows]}
    )
    c2_rids = rng.integers(0, n_root, n_root * 2)
    c2 = Table.from_dict(
        "C2",
        {
            "rid": [int(v) for v in c2_rids],
            "score": [int(v) for v in rng.integers(0, 20, n_root * 2)],
        },
    )
    return JoinSchema(
        tables={"R": root, "C1": c1, "C2": c2},
        edges=[
            JoinEdge("R", "C1", (("id", "rid"),)),
            JoinEdge("R", "C2", (("id", "rid"),)),
        ],
        root="R",
    )


def small_config(**overrides):
    base = dict(
        d_emb=8,
        d_ff=48,
        n_blocks=1,
        train_tuples=120_000,
        batch_size=512,
        learning_rate=5e-3,
        progressive_samples=400,
        sampler_threads=2,
        exclude_columns=("R.id", "C1.rid", "C2.rid"),
        seed=0,
    )
    base.update(overrides)
    return NeuroCardConfig(**base)


@pytest.fixture(scope="module")
def fitted():
    schema = correlated_schema()
    estimator = NeuroCard(schema, small_config()).fit()
    return schema, estimator


class TestEndToEnd:
    def test_training_loss_decreases(self, fitted):
        _, estimator = fitted
        losses = estimator.train_result.losses
        assert np.mean(losses[-5:]) < np.mean(losses[:5])

    def test_accuracy_on_mixed_queries(self, fitted):
        schema, estimator = fitted
        queries = [
            Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
            Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)]),
            Query.make(["R", "C2"], [Predicate("C2", "score", "<", 10)]),
            Query.make(
                ["R", "C1", "C2"],
                [Predicate("R", "year", "<", 1995), Predicate("C1", "kind", "=", 0)],
            ),
            Query.make(["C1"], []),
            Query.make(
                ["R", "C1"],
                [Predicate("R", "year", "IN", (1991, 1996)), Predicate("C1", "kind", "=", 1)],
            ),
        ]
        errors = []
        rng = np.random.default_rng(123)
        for query in queries:
            truth = query_cardinality(schema, query, counts=estimator.counts)
            est = estimator.estimate(query, rng=rng)
            errors.append(q_error(est, truth))
        # Trained briefly on a small model: demand decent but not heroic accuracy.
        assert np.median(errors) < 2.0
        assert max(errors) < 8.0

    def test_correlation_captured(self, fitted):
        """kind=1 never co-occurs with year<1995; the estimate must be tiny."""
        schema, estimator = fitted
        impossible = Query.make(
            ["R", "C1"],
            [Predicate("R", "year", "<", 1995), Predicate("C1", "kind", "=", 1)],
        )
        possible = Query.make(
            ["R", "C1"],
            [Predicate("R", "year", ">=", 1995), Predicate("C1", "kind", "=", 1)],
        )
        est_bad = estimator.estimate(impossible, rng=np.random.default_rng(5))
        est_good = estimator.estimate(possible, rng=np.random.default_rng(5))
        assert est_bad < 0.15 * est_good

    def test_size_accounting(self, fitted):
        """size_bytes = weights + compiled inference buffers (once folded)."""
        from repro.core.inference import compiled_size_bytes

        _, estimator = fitted
        assert estimator.size_mb > 0
        extra = compiled_size_bytes(estimator.inference)
        assert estimator.size_bytes == estimator.model.size_bytes + extra
        # Earlier tests in this class ran estimates, so the lazily compiled
        # kernels (default fp32 mode) are resident and accounted for.
        estimator.estimate(Query.make(["R"]), rng=np.random.default_rng(0))
        assert estimator.size_bytes > estimator.model.size_bytes


class TestAPI:
    def test_estimate_before_fit_raises(self):
        schema = correlated_schema(n_root=20)
        estimator = NeuroCard(schema, small_config())
        with pytest.raises(EstimationError):
            estimator.estimate(Query.make(["R"]))

    def test_config_validation(self):
        with pytest.raises(TrainingError):
            NeuroCardConfig(progressive_samples=0).validate()
        with pytest.raises(TrainingError):
            NeuroCardConfig(factorization_bits=0).validate()

    def test_update_rejects_changed_domains(self, fitted):
        schema, estimator = fitted
        mutated = schema.replace_table(
            Table.from_dict("C2", {"rid": [0], "score": [999_999]})
        )
        with pytest.raises(SchemaError):
            estimator.update(mutated)

    def test_update_refreshes_counts_and_estimates(self, fitted):
        schema, estimator = fitted
        # Drop half of C2's rows (dictionaries shared via take()).
        c2 = schema.table("C2")
        half = c2.take(np.arange(c2.n_rows // 2))
        new_schema = schema.replace_table(half)
        old_size = estimator.full_join_size
        estimator.update(new_schema, train_tuples=2048)
        assert estimator.full_join_size != old_size
        query = Query.make(["R", "C2"])
        truth = query_cardinality(new_schema, query)
        est = estimator.estimate(query, rng=np.random.default_rng(11))
        assert q_error(est, truth) < 4.0
        # Restore original snapshot for other tests sharing the fixture.
        estimator.update(schema, train_tuples=2048)
