"""Quantized compiled kernels: drift bounds, state transport, accounting.

The precision ladder (see ``docs/accuracy.md``): the fp64 engine is the
bitwise oracle and stays unquantized; fp32 estimates sit within serving
round-off of the reference; int16/int8 kernels trade precision for memory
and fold bandwidth under *measured, bounded* drift vs the fp64 oracle —
int16 within 1e-3 relative, int8 within 5e-2. Those documented bounds are
asserted here on a trained model, and the drift summary must surface
through ``stats()`` (and from there the serving ``/metrics`` gauges).
"""

import numpy as np
import pytest

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.core.inference import (
    CompiledEngine,
    attach_engine_state,
    build_engine,
    compiled_model,
    export_engine_state,
    measure_quantization_drift,
)
from repro.errors import EstimationError, TrainingError
from repro.nn.compiled import CompiledResMADE
from tests.core.test_compiled import batch, engines, fitted, workload  # noqa: F401

#: Documented per-query relative drift ceilings vs the fp64 oracle.
DRIFT_BOUNDS = {"int16": 1e-3, "int8": 5e-2}


def quantized_engine(estimator, quantization):
    return build_engine(
        estimator.model,
        estimator.layout,
        estimator.counts.full_join_size,
        "fp32",
        quantization=quantization,
    )


class TestDriftBounds:
    @pytest.mark.parametrize("quantization", ["int16", "int8"])
    def test_estimates_within_documented_drift(self, fitted, quantization):
        """Quantized estimates stay within the accuracy ladder's ceiling."""
        _, estimator = fitted
        oracle = engines(estimator, "fp64")[0]
        quantized = quantized_engine(estimator, quantization)
        queries = workload()
        ref = batch(oracle, queries)
        got = batch(quantized, queries)
        rel = np.abs(got - ref) / np.maximum(np.abs(ref), 1.0)
        assert rel.max() <= DRIFT_BOUNDS[quantization]

    @pytest.mark.parametrize("quantization", ["int16", "int8"])
    def test_measure_drift_records_stats(self, fitted, quantization):
        """measure_quantization_drift lands the summary in stats()."""
        _, estimator = fitted
        engine = quantized_engine(estimator, quantization)
        rel = measure_quantization_drift(engine, workload(), n_samples=64, seed=9)
        assert rel.shape == (len(workload()),)
        stats = compiled_model(engine).stats()
        assert stats["quantization_bits"] == {"int16": 16, "int8": 8}[quantization]
        assert stats["quantization_drift_queries"] == len(workload())
        assert stats["quantization_drift_rel_max"] == pytest.approx(rel.max())
        assert stats["quantization_drift_rel_max"] <= DRIFT_BOUNDS[quantization]
        assert (
            stats["quantization_drift_rel_p50"]
            <= stats["quantization_drift_rel_p90"]
            <= stats["quantization_drift_rel_max"]
        )

    def test_measure_drift_rejects_unquantized_engines(self, fitted):
        _, estimator = fitted
        engine = engines(estimator, "fp32")[0]
        with pytest.raises(EstimationError):
            measure_quantization_drift(engine, workload(), n_samples=32)

    def test_fp64_oracle_unaffected_by_quantized_config(self, fitted):
        """The oracle path never quantizes: bitwise vs the reference engine."""
        _, estimator = fitted
        ref, oracle = engines(estimator, "off", "fp64")
        queries = workload()
        np.testing.assert_array_equal(batch(ref, queries), batch(oracle, queries))


class TestStateTransport:
    @pytest.mark.parametrize("quantization", ["int16", "int8"])
    def test_export_attach_roundtrip_is_bitwise(self, fitted, quantization):
        """Attached quantized buffers serve bitwise-identical estimates."""
        _, estimator = fitted
        source = quantized_engine(estimator, quantization)
        queries = workload()
        want = batch(source, queries)
        state = export_engine_state(source)
        clone = quantized_engine(estimator, quantization)
        attach_engine_state(clone, state)
        assert compiled_model(clone).stats()["attached"] == 1
        np.testing.assert_array_equal(batch(clone, queries), want)

    def test_quantized_buffers_shrink_size_bytes(self, fitted):
        """int16 ≈ halves and int8 ≈ quarters the compiled footprint."""
        _, estimator = fitted
        sizes = {}
        for quantization in ("off", "int16", "int8"):
            engine = quantized_engine(estimator, quantization)
            compiled_resmade = compiled_model(engine)
            compiled_resmade.compile()
            sizes[quantization] = compiled_resmade.size_bytes
        assert sizes["int16"] < 0.7 * sizes["off"]
        assert sizes["int8"] < 0.5 * sizes["off"]


class TestValidation:
    def test_config_rejects_unknown_quantization(self):
        with pytest.raises(TrainingError):
            NeuroCardConfig(quantization="int4").validate()

    @pytest.mark.parametrize("mode", ["off", "fp64"])
    def test_config_requires_fp32_kernels(self, mode):
        with pytest.raises(TrainingError):
            NeuroCardConfig(quantization="int8", compiled_inference=mode).validate()

    def test_build_engine_rejects_quantized_oracle(self, fitted):
        _, estimator = fitted
        with pytest.raises(EstimationError):
            build_engine(
                estimator.model,
                estimator.layout,
                estimator.counts.full_join_size,
                "fp64",
                quantization="int8",
            )

    def test_compiled_resmade_rejects_bad_combinations(self, fitted):
        _, estimator = fitted
        with pytest.raises(EstimationError):
            CompiledResMADE(estimator.model, mode="fp64", quantization="int16")
        with pytest.raises(EstimationError):
            CompiledResMADE(estimator.model, quantization="float8")

    def test_estimator_builds_quantized_engine_from_config(self):
        """config.quantization reaches the engine the estimator serves from."""
        from tests.core.test_estimator import correlated_schema, small_config

        schema = correlated_schema(n_root=40, seed=2)
        config = small_config(
            train_tuples=2_000, sampler_threads=1, progressive_samples=32
        )
        config.quantization = "int8"
        estimator = NeuroCard(schema, config).fit()
        assert isinstance(estimator.inference, CompiledEngine)
        assert compiled_model(estimator.inference).quantization == "int8"
        assert estimator.estimate(workload()[0]) >= 0.0
