"""Progressive sampling against an exact oracle model.

With exact conditionals, the only estimation error is Monte Carlo noise, so
estimates must match the exact executor closely. This validates region
translation, indicator constraints, fanout scaling, and the factorized
subcolumn machinery end to end — independent of any learning.
"""

import numpy as np
import pytest

from repro.core.progressive import ProgressiveSampler
from repro.joins.executor import query_cardinality
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.core.oracle import OracleModel
from tests.helpers import paper_figure4_schema


def oracle_sampler(schema, factorization_bits=None):
    oracle = OracleModel(schema, factorization_bits=factorization_bits)
    return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)


def rich_schema(seed=0):
    """A 3-table star with skewed keys, NULLs, and content columns."""
    rng = np.random.default_rng(seed)
    n_r, n_c1, n_c2 = 12, 30, 20
    r = Table.from_dict(
        "R",
        {
            "id": list(range(n_r)),
            "year": [int(v) for v in rng.integers(1990, 1998, n_r)],
        },
    )
    c1 = Table.from_dict(
        "C1",
        {
            "rid": [int(v) if v < n_r else None for v in rng.integers(0, n_r + 2, n_c1)],
            "kind": [int(v) for v in rng.integers(0, 4, n_c1)],
        },
    )
    c2 = Table.from_dict(
        "C2",
        {
            "rid": [int(v) for v in rng.integers(0, n_r, n_c2)],
            "score": [int(v) for v in rng.integers(0, 50, n_c2)],
        },
    )
    return JoinSchema(
        tables={"R": r, "C1": c1, "C2": c2},
        edges=[
            JoinEdge("R", "C1", (("id", "rid"),)),
            JoinEdge("R", "C2", (("id", "rid"),)),
        ],
        root="R",
    )


class TestPaperExamples:
    def test_q1_all_tables(self):
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        query = Query.make(["A", "B", "C"], [Predicate("A", "x", "=", 2)])
        est = ps.estimate(query, n_samples=4000, rng=np.random.default_rng(0))
        assert est == pytest.approx(2.0, rel=0.05)

    def test_q2_schema_subsetting_with_fanout(self):
        """The paper's Q2: naive read gives 3, fanout scaling recovers 1."""
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        query = Query.make(["A"], [Predicate("A", "x", "=", 2)])
        est = ps.estimate(query, n_samples=6000, rng=np.random.default_rng(1))
        assert est == pytest.approx(1.0, rel=0.08)

    def test_two_table_subset(self):
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        query = Query.make(["B", "C"])
        truth = query_cardinality(schema, query)
        est = ps.estimate(query, n_samples=6000, rng=np.random.default_rng(2))
        assert est == pytest.approx(truth, rel=0.08)


class TestRicherSchema:
    @pytest.fixture(scope="class")
    def setup(self):
        schema = rich_schema()
        return schema, oracle_sampler(schema)

    @pytest.mark.parametrize(
        "tables,preds",
        [
            (["R"], [("R", "year", ">=", 1994)]),
            (["R", "C1"], [("C1", "kind", "=", 2)]),
            (["R", "C2"], [("C2", "score", "<=", 25)]),
            (["R", "C1", "C2"], [("R", "year", "<", 1995), ("C1", "kind", ">", 0)]),
            (["C1"], [("C1", "kind", "IN", (1, 3))]),
            (["R", "C1"], []),
        ],
    )
    def test_matches_exact_executor(self, setup, tables, preds):
        schema, ps = setup
        query = Query.make(tables, [Predicate(*p) for p in preds])
        truth = query_cardinality(schema, query)
        est = ps.estimate(query, n_samples=5000, rng=np.random.default_rng(42))
        if truth == 0:
            assert est < 1.0
        else:
            assert est == pytest.approx(truth, rel=0.15)


class TestFactorizedInference:
    """Force tiny factorization bits so every content column splits."""

    @pytest.fixture(scope="class")
    def setup(self):
        schema = rich_schema(seed=3)
        return schema, oracle_sampler(schema, factorization_bits=2)

    @pytest.mark.parametrize(
        "tables,preds",
        [
            (["R"], [("R", "year", ">=", 1993)]),
            (["R"], [("R", "year", "=", 1995)]),
            (["R", "C2"], [("C2", "score", ">", 10), ("C2", "score", "<=", 40)]),
            (["R", "C1"], [("C1", "kind", "IN", (0, 2, 3))]),
            (["R", "C1", "C2"], [("R", "year", "<=", 1994), ("C2", "score", ">=", 5)]),
        ],
    )
    def test_factorized_matches_exact(self, setup, tables, preds):
        schema, ps = setup
        query = Query.make(tables, [Predicate(*p) for p in preds])
        truth = query_cardinality(schema, query)
        est = ps.estimate(query, n_samples=5000, rng=np.random.default_rng(7))
        if truth == 0:
            assert est < 1.0
        else:
            assert est == pytest.approx(truth, rel=0.15)

    def test_factorization_is_lossless_on_equality(self, setup):
        schema, ps = setup
        # Equality pins every subcolumn: zero Monte Carlo slack on this column.
        year = schema.table("R").column("year").decode(
            [schema.table("R").codes("year")[0]]
        )[0]
        query = Query.make(["R"], [Predicate("R", "year", "=", year)])
        truth = query_cardinality(schema, query)
        est = ps.estimate(query, n_samples=3000, rng=np.random.default_rng(9))
        assert est == pytest.approx(truth, rel=0.1)


class TestRegionEdgeCases:
    def test_empty_region_returns_zero(self):
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        query = Query.make(["A"], [Predicate("A", "x", "=", 999)])
        assert ps.estimate(query, n_samples=100) == 0.0

    def test_contradictory_predicates_return_zero(self):
        schema = paper_figure4_schema()
        ps = oracle_sampler(schema)
        query = Query.make(
            ["A"], [Predicate("A", "x", "<", 2), Predicate("A", "x", ">", 1)]
        )
        assert ps.estimate(query, n_samples=100) == 0.0

    def test_filter_on_excluded_column_raises(self):
        from repro.errors import QueryError

        schema = paper_figure4_schema()
        oracle = OracleModel(schema, exclude=("B.y",))
        ps = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
        query = Query.make(["A", "B"], [Predicate("B", "y", "=", "a")])
        with pytest.raises(QueryError):
            ps.estimate(query, n_samples=10)
