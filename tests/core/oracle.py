"""An exact 'model' over enumerated full-join rows (test oracle).

Exposes the same ``conditional(tokens, col, wildcard)`` interface as ResMADE
but computes conditionals exactly from the brute-forced full outer join.
Plugged into :class:`ProgressiveSampler`, it isolates the *inference* layer
(region translation, factorization, indicators, fanout scaling) from
learning error: estimates must match the exact executor up to Monte Carlo
noise only.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import Layout
from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler, joined_column_specs
from tests.helpers import brute_force_full_join


class OracleModel:
    def __init__(self, schema, factorization_bits=None, exclude=()):
        self.counts = JoinCounts(schema)
        specs = joined_column_specs(schema, self.counts, exclude=exclude)
        self.sampler = FullJoinSampler(schema, self.counts, specs=specs)
        self.layout = Layout(schema, self.counts, specs, factorization_bits)
        rows = brute_force_full_join(schema)
        row_arrays = {
            t: np.array(
                [(-1 if r[t] is None else r[t]) for r in rows], dtype=np.int64
            )
            for t in schema.tables
        }
        batch = self.sampler.assemble(row_arrays)
        self.all_tokens = self.layout.encode_batch(batch)
        self.full_join_size = float(len(rows))

    def conditional(self, tokens, col, wildcard=None):
        n, dom = len(tokens), self.layout.domains[col]
        out = np.full((n, dom), 1.0 / dom, dtype=np.float64)
        for i in range(n):
            mask = np.ones(len(self.all_tokens), dtype=bool)
            for j in range(col):
                if wildcard is None or not wildcard[i, j]:
                    mask &= self.all_tokens[:, j] == tokens[i, j]
            total = int(mask.sum())
            if total == 0:
                continue
            hist = np.bincount(self.all_tokens[mask, col], minlength=dom)
            out[i] = hist / total
        return out
