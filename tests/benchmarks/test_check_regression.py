"""The bench-regression gate itself: silent-pass holes must stay closed."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"


def run_gate(tmp_path, baseline, reports, *flags):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    report_paths = []
    for i, report in enumerate(reports):
        path = tmp_path / f"report_{i}.json"
        path.write_text(json.dumps(report))
        report_paths.append(str(path))
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline", str(baseline_path),
         *flags, *report_paths],
        capture_output=True, text=True,
    )
    return proc.returncode, proc.stdout + proc.stderr


BASELINE = {
    "tolerance": 0.25,
    "metrics": {
        "b1.qps": {"value": 100, "direction": "higher"},
        "b2.p95_ms": {"value": 10, "direction": "lower"},
    },
}


class TestHappyPaths:
    def test_healthy_reports_pass(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE,
            [{"bench": "b1", "qps": 120}, {"bench": "b2", "p95_ms": 9}],
            "--require-all",
        )
        assert code == 0, out
        assert "passed (2 metrics" in out

    def test_regression_fails(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE, [{"bench": "b1", "qps": 10}],
        )
        assert code == 1
        assert "REGRESSED" in out

    def test_absent_bench_skipped_without_require_all(self, tmp_path):
        code, out = run_gate(tmp_path, BASELINE, [{"bench": "b1", "qps": 120}])
        assert code == 0, out
        assert "SKIPPED" in out

    def test_only_restricts_the_gate(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE, [{"bench": "b1", "qps": 120}],
            "--require-all", "--only", "b1",
        )
        assert code == 0, out


class TestSilentPassHoles:
    def test_duplicate_bench_names_are_a_hard_error(self, tmp_path):
        """A regressed report must not hide behind a healthy one with the
        same bench name (dict-keyed loading used to keep only the last)."""
        code, out = run_gate(
            tmp_path, BASELINE,
            [{"bench": "b1", "qps": 1}, {"bench": "b1", "qps": 120}],
        )
        assert code == 1
        assert "duplicate bench 'b1'" in out

    def test_renamed_bench_is_a_hard_error(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE, [{"bench": "b1_renamed", "qps": 120}],
        )
        assert code == 1
        assert "no baseline metrics" in out

    def test_missing_field_is_a_hard_error(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE, [{"bench": "b1", "qps_renamed": 120}],
        )
        assert code == 1
        assert "missing from the b1 report" in out

    def test_empty_intersection_fails_under_require_all(self, tmp_path):
        """--require-all must never 'pass' having checked zero metrics."""
        code, out = run_gate(
            tmp_path,
            {"tolerance": 0.25, "metrics": {}},
            [{"bench": "b1", "qps": 120}],
            "--require-all",
        )
        assert code == 1

    def test_empty_metrics_and_matching_nothing_fails(self, tmp_path):
        # Degenerate but explicit: an empty baseline cannot gate anything.
        baseline = {"tolerance": 0.25, "metrics": {}}
        report = {"bench": "anything", "x": 1}
        code, out = run_gate(tmp_path, baseline, [report], "--require-all")
        assert code == 1

    def test_require_all_fails_on_absent_bench(self, tmp_path):
        code, out = run_gate(
            tmp_path, BASELINE, [{"bench": "b1", "qps": 120}], "--require-all"
        )
        assert code == 1
        assert "has no report" in out


class TestZeroToleranceMetrics:
    def test_boolean_metric_with_zero_tolerance(self, tmp_path):
        baseline = {
            "tolerance": 0.25,
            "metrics": {
                "b.bitwise": {"value": 1, "direction": "higher", "tolerance": 0.0}
            },
        }
        code, _ = run_gate(tmp_path, baseline, [{"bench": "b", "bitwise": 1}])
        assert code == 0
        code, out = run_gate(tmp_path, baseline, [{"bench": "b", "bitwise": 0}])
        assert code == 1
        assert "REGRESSED" in out


@pytest.mark.parametrize("report", [{}, {"qps": 1}])
def test_report_without_bench_name_is_rejected(tmp_path, report):
    code, out = run_gate(tmp_path, BASELINE, [report])
    assert code == 1
    assert "no 'bench' name" in out
