"""Tests for JoinSchema, JoinEdge, Predicate, and Query validation."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema, star_schema
from repro.relational.table import Table
from tests.helpers import paper_figure4_schema


def chain_schema():
    return paper_figure4_schema()


class TestSchemaValidation:
    def test_valid_chain(self):
        schema = chain_schema()
        assert schema.root == "A"
        assert [e.child for e in schema.child_edges("A")] == ["B"]
        assert schema.parent_edge("B").parent == "A"

    def test_unknown_root(self):
        a = Table.from_dict("A", {"x": [1]})
        with pytest.raises(SchemaError):
            JoinSchema(tables={"A": a}, edges=[], root="Z")

    def test_disconnected_rejected(self):
        a = Table.from_dict("A", {"x": [1]})
        b = Table.from_dict("B", {"x": [1]})
        with pytest.raises(SchemaError):
            JoinSchema(tables={"A": a, "B": b}, edges=[], root="A")

    def test_cycle_rejected(self):
        a = Table.from_dict("A", {"x": [1], "y": [1]})
        b = Table.from_dict("B", {"x": [1], "y": [1]})
        edges = [
            JoinEdge("A", "B", (("x", "x"),)),
            JoinEdge("B", "A", (("y", "y"),)),
        ]
        with pytest.raises(SchemaError):
            JoinSchema(tables={"A": a, "B": b}, edges=edges, root="A")

    def test_unknown_key_column_rejected(self):
        a = Table.from_dict("A", {"x": [1]})
        b = Table.from_dict("B", {"x": [1]})
        with pytest.raises(SchemaError):
            JoinSchema(
                tables={"A": a, "B": b},
                edges=[JoinEdge("A", "B", (("zz", "x"),))],
                root="A",
            )

    def test_bad_orientation_rejected(self):
        a = Table.from_dict("A", {"x": [1]})
        b = Table.from_dict("B", {"x": [1]})
        with pytest.raises(SchemaError):
            JoinSchema(
                tables={"A": a, "B": b},
                edges=[JoinEdge("B", "A", (("x", "x"),))],
                root="A",
            )


class TestTopology:
    def test_bfs_order_full(self):
        schema = chain_schema()
        assert schema.bfs_order() == ["A", "B", "C"]

    def test_bfs_within_subset(self):
        schema = chain_schema()
        assert schema.bfs_order(root="B", within=["B", "C"]) == ["B", "C"]

    def test_connected_subsets(self):
        schema = chain_schema()
        assert schema.is_connected_subset(["A", "B"])
        assert schema.is_connected_subset(["B", "C"])
        assert not schema.is_connected_subset(["A", "C"])

    def test_query_root_is_closest_to_root(self):
        schema = chain_schema()
        assert schema.query_root(["B", "C"]) == "B"
        assert schema.query_root(["C"]) == "C"

    def test_path(self):
        schema = chain_schema()
        assert schema.path("A", "C") == ["A", "B", "C"]

    def test_fanout_edges_for_omitted(self):
        schema = chain_schema()
        plan = schema.fanout_edges_for_omitted(["A"])
        plan = dict(plan)
        # B downscales via its x key (edge A-B); C via its y key (edge B-C).
        assert plan["B"].name == "A<-B"
        assert plan["C"].name == "B<-C"

    def test_join_key_columns(self):
        schema = chain_schema()
        assert schema.join_key_columns("B") == ["y", "x"] or schema.join_key_columns(
            "B"
        ) == ["x", "y"]

    def test_star_schema_constructor(self):
        fact = Table.from_dict("f", {"id": [1, 2]})
        d1 = Table.from_dict("d1", {"fid": [1, 1]})
        schema = star_schema(fact, [(d1, "id", "fid")])
        assert schema.root == "f"
        assert schema.edge_between("f", "d1").keys == (("id", "fid"),)

    def test_replace_table(self):
        schema = chain_schema()
        bigger_a = Table.from_dict("A", {"x": [1, 2, 3]})
        replaced = schema.replace_table(bigger_a)
        assert replaced.table("A").n_rows == 3
        assert schema.table("A").n_rows == 2


class TestQueryValidation:
    def test_valid_query(self):
        schema = chain_schema()
        q = Query.make(["A", "B"], [Predicate("A", "x", "=", 2)])
        q.validate(schema)

    def test_empty_tables_rejected(self):
        with pytest.raises(QueryError):
            Query.make([])

    def test_predicate_outside_join_graph(self):
        with pytest.raises(QueryError):
            Query.make(["A"], [Predicate("B", "x", "=", 1)])

    def test_disconnected_query_rejected(self):
        schema = chain_schema()
        with pytest.raises(QueryError):
            Query.make(["A", "C"]).validate(schema)

    def test_unknown_table_rejected(self):
        schema = chain_schema()
        with pytest.raises(QueryError):
            Query.make(["Z"]).validate(schema)

    def test_bad_operator_rejected(self):
        with pytest.raises(QueryError):
            Predicate("A", "x", "LIKE", "foo")

    def test_in_requires_collection(self):
        with pytest.raises(QueryError):
            Predicate("A", "x", "IN", 3)

    def test_predicates_by_table(self):
        q = Query.make(
            ["A", "B"],
            [Predicate("A", "x", "=", 1), Predicate("A", "x", ">", 0)],
        )
        grouped = q.predicates_by_table()
        assert len(grouped["A"]) == 2
        assert "B" not in grouped
