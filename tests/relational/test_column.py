"""Unit and property tests for dictionary-encoded columns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError
from repro.relational.column import NULL_CODE, Column

values_with_nulls = st.lists(
    st.one_of(st.integers(-50, 50), st.none()), min_size=0, max_size=60
)


class TestConstruction:
    def test_from_values_basic(self):
        col = Column.from_values("c", [3, 1, 2, 1, None])
        assert col.n_rows == 5
        assert col.n_distinct == 3
        assert col.domain_size == 4
        assert col.has_nulls
        assert list(col.dictionary) == [1, 2, 3]

    def test_null_code_reserved(self):
        col = Column.from_values("c", [None, None])
        assert (col.codes == NULL_CODE).all()
        assert col.n_distinct == 0

    def test_string_column(self):
        col = Column.from_values("c", ["b", "a", None, "b"])
        assert col.decode(col.codes) == ["b", "a", None, "b"]

    def test_rejects_bad_codes(self):
        with pytest.raises(DataError):
            Column("c", np.array([5]), np.array([1, 2]))

    def test_rejects_2d_codes(self):
        with pytest.raises(DataError):
            Column("c", np.zeros((2, 2), dtype=np.int64), np.array([1]))

    def test_empty_column(self):
        col = Column.from_values("c", [])
        assert col.n_rows == 0
        assert col.domain_size == 1


class TestRoundtrip:
    @given(values_with_nulls)
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip(self, values):
        col = Column.from_values("c", values)
        assert col.decode(col.codes) == values

    @given(values_with_nulls)
    @settings(max_examples=60, deadline=None)
    def test_dictionary_is_sorted(self, values):
        col = Column.from_values("c", values)
        assert list(col.dictionary) == sorted(set(v for v in values if v is not None))


class TestFilters:
    @given(values_with_nulls, st.sampled_from(["=", "<", "<=", ">", ">="]), st.integers(-55, 55))
    @settings(max_examples=120, deadline=None)
    def test_mask_matches_python_semantics(self, values, op, literal):
        col = Column.from_values("c", values)
        mask = col.mask(op, literal)
        ops = {
            "=": lambda x: x == literal,
            "<": lambda x: x < literal,
            "<=": lambda x: x <= literal,
            ">": lambda x: x > literal,
            ">=": lambda x: x >= literal,
        }
        expected = [v is not None and ops[op](v) for v in values]
        assert list(mask) == expected

    @given(values_with_nulls, st.lists(st.integers(-55, 55), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_in_mask(self, values, in_list):
        col = Column.from_values("c", values)
        mask = col.mask("IN", in_list)
        expected = [v is not None and v in in_list for v in values]
        assert list(mask) == expected

    def test_code_range_never_includes_null(self):
        col = Column.from_values("c", [None, 1, 2, 3])
        for op in ("<", "<=", ">", ">="):
            lo, hi = col.code_range(op, 2)
            assert lo >= 1

    def test_code_for_missing_value(self):
        col = Column.from_values("c", [1, 3])
        assert col.code_for(2) is None
        assert col.code_for(3) == 2

    def test_code_range_rejects_in(self):
        col = Column.from_values("c", [1])
        with pytest.raises(DataError):
            col.code_range("IN", [1])

    def test_empty_interval(self):
        col = Column.from_values("c", [5, 6])
        lo, hi = col.code_range("=", 4)
        assert lo > hi


class TestTake:
    def test_take_preserves_dictionary(self):
        col = Column.from_values("c", [5, None, 7])
        sub = col.take(np.array([2, 0]))
        assert sub.decode(sub.codes) == [7, 5]
        assert sub.dictionary is col.dictionary
