"""Wire-format JSON DSL: structural compilation, round-trips, row equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.relational.dsl import (
    OP_ALIASES,
    predicate_from_dict,
    predicate_to_dict,
    query_from_dict,
    query_to_dict,
)
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.table import Table


class TestPredicateFromDict:
    def test_explicit_table_key(self):
        pred = predicate_from_dict(
            {"table": "t", "column": "c", "op": ">=", "value": 3}
        )
        assert pred == Predicate("t", "c", ">=", 3)

    def test_dotted_column(self):
        pred = predicate_from_dict({"column": "t.c", "op": "<", "value": 7})
        assert pred == Predicate("t", "c", "<", 7)

    def test_dotted_column_agreeing_table_key(self):
        pred = predicate_from_dict(
            {"table": "t", "column": "t.c", "op": "=", "value": 1}
        )
        assert pred == Predicate("t", "c", "=", 1)

    def test_dotted_column_contradicting_table_key(self):
        with pytest.raises(QueryError, match="contradicts"):
            predicate_from_dict(
                {"table": "u", "column": "t.c", "op": "=", "value": 1}
            )

    @pytest.mark.parametrize("alias,canonical", sorted(OP_ALIASES.items()))
    def test_every_alias_compiles_to_its_canonical_op(self, alias, canonical):
        value = [1, 2] if canonical == "IN" else 1
        pred = predicate_from_dict(
            {"table": "t", "column": "c", "op": alias, "value": value}
        )
        assert pred.op == canonical

    def test_in_requires_list(self):
        with pytest.raises(QueryError, match="list value"):
            predicate_from_dict(
                {"table": "t", "column": "c", "op": "in", "value": 3}
            )

    def test_in_list_becomes_tuple(self):
        pred = predicate_from_dict(
            {"table": "t", "column": "c", "op": "in", "value": [3, 1]}
        )
        assert pred.value == (3, 1)

    def test_comparison_rejects_list_value(self):
        with pytest.raises(QueryError, match="scalar"):
            predicate_from_dict(
                {"table": "t", "column": "c", "op": "<", "value": [1]}
            )

    def test_comparison_rejects_null_value(self):
        with pytest.raises(QueryError, match="scalar"):
            predicate_from_dict(
                {"table": "t", "column": "c", "op": "<", "value": None}
            )

    def test_unknown_op(self):
        with pytest.raises(QueryError, match="unsupported filter op"):
            predicate_from_dict(
                {"table": "t", "column": "c", "op": "!=", "value": 1}
            )

    def test_unknown_key(self):
        with pytest.raises(QueryError, match="unknown filter key"):
            predicate_from_dict(
                {"table": "t", "column": "c", "op": "=", "value": 1, "x": 2}
            )

    def test_missing_column(self):
        with pytest.raises(QueryError, match="string 'column'"):
            predicate_from_dict({"table": "t", "op": "=", "value": 1})

    def test_missing_table(self):
        with pytest.raises(QueryError, match="requires a 'table'"):
            predicate_from_dict({"column": "c", "op": "=", "value": 1})

    def test_missing_value(self):
        with pytest.raises(QueryError, match="requires a 'value'"):
            predicate_from_dict({"table": "t", "column": "c", "op": "="})

    def test_non_mapping(self):
        with pytest.raises(QueryError, match="must be an object"):
            predicate_from_dict([1, 2])


class TestQueryFromDict:
    def test_full_document(self):
        query = query_from_dict(
            {
                "tables": ["R", "C"],
                "filters": [
                    {"column": "R.year", "op": "gte", "value": 1990},
                    {"table": "C", "column": "kind", "op": "in", "value": [0, 1]},
                ],
                "name": "q1",
            }
        )
        assert query == Query.make(
            ["R", "C"],
            [
                Predicate("R", "year", ">=", 1990),
                Predicate("C", "kind", "IN", (0, 1)),
            ],
            "q1",
        )

    def test_filters_default_empty(self):
        query = query_from_dict({"tables": ["R"]})
        assert query.predicates == ()

    def test_unknown_key(self):
        with pytest.raises(QueryError, match="unknown query key"):
            query_from_dict({"tables": ["R"], "predicates": []})

    def test_tables_required(self):
        with pytest.raises(QueryError, match="non-empty list"):
            query_from_dict({"filters": []})
        with pytest.raises(QueryError, match="non-empty list"):
            query_from_dict({"tables": []})
        with pytest.raises(QueryError, match="non-empty list"):
            query_from_dict({"tables": "R"})

    def test_filters_must_be_list(self):
        with pytest.raises(QueryError, match="must be a list"):
            query_from_dict({"tables": ["R"], "filters": {"column": "R.c"}})

    def test_name_must_be_string(self):
        with pytest.raises(QueryError, match="'name' must be a string"):
            query_from_dict({"tables": ["R"], "name": 3})

    def test_query_invariants_still_apply(self):
        # Query.make's own checks surface through the same QueryError type.
        with pytest.raises(QueryError):
            query_from_dict(
                {
                    "tables": ["R"],
                    "filters": [{"column": "X.c", "op": "=", "value": 1}],
                }
            )


class TestRoundTrip:
    def test_query_round_trips(self):
        query = Query.make(
            ["R", "C"],
            [
                Predicate("R", "year", "<=", 1995),
                Predicate("C", "kind", "IN", (0, 2)),
            ],
            "labelled",
        )
        assert query_from_dict(query_to_dict(query)) == query

    def test_numpy_scalars_coerce_to_json_native(self):
        query = Query.make(
            ["R"],
            [
                Predicate("R", "year", ">", np.int64(1991)),
                Predicate("R", "kind", "IN", (np.int64(1), np.int64(2))),
            ],
        )
        doc = query_to_dict(query)
        assert type(doc["filters"][0]["value"]) is int
        assert all(type(v) is int for v in doc["filters"][1]["value"])
        # Coerced values compare equal, so the round trip is an equal query.
        assert query_from_dict(doc) == query


# -- property: DSL-compiled == hand-built, down to the selected rows ------

_wire_filters = st.one_of(
    st.tuples(
        st.sampled_from(["=", "==", "eq", "<", "lt", "<=", "le", "lte",
                         ">", "gt", ">=", "ge", "gte"]),
        st.integers(-55, 55),
    ),
    st.tuples(
        st.sampled_from(["in", "IN"]),
        st.lists(st.integers(-55, 55), min_size=0, max_size=6),
    ),
)


class TestSelectsSameRows:
    @given(
        st.lists(st.one_of(st.integers(-50, 50), st.none()),
                 min_size=0, max_size=60),
        _wire_filters,
    )
    @settings(max_examples=120, deadline=None)
    def test_compiled_mask_equals_hand_built_mask(self, values, wire):
        """A wire filter selects exactly the rows its hand-built twin does."""
        op, value = wire
        table = Table.from_dict("T", {"c": values})
        compiled = predicate_from_dict({"column": "T.c", "op": op, "value": value})
        canonical = OP_ALIASES[op]
        hand_built = Predicate(
            "T", "c", canonical,
            tuple(value) if canonical == "IN" else value,
        )
        assert compiled == hand_built
        np.testing.assert_array_equal(
            compiled.mask(table), hand_built.mask(table)
        )

    @given(
        st.lists(st.one_of(st.integers(-50, 50), st.none()),
                 min_size=0, max_size=60),
        _wire_filters,
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_round_trip_preserves_selected_rows(self, values, wire):
        op, value = wire
        table = Table.from_dict("T", {"c": values})
        pred = predicate_from_dict({"column": "T.c", "op": op, "value": value})
        round_tripped = predicate_from_dict(predicate_to_dict(pred))
        np.testing.assert_array_equal(
            pred.mask(table), round_tripped.mask(table)
        )
