"""Tests for Table and HashIndex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataError
from repro.relational.column import NULL_CODE
from repro.relational.index import HashIndex
from repro.relational.table import Table


class TestTable:
    def test_from_dict(self):
        t = Table.from_dict("t", {"a": [1, 2], "b": ["x", None]})
        assert t.n_rows == 2
        assert t.column_names == ["a", "b"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Table.from_dict("t", {"a": [1, 2], "b": [1]})

    def test_no_columns_rejected(self):
        with pytest.raises(DataError):
            Table("t", [])

    def test_unknown_column_rejected(self):
        t = Table.from_dict("t", {"a": [1]})
        with pytest.raises(DataError):
            t.column("zz")

    def test_key_codes_shape(self):
        t = Table.from_dict("t", {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert t.key_codes(["a", "b"]).shape == (3, 2)

    def test_take(self):
        t = Table.from_dict("t", {"a": [10, 20, 30]})
        sub = t.take(np.array([2, 0]))
        assert sub.column("a").decode(sub.codes("a")) == [30, 10]

    def test_concat_same_dictionary(self):
        t1 = Table.from_dict("t", {"a": [1, 2]})
        t2 = Table.from_dict("t", {"a": [2, 1]})
        merged = t1.concat(t2)
        assert merged.n_rows == 4
        assert merged.column("a").decode(merged.codes("a")) == [1, 2, 2, 1]

    def test_concat_extends_dictionary(self):
        t1 = Table.from_dict("t", {"a": [1, 3]})
        t2 = Table.from_dict("t", {"a": [2, None]})
        merged = t1.concat(t2)
        assert merged.column("a").decode(merged.codes("a")) == [1, 3, 2, None]
        assert list(merged.column("a").dictionary) == [1, 2, 3]


class TestHashIndex:
    def test_lookup_matches_scan(self):
        t = Table.from_dict("t", {"k": [1, 2, 1, None, 2, 1]})
        idx = HashIndex(t, ["k"])
        code_1 = t.column("k").code_for(1)
        rows = sorted(idx.lookup((code_1,)))
        assert rows == [0, 2, 5]
        assert idx.count((code_1,)) == 3

    def test_null_key_lookup_empty(self):
        t = Table.from_dict("t", {"k": [None, 1]})
        idx = HashIndex(t, ["k"])
        assert idx.lookup((NULL_CODE,)).size == 0

    def test_composite_key(self):
        t = Table.from_dict("t", {"a": [1, 1, 2], "b": [5, 6, 5]})
        idx = HashIndex(t, ["a", "b"])
        a1 = t.column("a").code_for(1)
        b5 = t.column("b").code_for(5)
        assert list(idx.lookup((a1, b5))) == [0]

    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_index_covers_all_rows(self, pairs):
        t = Table.from_dict("t", {"a": [p[0] for p in pairs], "b": [p[1] for p in pairs]})
        idx = HashIndex(t, ["a", "b"])
        seen = sorted(r for key in idx.keys() for r in idx.lookup(key) if True)
        # NULL-free data: every row appears exactly once across groups.
        assert seen == list(range(len(pairs)))

    def test_translate_key(self):
        t1 = Table.from_dict("t1", {"k": [10, 20, 30]})
        t2 = Table.from_dict("t2", {"j": [20, 40]})
        key = (t1.column("k").code_for(20),)
        translated = HashIndex.translate_key(t1, ["k"], key, t2, ["j"])
        assert translated == (t2.column("j").code_for(20),)
        missing = HashIndex.translate_key(t1, ["k"], (t1.column("k").code_for(10),), t2, ["j"])
        assert missing == (-1,)
