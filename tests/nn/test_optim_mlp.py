"""Adam and MLP sanity tests."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.mlp import MLP
from repro.nn.optim import Adam


class TestAdam:
    def test_minimizes_quadratic(self):
        p = Parameter("p", np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1, warmup_steps=0)
        for _ in range(500):
            opt.zero_grad()
            p.grad += 2 * p.value  # d/dp ||p||^2
            opt.step()
        assert np.abs(p.value).max() < 1e-2

    def test_warmup_scales_first_steps(self):
        p = Parameter("p", np.array([1.0]))
        opt = Adam([p], lr=1.0, warmup_steps=10)
        opt.zero_grad()
        p.grad += np.array([1.0])
        opt.step()
        # First step uses lr/10; Adam normalizes so step size ~ lr_effective.
        assert abs(1.0 - p.value[0]) < 0.2

    def test_clipping_bounds_update(self):
        p = Parameter("p", np.zeros(4))
        opt = Adam([p], lr=0.1, clip_norm=1.0, warmup_steps=0)
        opt.zero_grad()
        p.grad += np.full(4, 1e9)
        opt._clip()
        assert np.sqrt((p.grad**2).sum()) == pytest.approx(1.0, rel=1e-6)


class TestMLP:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        mlp = MLP(rng, [2, 32, 1], dtype=np.float64)
        opt = Adam(mlp.parameters(), lr=5e-3, warmup_steps=0)
        true_w = np.array([2.0, -1.0])
        for _ in range(800):
            x = rng.standard_normal((64, 2))
            y = x @ true_w + 0.5
            opt.zero_grad()
            mlp.mse_loss_and_backward(x, y)
            opt.step()
        x = rng.standard_normal((256, 2))
        pred = mlp.forward(x).ravel()
        assert np.abs(pred - (x @ true_w + 0.5)).mean() < 0.1

    def test_parameter_listing(self):
        rng = np.random.default_rng(1)
        mlp = MLP(rng, [3, 4, 2])
        assert len(mlp.parameters()) == 4  # two Linear layers x (W, b)
