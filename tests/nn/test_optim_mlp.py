"""Adam and MLP sanity tests."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.mlp import MLP
from repro.nn.optim import Adam


class TestAdam:
    def test_minimizes_quadratic(self):
        p = Parameter("p", np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1, warmup_steps=0)
        for _ in range(500):
            opt.zero_grad()
            p.grad += 2 * p.value  # d/dp ||p||^2
            opt.step()
        assert np.abs(p.value).max() < 1e-2

    def test_warmup_scales_first_steps(self):
        p = Parameter("p", np.array([1.0]))
        opt = Adam([p], lr=1.0, warmup_steps=10)
        opt.zero_grad()
        p.grad += np.array([1.0])
        opt.step()
        # First step uses lr/10; Adam normalizes so step size ~ lr_effective.
        assert abs(1.0 - p.value[0]) < 0.2

    def test_clipping_bounds_update(self):
        p = Parameter("p", np.zeros(4))
        opt = Adam([p], lr=0.1, clip_norm=1.0, warmup_steps=0)
        opt.zero_grad()
        p.grad += np.full(4, 1e9)
        opt._clip()
        assert np.sqrt((p.grad**2).sum()) == pytest.approx(1.0, rel=1e-6)

    def test_cosine_decays_to_floor(self):
        opt = Adam([Parameter("p", np.zeros(1))], lr=1.0, warmup_steps=2,
                   total_steps=20, min_lr_ratio=0.05)
        assert opt.lr_at(2) == pytest.approx(1.0)
        assert opt.lr_at(20) == pytest.approx(0.05)
        assert opt.lr_at(40) == pytest.approx(0.05)  # clamped past the end


class TestScheduleExtension:
    """Incremental updates reuse the fit() optimizer past total_steps."""

    def _exhausted(self):
        opt = Adam([Parameter("p", np.zeros(1))], lr=1.0, warmup_steps=2,
                   total_steps=20, min_lr_ratio=0.05)
        opt.t = 20  # as if fit() ran the full original schedule
        return opt

    def test_without_extension_lr_is_stuck_at_floor(self):
        opt = self._exhausted()
        assert opt.lr_at(21) == pytest.approx(0.05)
        assert opt.lr_at(35) == pytest.approx(0.05)

    def test_extension_reanchors_warmup_and_decay(self):
        opt = self._exhausted()
        opt.extend_schedule(30)
        assert opt.total_steps == 50
        # Fresh warmup ramp, then a real decay segment back down to the floor.
        assert opt.lr_at(21) == pytest.approx(0.5)
        assert opt.lr_at(22) == pytest.approx(1.0)
        mid = opt.lr_at(36)
        assert 0.05 < mid < 1.0
        assert opt.lr_at(50) == pytest.approx(0.05)
        assert opt.lr_at(36) > opt.lr_at(45) > opt.lr_at(50)

    def test_short_extension_skips_warmup_and_still_decays(self):
        """An update budget shorter than warmup_steps must not spend every
        step ramping: the segment warmup is capped, leaving a real decay."""
        opt = self._exhausted()
        opt.extend_schedule(8)  # 8 // 10 == 0 -> no warmup this segment
        assert opt.lr_at(21) == pytest.approx(1.0, rel=0.05)
        assert opt.lr_at(28) == pytest.approx(0.05)
        assert opt.lr_at(21) > opt.lr_at(24) > opt.lr_at(28)

    def test_extension_noop_for_nonpositive_steps(self):
        opt = self._exhausted()
        opt.extend_schedule(0)
        assert opt.total_steps == 20
        assert opt.lr_at(21) == pytest.approx(0.05)

    def test_no_decay_optimizer_keeps_constant_lr(self):
        opt = Adam([Parameter("p", np.zeros(1))], lr=1.0, warmup_steps=0,
                   total_steps=None)
        opt.t = 100
        opt.extend_schedule(10)
        assert opt.total_steps is None
        assert opt.lr_at(105) == pytest.approx(1.0)

    def test_neurocard_update_extends_schedule(self):
        from repro.core.config import NeuroCardConfig
        from repro.core.estimator import NeuroCard
        from tests.core.test_estimator import correlated_schema

        schema = correlated_schema(n_root=40)
        config = NeuroCardConfig(
            d_emb=4, d_ff=16, n_blocks=1, train_tuples=4096, batch_size=256,
            progressive_samples=8, sampler_threads=1,
            exclude_columns=("R.id", "C1.rid", "C2.rid"),
        )
        estimator = NeuroCard(schema, config).fit()
        opt = estimator._optimizer
        original_total = opt.total_steps
        assert opt.t == original_total  # fit consumed the whole schedule
        estimator.update(schema, train_tuples=2048)
        assert opt.total_steps == original_total + 2048 // 256
        assert opt._segment_start == original_total


class TestMLP:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        mlp = MLP(rng, [2, 32, 1], dtype=np.float64)
        opt = Adam(mlp.parameters(), lr=5e-3, warmup_steps=0)
        true_w = np.array([2.0, -1.0])
        for _ in range(800):
            x = rng.standard_normal((64, 2))
            y = x @ true_w + 0.5
            opt.zero_grad()
            mlp.mse_loss_and_backward(x, y)
            opt.step()
        x = rng.standard_normal((256, 2))
        pred = mlp.forward(x).ravel()
        assert np.abs(pred - (x @ true_w + 0.5)).mean() < 0.1

    def test_parameter_listing(self):
        rng = np.random.default_rng(1)
        mlp = MLP(rng, [3, 4, 2])
        assert len(mlp.parameters()) == 4  # two Linear layers x (W, b)
