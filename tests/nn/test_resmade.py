"""ResMADE: autoregressive property, gradient check, learning, wildcards."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.optim import Adam
from repro.nn.resmade import ResMADE


class TestAutoregressiveProperty:
    def test_logits_independent_of_later_columns(self):
        """Column i's logits must not change when columns >= i change."""
        model = ResMADE([4, 5, 3], d_emb=8, d_ff=32, n_blocks=2, seed=0)
        rng = np.random.default_rng(0)
        base = np.stack(
            [rng.integers(0, d, size=16) for d in model.domains], axis=1
        )
        flat = model.forward_logits(base)
        for col in range(3):
            mutated = base.copy()
            for later in range(col, 3):
                mutated[:, later] = rng.integers(0, model.domains[later], 16)
            flat2 = model.forward_logits(mutated)
            assert np.allclose(
                model.column_logits(flat, col), model.column_logits(flat2, col)
            ), f"column {col} depends on later columns"

    def test_first_column_is_constant_marginal(self):
        model = ResMADE([4, 5], d_emb=4, d_ff=16, n_blocks=1, seed=1)
        rng = np.random.default_rng(1)
        tokens = np.stack([rng.integers(0, 4, 8), rng.integers(0, 5, 8)], axis=1)
        probs = model.conditional(tokens, 0)
        assert np.allclose(probs, probs[0])


class TestGradients:
    def test_full_model_gradient_check(self):
        model = ResMADE([3, 4], d_emb=3, d_ff=8, n_blocks=1, seed=2, dtype=np.float64)
        tokens = np.array([[0, 1], [2, 3], [1, 0]])
        for p in model.parameters():
            p.zero_grad()
        model.loss_and_backward(tokens)
        eps = 1e-6
        rng = np.random.default_rng(3)
        for param in model.parameters():
            flat = param.value.reshape(-1)
            gflat = param.grad.reshape(-1)
            for idx in rng.choice(flat.size, size=min(5, flat.size), replace=False):
                old = flat[idx]
                flat[idx] = old + eps
                up = self._loss_only(model, tokens)
                flat[idx] = old - eps
                down = self._loss_only(model, tokens)
                flat[idx] = old
                numerical = (up - down) / (2 * eps)
                assert gflat[idx] == pytest.approx(numerical, abs=1e-5), param.name

    @staticmethod
    def _loss_only(model, tokens):
        from repro.nn.layers import cross_entropy

        flat = model.forward_logits(tokens)
        total = 0.0
        for i in range(model.n_columns):
            loss, _ = cross_entropy(model.column_logits(flat, i), tokens[:, i])
            total += loss
        return total


class TestLearning:
    def test_learns_correlated_joint(self):
        """Train on a deterministic x1 = f(x0) joint; conditionals become sharp."""
        rng = np.random.default_rng(4)
        model = ResMADE([4, 4], d_emb=8, d_ff=32, n_blocks=2, seed=5)
        optimizer = Adam(model.parameters(), lr=5e-3)
        for _ in range(300):
            x0 = rng.integers(0, 4, size=128)
            tokens = np.stack([x0, (x0 + 1) % 4], axis=1)
            optimizer.zero_grad()
            model.loss_and_backward(tokens)
            optimizer.step()
        probe = np.stack([np.arange(4), np.zeros(4, dtype=np.int64)], axis=1)
        cond = model.conditional(probe, 1)
        for x0 in range(4):
            assert cond[x0, (x0 + 1) % 4] > 0.9

    def test_marginal_learned_on_first_column(self):
        rng = np.random.default_rng(6)
        model = ResMADE([3, 2], d_emb=8, d_ff=16, n_blocks=1, seed=7)
        optimizer = Adam(model.parameters(), lr=5e-3)
        target = np.array([0.7, 0.2, 0.1])
        for _ in range(300):
            x0 = rng.choice(3, size=256, p=target)
            tokens = np.stack([x0, rng.integers(0, 2, 256)], axis=1)
            optimizer.zero_grad()
            model.loss_and_backward(tokens)
            optimizer.step()
        probs = model.conditional(np.zeros((1, 2), dtype=np.int64), 0)[0]
        assert np.allclose(probs, target, atol=0.06)


class TestWildcards:
    def test_wildcard_learns_marginalized_conditional(self):
        """With x0 masked, p(x1 | MASK) should approach the x1 marginal."""
        rng = np.random.default_rng(8)
        model = ResMADE([2, 2], d_emb=8, d_ff=32, n_blocks=2, seed=9)
        optimizer = Adam(model.parameters(), lr=5e-3)
        # Joint: x1 == x0, x0 ~ Bernoulli(0.8). Marginal of x1 is (0.2, 0.8).
        for _ in range(400):
            x0 = (rng.random(256) < 0.8).astype(np.int64)
            tokens = np.stack([x0, x0], axis=1)
            wildcard = model.sample_wildcard_mask(256, rng)
            optimizer.zero_grad()
            model.loss_and_backward(tokens, wildcard)
            optimizer.step()
        tokens = np.zeros((1, 2), dtype=np.int64)
        wildcard = np.array([[True, False]])
        probs = model.conditional(tokens, 1, wildcard)[0]
        assert probs[1] == pytest.approx(0.8, abs=0.08)
        # And the unmasked conditional stays sharp.
        seen = np.array([[1, 0]])
        probs_cond = model.conditional(seen, 1)[0]
        assert probs_cond[1] > 0.9


class TestValidation:
    def test_empty_domains_rejected(self):
        with pytest.raises(TrainingError):
            ResMADE([])

    def test_bad_domain_rejected(self):
        with pytest.raises(TrainingError):
            ResMADE([3, 0])

    def test_bad_token_shape_rejected(self):
        model = ResMADE([3, 3])
        with pytest.raises(TrainingError):
            model.forward_logits(np.zeros((4, 5), dtype=np.int64))

    def test_size_accounting(self):
        model = ResMADE([10, 20], d_emb=4, d_ff=8, n_blocks=1)
        assert model.size_bytes == sum(p.value.nbytes for p in model.parameters())
        assert model.size_mb == pytest.approx(model.size_bytes / 2**20)
