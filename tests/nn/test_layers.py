"""Gradient checks and unit tests for the numpy layers."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.layers import Embedding, Linear, ReLU, Sigmoid, cross_entropy, softmax


def finite_diff(f, param, eps=1e-5):
    """Numerical gradient of scalar f() w.r.t. param.value."""
    grad = np.zeros_like(param.value, dtype=np.float64)
    flat = param.value.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f()
        flat[i] = old - eps
        down = f()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


class TestLinearGradients:
    def test_weight_and_bias_gradients(self):
        rng = np.random.default_rng(0)
        lin = Linear(rng, 4, 3, dtype=np.float64)
        x = rng.standard_normal((5, 4))

        def loss():
            return float((lin.forward(x) ** 2).sum())

        lin.W.zero_grad()
        lin.b.zero_grad()
        out = lin.forward(x)
        lin.backward(2 * out)
        assert np.allclose(lin.W.grad, finite_diff(loss, lin.W), atol=1e-6)
        assert np.allclose(lin.b.grad, finite_diff(loss, lin.b), atol=1e-6)

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        lin = Linear(rng, 4, 3, dtype=np.float64)
        x = rng.standard_normal((2, 4))
        out = lin.forward(x)
        dx = lin.backward(np.ones_like(out))
        expected = np.ones((2, 3)) @ lin.effective_weight()
        assert np.allclose(dx, expected)

    def test_masked_connections_stay_zero(self):
        rng = np.random.default_rng(2)
        mask = np.array([[1.0, 0.0], [0.0, 1.0]])
        lin = Linear(rng, 2, 2, mask=mask, dtype=np.float64)
        x = rng.standard_normal((3, 2))
        out = lin.forward(x)
        lin.backward(np.ones_like(out))
        assert lin.W.grad[0, 1] == 0.0
        assert lin.W.grad[1, 0] == 0.0
        # Masked weights never influence the output.
        assert np.allclose(out[:, 0], x[:, 0] * lin.W.value[0, 0] + lin.b.value[0])

    def test_mask_shape_validated(self):
        rng = np.random.default_rng(3)
        with pytest.raises(TrainingError):
            Linear(rng, 2, 2, mask=np.ones((3, 2)))

    def test_backward_before_forward_raises(self):
        rng = np.random.default_rng(3)
        lin = Linear(rng, 2, 2)
        with pytest.raises(TrainingError):
            lin.backward(np.ones((1, 2)))


class TestEmbedding:
    def test_scatter_add_backward(self):
        rng = np.random.default_rng(4)
        emb = Embedding(rng, vocab=5, dim=3, dtype=np.float64)
        ids = np.array([1, 1, 4])
        out = emb.forward(ids)
        emb.W.zero_grad()
        emb.backward(np.ones_like(out))
        assert np.allclose(emb.W.grad[1], [2, 2, 2])
        assert np.allclose(emb.W.grad[4], [1, 1, 1])
        assert np.allclose(emb.W.grad[0], 0)

    def test_out_of_vocab_rejected(self):
        rng = np.random.default_rng(5)
        emb = Embedding(rng, vocab=3, dim=2)
        with pytest.raises(TrainingError):
            emb.forward(np.array([3]))


class TestActivations:
    def test_relu_gradient(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0, 0.0]])
        out = relu.forward(x)
        assert np.allclose(out, [[0, 2, 0]])
        grad = relu.backward(np.ones_like(x))
        assert np.allclose(grad, [[0, 1, 0]])

    def test_sigmoid_range_and_gradient(self):
        sig = Sigmoid()
        x = np.array([[0.0, 100.0, -100.0]])
        y = sig.forward(x)
        assert y[0, 0] == pytest.approx(0.5)
        assert 0 <= y.min() and y.max() <= 1
        grad = sig.backward(np.ones_like(x))
        assert grad[0, 0] == pytest.approx(0.25)


class TestSoftmaxCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(6)
        probs = softmax(rng.standard_normal((8, 5)) * 10)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_gradient_matches_finite_diff(self):
        rng = np.random.default_rng(7)
        logits = rng.standard_normal((4, 3))
        targets = np.array([0, 2, 1, 2])
        _, grad = cross_entropy(logits, targets)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                num = (
                    cross_entropy(up, targets)[0] - cross_entropy(down, targets)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-4)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
