"""Postgres-style, IBJS, and join-sampling baselines."""

import numpy as np
import pytest

from repro.baselines.ibjs import BiasedJoinSampler, IBJSEstimator
from repro.baselines.postgres import PostgresEstimator
from repro.baselines.sampling import JoinSampleEstimator
from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.joins.sampler import FullJoinSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from tests.helpers import paper_figure4_schema


def uniform_star(n_root=200, fan=2, seed=0):
    rng = np.random.default_rng(seed)
    root = Table.from_dict(
        "R", {"id": list(range(n_root)), "a": [int(v) for v in rng.integers(0, 10, n_root)]}
    )
    rids = np.repeat(np.arange(n_root), fan)
    child = Table.from_dict(
        "C", {"rid": [int(v) for v in rids], "b": [int(v) for v in rng.integers(0, 10, len(rids))]}
    )
    return JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )


class TestPostgres:
    def test_exact_on_uniform_independent_data(self):
        """AVI + uniform-join heuristics are right when assumptions hold."""
        schema = uniform_star()
        pg = PostgresEstimator(schema)
        query = Query.make(["R", "C"], [Predicate("R", "a", "=", 3)])
        truth = query_cardinality(schema, query)
        assert pg.estimate(query) == pytest.approx(truth, rel=0.35)

    def test_range_selectivity(self):
        schema = uniform_star()
        pg = PostgresEstimator(schema)
        query = Query.make(["R"], [Predicate("R", "a", "<=", 4)])
        truth = query_cardinality(schema, query)
        assert pg.estimate(query) == pytest.approx(truth, rel=0.3)

    def test_unknown_equality_value(self):
        schema = uniform_star()
        pg = PostgresEstimator(schema)
        query = Query.make(["R"], [Predicate("R", "a", "=", 999)])
        assert pg.estimate(query) == 0.0

    def test_size_accounting(self):
        pg = PostgresEstimator(uniform_star())
        assert 0 < pg.size_bytes < 200_000  # "tiny" like Postgres stats

    def test_in_predicate(self):
        schema = uniform_star()
        pg = PostgresEstimator(schema)
        query = Query.make(["R"], [Predicate("R", "a", "IN", (1, 2))])
        truth = query_cardinality(schema, query)
        assert pg.estimate(query) == pytest.approx(truth, rel=0.4)


class TestIBJS:
    def test_near_exact_with_full_sampling(self):
        schema = uniform_star(n_root=150)
        counts = JoinCounts(schema)
        ibjs = IBJSEstimator(schema, counts, max_samples=10_000, seed=0)
        query = Query.make(["R", "C"], [Predicate("C", "b", "=", 5)])
        truth = query_cardinality(schema, query, counts=counts)
        assert ibjs.estimate(query) == pytest.approx(truth, rel=0.05)

    def test_small_samples_can_zero_out(self):
        """Low-selectivity queries get empty intermediate samples (the paper's
        explanation of IBJS tail failures)."""
        schema = uniform_star(n_root=500, seed=1)
        counts = JoinCounts(schema)
        ibjs = IBJSEstimator(schema, counts, max_samples=10, seed=2)
        rare = Query.make(
            ["R", "C"], [Predicate("R", "a", "=", 3), Predicate("C", "b", "=", 7)]
        )
        estimates = {ibjs.estimate(rare) for _ in range(20)}
        assert 0.0 in estimates

    def test_respects_filters_on_root(self):
        schema = uniform_star()
        counts = JoinCounts(schema)
        ibjs = IBJSEstimator(schema, counts, max_samples=10_000)
        empty = Query.make(["R"], [Predicate("R", "a", "=", 999)])
        assert ibjs.estimate(empty) == 0.0


class TestBiasedSampler:
    def test_interface_matches_full_join_sampler(self):
        schema = paper_figure4_schema()
        counts = JoinCounts(schema)
        biased = BiasedJoinSampler(schema, counts)
        batch = biased.sample_batch(128, np.random.default_rng(0))
        unbiased = FullJoinSampler(schema, counts)
        assert set(batch) == set(unbiased.sample_batch(8, np.random.default_rng(0)))

    def test_bias_underweights_high_fanout(self):
        """A.x=2 leads 3 of 5 full-join rows, but the biased walk gives ~1/2."""
        schema = paper_figure4_schema()
        biased = BiasedJoinSampler(schema)
        rows = biased.sample_row_ids(20_000, np.random.default_rng(1))
        a = schema.table("A")
        x2_row = list(a.codes("x")).index(a.column("x").code_for(2))
        frac = (rows["A"] == x2_row).mean()
        assert frac == pytest.approx(0.5, abs=0.02)  # biased
        assert abs(frac - 3.0 / 5.0) > 0.05  # far from the true 0.6


class TestJoinSampleEstimator:
    def test_unbiased_estimates(self):
        schema = uniform_star(n_root=100)
        counts = JoinCounts(schema)
        est = JoinSampleEstimator(schema, counts, n_samples=20_000, seed=0)
        query = Query.make(["R", "C"], [Predicate("C", "b", "<=", 4)])
        truth = query_cardinality(schema, query, counts=counts)
        assert est.estimate(query) == pytest.approx(truth, rel=0.05)

    def test_zero_hits_on_rare_queries(self):
        schema = uniform_star(n_root=400, seed=3)
        counts = JoinCounts(schema)
        est = JoinSampleEstimator(schema, counts, n_samples=20, seed=4)
        rare = Query.make(
            ["R", "C"], [Predicate("R", "a", "=", 1), Predicate("C", "b", "=", 1)]
        )
        assert est.estimate(rare) in (0.0, pytest.approx(est._graph_size(("C", "R")) / 20, rel=1.0))
