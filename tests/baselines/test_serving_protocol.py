"""Baseline estimators under the serving protocol.

Every cascade tier must look like a served model: registrable in a
``ModelRegistry`` (``is_fitted`` / ``size_bytes``), batch-equivalent to
its own sequential path (``estimate_batch``), and calibratable with a
lossless persistence round trip. ``docs/estimators.md`` documents the
batch-equivalence nuance this file pins: deterministic tiers (per-table
stats, DeepDB) are bitwise-identical call by call, while the sampling
tiers (IBJS, join samples) consume a shared generator stream — their
equivalence is batch-vs-sequential *from the same starting stream*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ibjs import IBJSEstimator
from repro.baselines.per_table import PerTableStatsEstimator
from repro.baselines.sampling import JoinSampleEstimator
from repro.baselines.spn import DeepDBEstimator
from repro.errors import ServingError
from repro.eval.calibration import calibration_workload
from repro.eval.harness import true_cardinalities
from repro.serving import EstimatorCascade, ModelRegistry
from tests.core.test_estimator import correlated_schema

DETERMINISTIC = {
    "per_table": lambda schema: PerTableStatsEstimator(schema),
    "deepdb": lambda schema: DeepDBEstimator(schema, n_samples=2_000, seed=3),
}
STOCHASTIC = {
    "ibjs": lambda schema: IBJSEstimator(schema, max_samples=200, seed=5),
    "join_samples": lambda schema: JoinSampleEstimator(
        schema, n_samples=500, seed=5
    ),
}
ALL_TIERS = {**DETERMINISTIC, **STOCHASTIC}


@pytest.fixture(scope="module")
def schema():
    return correlated_schema(n_root=40, seed=2)


@pytest.fixture(scope="module")
def workload(schema):
    return calibration_workload(schema, n_queries=24, seed=9)


@pytest.mark.parametrize("name", sorted(ALL_TIERS))
class TestProtocolSurface:
    def test_registry_registration_and_lookup(self, schema, name):
        estimator = ALL_TIERS[name](schema)
        registry = ModelRegistry()
        registry.register(name, estimator)
        assert registry.get(name) is estimator
        with pytest.raises(ServingError):
            registry.register(name, estimator)  # duplicates need swap()

    def test_protocol_attributes(self, schema, name):
        estimator = ALL_TIERS[name](schema)
        assert estimator.is_fitted is True
        # None (nothing resident) or a byte count; per-table stats hold no
        # weights at all and honestly report 0.
        assert estimator.size_bytes is None or estimator.size_bytes >= 0
        assert callable(estimator.estimate)
        assert callable(estimator.estimate_batch)

    def test_estimates_are_finite_and_nonnegative(self, schema, workload, name):
        estimator = ALL_TIERS[name](schema)
        batch = estimator.estimate_batch(workload)
        assert batch.shape == (len(workload),)
        assert batch.dtype == np.float64
        assert np.all(np.isfinite(batch)) and np.all(batch >= 0.0)


@pytest.mark.parametrize("name", sorted(DETERMINISTIC))
def test_deterministic_tiers_batch_equals_repeated_estimate(
    schema, workload, name
):
    """Frozen-model tiers: batch == sequential on the *same* instance."""
    estimator = DETERMINISTIC[name](schema)
    sequential = np.array([estimator.estimate(q) for q in workload])
    assert np.array_equal(estimator.estimate_batch(workload), sequential)
    # ...and a second batch reproduces the first (no hidden state).
    assert np.array_equal(estimator.estimate_batch(workload), sequential)


@pytest.mark.parametrize("name", sorted(STOCHASTIC))
def test_sampling_tiers_batch_equals_sequential_from_same_seed(
    schema, workload, name
):
    """Sampler tiers walk a shared generator stream in query order, so the
    equivalence is against a fresh same-seed instance, not a repeat call."""
    batch = STOCHASTIC[name](schema).estimate_batch(workload)
    fresh = STOCHASTIC[name](schema)
    sequential = np.array([fresh.estimate(q) for q in workload])
    assert np.array_equal(batch, sequential)


def test_calibration_persistence_round_trip(schema, workload, tmp_path):
    """Calibrating over the real baseline tiers survives save/load losslessly
    and reloaded bounds route every workload query identically."""
    def build():
        cascade = EstimatorCascade(schema, min_class_queries=2)
        cascade.register("per_table", PerTableStatsEstimator(schema))
        cascade.register(
            "ibjs", IBJSEstimator(schema, max_samples=200, seed=5)
        )
        cascade.register(
            "deepdb",
            DeepDBEstimator(schema, n_samples=2_000, seed=3),
            neural=True,
        )
        return cascade

    cascade = build()
    calibration = cascade.calibrate(
        workload, true_cardinalities(schema, workload)
    )
    path = tmp_path / "calibration.json"
    calibration.save(path)

    reloaded = build()
    reloaded.calibration = type(calibration).load(path)
    assert reloaded.calibration.to_dict() == calibration.to_dict()
    for query in workload:
        before = cascade.route(query)
        after = reloaded.route(query)
        assert (before.tier.name, before.reason) == (
            after.tier.name,
            after.reason,
        )
