"""SPN/DeepDB, MSCN, and per-table AR baselines."""

import numpy as np
import pytest

from repro.baselines.mscn import MSCNEstimator
from repro.baselines.per_table import PerTableAREstimator
from repro.baselines.spn import SPN, DeepDBEstimator
from repro.core.config import NeuroCardConfig
from repro.core.regions import Region
from repro.errors import EstimationError, QueryError, TrainingError
from repro.eval.harness import true_cardinalities
from repro.eval.metrics import q_error
from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


class TestSPN:
    def test_independent_columns_get_product_split(self):
        rng = np.random.default_rng(0)
        data = np.stack([rng.integers(0, 8, 4000), rng.integers(0, 8, 4000)], axis=1)
        spn = SPN(data, [8, 8], ["a", "b"], min_rows=200)
        pa = spn.prob({"a": Region.interval(0, 3)})
        pb = spn.prob({"b": Region.interval(0, 3)})
        pab = spn.prob({"a": Region.interval(0, 3), "b": Region.interval(0, 3)})
        assert pab == pytest.approx(pa * pb, rel=0.1)
        assert pa == pytest.approx(0.5, abs=0.05)

    def test_correlated_columns_learned(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 8, 6000)
        data = np.stack([x, (x + rng.integers(0, 2, 6000)) % 8], axis=1)
        spn = SPN(data, [8, 8], ["a", "b"], min_rows=150, corr_threshold=0.3)
        # P(a=0, b in {0,1}) ~ 1/8; independence would give 1/8 * 1/4.
        p = spn.prob({"a": Region.interval(0, 0), "b": Region.interval(0, 1)})
        assert p == pytest.approx(1 / 8, rel=0.35)

    def test_wildcard_probability_is_one(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 5, (1000, 2))
        spn = SPN(data, [5, 5], ["a", "b"])
        assert spn.prob({}) == pytest.approx(1.0, rel=1e-6)

    def test_unknown_column_raises(self):
        spn = SPN(np.zeros((10, 1), dtype=np.int64), [3], ["a"])
        with pytest.raises(QueryError):
            spn.prob({"zzz": Region.interval(0, 1)})

    def test_shape_validation(self):
        with pytest.raises(EstimationError):
            SPN(np.zeros((5, 2), dtype=np.int64), [3], ["a"])


@pytest.fixture(scope="module")
def light():
    schema = job_light_schema(ImdbScale(n_title=500))
    counts = JoinCounts(schema)
    return schema, counts


class TestDeepDB:
    def test_star_queries(self, light):
        schema, counts = light
        deepdb = DeepDBEstimator(
            schema, counts, n_samples=15_000,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
        )
        queries = job_light_ranges_queries(schema, n=30, counts=counts)
        truths = true_cardinalities(schema, queries, counts)
        errors = [q_error(deepdb.estimate(q), t) for q, t in zip(queries, truths)]
        assert np.median(errors) < 4.0

    def test_single_root_query(self, light):
        schema, counts = light
        deepdb = DeepDBEstimator(
            schema, counts, n_samples=8_000,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        )
        query = Query.make(["title"], [Predicate("title", "kind_id", "=", 1)])
        truth = query_cardinality(schema, query, counts=counts)
        assert q_error(deepdb.estimate(query), truth) < 2.0

    def test_rejects_nested_schema(self):
        a = Table.from_dict("A", {"x": [1, 2]})
        b = Table.from_dict("B", {"x": [1, 2], "y": [1, 2]})
        c = Table.from_dict("C", {"y": [1, 2]})
        nested = JoinSchema(
            tables={"A": a, "B": b, "C": c},
            edges=[JoinEdge("A", "B", (("x", "x"),)), JoinEdge("B", "C", (("y", "y"),))],
            root="A",
        )
        with pytest.raises(EstimationError):
            DeepDBEstimator(nested)

    def test_size_grows_with_large_config(self, light):
        schema, counts = light
        base = DeepDBEstimator(
            schema, counts, n_samples=4_000, exclude_columns=DEFAULT_EXCLUDED_COLUMNS
        )
        large = DeepDBEstimator(
            schema, counts, n_samples=4_000, large=True,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        )
        assert large.size_bytes > base.size_bytes
        assert large.name == "DeepDB-large"


class TestMSCN:
    def test_learns_training_distribution(self, light):
        schema, counts = light
        train = job_light_ranges_queries(schema, n=250, seed=50, counts=counts)
        cards = true_cardinalities(schema, train, counts)
        mscn = MSCNEstimator(schema, train, cards, epochs=40, seed=0)
        test = job_light_ranges_queries(schema, n=40, seed=51, counts=counts)
        truths = true_cardinalities(schema, test, counts)
        errors = [q_error(mscn.estimate(q), t) for q, t in zip(test, truths)]
        assert np.median(errors) < 6.0

    def test_label_mismatch_rejected(self, light):
        schema, _ = light
        with pytest.raises(TrainingError):
            MSCNEstimator(schema, [], [1.0])

    def test_featurization_is_fixed_length(self, light):
        schema, counts = light
        train = job_light_ranges_queries(schema, n=40, seed=60, counts=counts)
        cards = true_cardinalities(schema, train, counts)
        mscn = MSCNEstimator(schema, train, cards, epochs=2)
        dims = {mscn.featurize(q).shape for q in train}
        assert len(dims) == 1


class TestPerTableAR:
    def test_fails_on_correlated_joins(self, light):
        """Independence across tables must hurt on correlated filters —
        that is the entire point of ablation D."""
        schema, counts = light
        config = NeuroCardConfig(
            d_emb=8, d_ff=32, n_blocks=1, train_tuples=30_000,
            learning_rate=5e-3, progressive_samples=200,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        )
        per_table = PerTableAREstimator(schema, config, counts)
        # Correlated pair: recent years <-> high ratings.
        corr = Query.make(
            ["title", "movie_info_idx"],
            [
                Predicate("title", "production_year", ">=", 2005),
                Predicate("movie_info_idx", "info", ">=", 60),
            ],
        )
        truth = query_cardinality(schema, corr, counts=counts)
        single_year = Query.make(["title"], [Predicate("title", "production_year", ">=", 2005)])
        t_single = query_cardinality(schema, single_year, counts=counts)
        # Single-table estimates stay good...
        assert q_error(per_table.estimate(single_year), t_single) < 3.0
        # ...while the correlated join estimate is measurably worse than the
        # single-table one (independence bites).
        err_join = q_error(per_table.estimate(corr), truth)
        assert err_join > 1.2

    def test_size_sums_models(self, light):
        schema, counts = light
        config = NeuroCardConfig(
            d_emb=4, d_ff=16, n_blocks=1, train_tuples=6_000,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        )
        per_table = PerTableAREstimator(schema, config, counts)
        assert per_table.size_bytes == sum(
            m.size_bytes for m in per_table.models.values()
        )
