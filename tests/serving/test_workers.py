"""Multiprocess worker pool: zero-copy attach, fault injection, hot-swap.

The pool's contracts under test:

* **zero-copy equivalence** — a worker skeleton attaching the published
  shared-memory blob (weights + compiled buffers) answers bitwise like
  the training process's estimator;
* **fail-fast worker death** — a SIGKILL'd worker fails its in-flight
  batches with a chained ServingError, is respawned, and pinned-seed
  requests afterwards are bitwise-identical to pre-crash answers;
* **hot-swap under load** — a registry swap during multiprocess traffic
  produces zero failed and zero stale-version responses;
* **the inline path stays the oracle** — pooled results match inline
  results (bitwise for the fp64/pickled engines, to fp32-kernel
  tolerance for compiled estimators).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.estimator import NeuroCard
from repro.core.inference import attach_engine_state, export_engine_state
from repro.errors import EstimationError, ServingError
from repro.nn.compiled import pack_layout, read_blob, write_blob
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.serving import (
    EstimationService,
    ModelRegistry,
    ServingConfig,
    WorkerPool,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class SlowModel:
    """Picklable duck-typed model with a per-batch delay (for kill windows)."""

    is_fitted = True
    size_bytes = 512

    def __init__(self, tag: float, delay: float = 0.0):
        self.tag = tag
        self.delay = delay

    def estimate_batch(self, queries, n_samples=None, rngs=None):
        if self.delay:
            time.sleep(self.delay)
        return np.full(len(queries), self.tag, dtype=np.float64)

    def estimate(self, query, **kwargs) -> float:
        return float(self.estimate_batch([query])[0])


def _query():
    return Query.make(["R"], [Predicate("R", "year", ">=", 1995)])


# ----------------------------------------------------------------------
# Zero-copy export/attach (in-process, no workers involved)
# ----------------------------------------------------------------------
def test_blob_round_trip_is_bitwise(tiny_trained):
    """Skeleton + attached blob answers bitwise like the trained original."""
    schema, est = tiny_trained
    arrays = {
        f"param::{i}": p.value for i, p in enumerate(est.model.parameters())
    }
    arrays.update(
        ("compiled::" + key, value)
        for key, value in export_engine_state(est.inference).items()
    )
    manifest, nbytes = pack_layout(arrays)
    buf = bytearray(nbytes)
    write_blob(arrays, manifest, buf)
    views = read_blob(manifest, buf)
    assert all(not view.flags.writeable for view in views.values())

    twin = NeuroCard(schema, est.config).prepare()
    twin.attach_parameters(
        [views[f"param::{i}"] for i in range(len(est.model.parameters()))]
    )
    attach_engine_state(
        twin.inference,
        {k[len("compiled::"):]: v for k, v in views.items() if k.startswith("compiled::")},
    )
    queries = [_query()] * 4
    rngs_a = [np.random.default_rng(7 + i) for i in range(4)]
    rngs_b = [np.random.default_rng(7 + i) for i in range(4)]
    original = est.estimate_batch(queries, rngs=rngs_a)
    attached = twin.estimate_batch(queries, rngs=rngs_b)
    np.testing.assert_array_equal(np.asarray(attached), np.asarray(original))


def test_attach_parameters_rejects_mismatched_shapes(tiny_trained):
    schema, est = tiny_trained
    twin = NeuroCard(schema, est.config).prepare()
    values = [p.value for p in est.model.parameters()]
    with pytest.raises(EstimationError, match="parameter count"):
        twin.attach_parameters(values[:-1])
    bad = list(values)
    bad[0] = np.zeros((3, 3), dtype=np.float64)
    with pytest.raises(EstimationError, match="mismatch"):
        twin.attach_parameters(bad)


def test_export_state_requires_compiled_mode(tiny_trained):
    from repro.core.inference import compiled_model

    schema, est = tiny_trained
    fp64 = NeuroCard(schema, est.config).prepare(compile="fp64")
    with pytest.raises(EstimationError, match="fp64"):
        compiled_model(fp64.inference).export_state()
    # And the engine-level helper degrades to "nothing to share" instead.
    assert export_engine_state(fp64.inference) == {}


# ----------------------------------------------------------------------
# Pooled serving vs the inline oracle path
# ----------------------------------------------------------------------
def test_pool_matches_inline_compiled(tiny_trained):
    """Sharded fp32 serving reproduces the single-process path."""
    _schema, est = tiny_trained
    queries = [_query()] * 8
    inline = est.estimate_batch(
        queries, rngs=[np.random.default_rng(40 + i) for i in range(8)]
    )
    with WorkerPool(n_workers=2, name="fp32", min_shard=1) as pool:
        pool.publish(est, 1)
        assert pool.shared_bytes > 0  # zero-copy transport, not pickle
        pooled = pool.estimate_batch(
            queries, rngs=[np.random.default_rng(40 + i) for i in range(8)]
        )
    np.testing.assert_allclose(pooled, np.asarray(inline), rtol=5e-6)


def test_pool_is_bitwise_on_fp64_engine(oracle_engine, workload):
    """Pickle-transported fp64 oracle engine: sharding changes nothing."""
    inline = [
        float(oracle_engine.estimate(q, rng=np.random.default_rng(100 + i)))
        for i, q in enumerate(workload)
    ]
    with WorkerPool(n_workers=2, name="fp64", min_shard=1) as pool:
        pool.publish(oracle_engine, 1)
        pooled = [
            pool.estimate(q, seed=100 + i) for i, q in enumerate(workload)
        ]
    assert pooled == inline


def test_scheduler_executor_path_matches_seeded_submits(oracle_engine, workload):
    """scheduler(executor=pool) resolves seeded futures bitwise-stably."""
    from repro.serving.scheduler import MicroBatchScheduler

    expected = [
        float(oracle_engine.estimate(q, rng=np.random.default_rng(55 + i)))
        for i, q in enumerate(workload)
    ]
    with WorkerPool(n_workers=2, name="exec", min_shard=1) as pool:
        with MicroBatchScheduler(
            lambda: (oracle_engine, 3),
            max_batch=4,
            max_wait_us=500,
            cache_size=0,
            executor=pool,
        ) as sched:
            futures = [
                sched.submit(q, seed=55 + i) for i, q in enumerate(workload)
            ]
            got = [f.result(timeout=60) for f in futures]
    assert got == expected
    assert pool.stats()["batches"] > 0  # really took the sharded path


# ----------------------------------------------------------------------
# Fault injection: worker death mid-batch
# ----------------------------------------------------------------------
def test_worker_death_fails_fast_and_respawns(oracle_engine, workload):
    with WorkerPool(n_workers=2, name="doomed", min_shard=1) as pool:
        pool.publish(SlowModel(tag=1.0, delay=3.0), 1)
        rngs = [np.random.default_rng(i) for i in range(4)]
        model, version = pool._client_source()
        future = pool.submit_batch(model, version, [_query()] * 4, rngs=rngs)
        deadline = time.time() + 10
        while not pool.worker_pids() and time.time() < deadline:
            time.sleep(0.01)
        victim = pool.worker_pids()[0]
        time.sleep(0.3)  # let the shards reach the workers
        os.kill(victim, signal.SIGKILL)
        with pytest.raises(ServingError, match="died mid-batch"):
            future.result(timeout=30)
        try:
            future.result(timeout=0)
        except ServingError as exc:
            assert isinstance(exc.__cause__, RuntimeError)
            assert "exited with code" in str(exc.__cause__)

        # The pool respawned the worker and republished version 1; a
        # fresh publish + pinned seeds must serve bitwise as before.
        pool.publish(oracle_engine, 2)
        assert pool.stats()["respawns"] >= 1
        assert len(pool.worker_pids()) == 2
        recovered = [
            pool.estimate(q, seed=200 + i) for i, q in enumerate(workload)
        ]
        expected = [
            float(oracle_engine.estimate(q, rng=np.random.default_rng(200 + i)))
            for i, q in enumerate(workload)
        ]
        assert recovered == expected


# ----------------------------------------------------------------------
# Hot-swap under multiprocess load
# ----------------------------------------------------------------------
def test_hot_swap_under_load_has_no_stale_or_failed_responses(workload):
    registry = ModelRegistry()
    registry.register("m", SlowModel(tag=1.0))
    config = ServingConfig(
        workers=2, max_batch=8, max_wait_us=500, cache_size=0, min_shard=1
    )
    results: list = []
    failures: list = []
    stop = threading.Event()

    with EstimationService(registry, config=config) as service:
        warm = service.estimate(workload[0], model="m")
        assert warm == 1.0

        def client():
            while not stop.is_set():
                try:
                    results.append(service.estimate(workload[0], model="m"))
                except BaseException as exc:  # noqa: BLE001 - recorded, fails test
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        service.swap("m", SlowModel(tag=2.0))
        # swap() returned => every worker has attached the new version;
        # anything submitted from here on must see the new model.
        post_swap = [service.estimate(workload[0], model="m") for _ in range(8)]
        time.sleep(0.2)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

    assert not failures, failures
    assert results and set(results) <= {1.0, 2.0}
    assert post_swap == [2.0] * 8


def test_pool_refuses_unpicklable_and_surfaces_closed(workload):
    pool = WorkerPool(n_workers=1, name="edge")
    try:
        with pytest.raises(ServingError, match="picklable"):
            pool.publish(threading.Lock(), 1)
    finally:
        pool.close()
    with pytest.raises(ServingError, match="closed"):
        pool.estimate_batch(workload[:1])
