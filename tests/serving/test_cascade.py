"""Estimator cascade: features, calibration persistence, routing, wiring.

Pins the PR 10 tentpole contracts from ``docs/estimators.md``: the
class-key bucketing, lossless calibration round-trips, the three routing
rules (bound / best-effort / last-resort) plus staleness demotion, and
the service + HTTP wiring — cheap tiers answer inline, escalated queries
reach the scheduler and stay bitwise with the cascade-free path.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.baselines.per_table import PerTableStatsEstimator
from repro.errors import DeadlineError, QueryError, ServingError
from repro.eval.calibration import calibration_workload
from repro.eval.harness import true_cardinalities
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.serving import (
    CascadeCalibration,
    CascadeConfig,
    EstimationService,
    EstimatorCascade,
    HttpConfig,
    HttpEstimationClient,
    HttpServerThread,
    QueryFeatures,
    ServingConfig,
)
from repro.serving.cascade import _UNBOUNDED
from tests.core.test_estimator import correlated_schema
from tests.serving.conftest import FakeModel


@pytest.fixture(scope="module")
def schema():
    """Structurally identical to the ``oracle_engine`` fixture's schema."""
    return correlated_schema(n_root=12, seed=4)


EASY = Query.make(["R"], [Predicate("R", "year", ">=", 1995)])
HARD = Query.make(
    ["R", "C1"],
    [Predicate("R", "year", ">=", 1995), Predicate("C1", "kind", "=", 0)],
)


class _Const:
    """Constant-answer tier estimator with call counting and optional failure."""

    is_fitted = True
    size_bytes = 64

    def __init__(self, value: float, fail: bool = False):
        self.value = value
        self.fail = fail
        self.calls = 0

    def estimate(self, query, **kwargs) -> float:
        self.calls += 1
        if self.fail:
            raise RuntimeError("tier down")
        return self.value

    def estimate_batch(self, queries, **kwargs):
        return np.array([self.estimate(q) for q in queries])


def entries_for(key, *, cheap=(1.2, 0.01), neural=(1.05, 5.0), n=20.0):
    """Hand-built calibration: one class, a cheap and a neural tier."""
    return {
        "cheap": {
            key: {
                "p95_qerror": cheap[0],
                "median_latency_ms": cheap[1],
                "n": n,
            }
        },
        "neural": {
            key: {
                "p95_qerror": neural[0],
                "median_latency_ms": neural[1],
                "n": n,
            }
        },
    }


def two_tier(schema, entries, **kwargs) -> EstimatorCascade:
    cascade = EstimatorCascade(
        schema,
        calibration=CascadeCalibration(entries, n_queries=40) if entries else None,
        **kwargs,
    )
    cascade.register("cheap", _Const(5.0))
    cascade.register("neural", _Const(7.0), neural=True)
    return cascade


# ----------------------------------------------------------------------
# QueryFeatures and the class key
# ----------------------------------------------------------------------
class TestQueryFeatures:
    def test_predicate_free_query_is_all_wildcards(self, schema):
        feats = QueryFeatures.extract(Query.make(["C1"], []), schema)
        assert feats.n_tables == 1
        assert feats.n_predicates == feats.n_equality == feats.n_range == 0
        assert feats.wildcard_fraction == 1.0
        assert feats.min_region_fraction == 1.0
        assert feats.class_key == "1t|none|wide"

    def test_range_and_equality_split(self, schema):
        feats = QueryFeatures.extract(HARD, schema)
        assert feats.n_tables == 2
        assert feats.n_predicates == 2
        assert feats.n_range == 1 and feats.n_equality == 1
        # Any range predicate puts the query in the rng operator class.
        assert feats.class_key.startswith("nt|rng|")

    def test_equality_width_is_one_code_over_domain(self, schema):
        year = int(schema.table("R").column("year").dictionary[0])
        query = Query.make(["R"], [Predicate("R", "year", "=", year)])
        feats = QueryFeatures.extract(query, schema)
        domain = schema.table("R").column("year").domain_size
        assert feats.min_region_fraction == pytest.approx(1.0 / domain)
        narrow = feats.min_region_fraction <= 0.25
        assert feats.class_key == f"1t|eq|{'narrow' if narrow else 'wide'}"

    def test_wildcard_fraction_counts_filtered_columns_once(self, schema):
        query = Query.make(
            ["R"],
            [
                Predicate("R", "year", ">=", 1992),
                Predicate("R", "year", "<=", 1998),
            ],
        )
        feats = QueryFeatures.extract(query, schema)
        # Two predicates on one column of R's two columns -> half wildcard.
        assert feats.wildcard_fraction == pytest.approx(0.5)

    def test_invalid_query_raises_query_error(self, schema):
        bad = Query.make(["Zed"], [])
        with pytest.raises(QueryError):
            QueryFeatures.extract(bad, schema)


# ----------------------------------------------------------------------
# Calibration: measurement and lossless persistence
# ----------------------------------------------------------------------
class TestCalibration:
    @pytest.fixture(scope="class")
    def calibrated(self, schema):
        cascade = EstimatorCascade(schema, min_class_queries=4)
        cascade.register("per_table", PerTableStatsEstimator(schema))
        cascade.register("broken", _Const(1.0, fail=True))
        cascade.register("neural", _Const(3.0), neural=True)
        queries = calibration_workload(schema, n_queries=48, seed=11)
        truths = true_cardinalities(schema, queries)
        calibration = cascade.calibrate(queries, truths)
        return cascade, calibration

    def test_every_tier_and_class_is_measured(self, calibrated):
        cascade, calibration = calibrated
        assert sorted(calibration.tiers()) == ["broken", "neural", "per_table"]
        assert calibration.n_queries == 48
        for tier in calibration.tiers():
            for entry in calibration.entries[tier].values():
                assert entry["n"] >= 1
                assert entry["median_latency_ms"] >= 0.0
                assert entry["p95_qerror"] >= 1.0

    def test_single_table_per_table_bound_is_exact(self, calibrated):
        _, calibration = calibrated
        one_table = {
            key: entry
            for key, entry in calibration.entries["per_table"].items()
            if key.startswith("1t|")
        }
        assert one_table
        for entry in one_table.values():
            assert entry["p95_qerror"] == 1.0

    def test_raising_tier_records_the_unbounded_stand_in(self, calibrated):
        _, calibration = calibrated
        for entry in calibration.entries["broken"].values():
            assert entry["p95_qerror"] == _UNBOUNDED

    def test_dict_round_trip_is_lossless(self, calibrated):
        _, calibration = calibrated
        doc = calibration.to_dict()
        assert CascadeCalibration.from_dict(doc).to_dict() == doc

    def test_save_load_round_trip_is_lossless_json(self, calibrated, tmp_path):
        _, calibration = calibrated
        path = tmp_path / "calibration.json"
        calibration.save(path)
        json.loads(path.read_text())  # valid JSON despite inf q-errors
        assert CascadeCalibration.load(path).to_dict() == calibration.to_dict()

    def test_from_dict_requires_tiers_mapping(self):
        with pytest.raises(ServingError):
            CascadeCalibration.from_dict({"n_queries": 3})

    def test_load_missing_file_raises_serving_error(self, tmp_path):
        with pytest.raises(ServingError):
            CascadeCalibration.load(tmp_path / "absent.json")

    def test_length_mismatch_and_empty_cascade_are_errors(self, schema):
        cascade = EstimatorCascade(schema)
        with pytest.raises(ServingError):
            cascade.calibrate([EASY], [1.0, 2.0])
        with pytest.raises(ServingError):
            cascade.calibrate([EASY], [1.0])  # no tiers registered


# ----------------------------------------------------------------------
# Routing rules
# ----------------------------------------------------------------------
class TestRouting:
    @pytest.fixture(scope="class")
    def key(self, schema):
        return QueryFeatures.extract(EASY, schema).class_key

    def test_first_fitting_tier_answers_with_reason_bound(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        decision = cascade.route(EASY)
        assert decision.tier.name == "cheap"
        assert decision.reason == "bound"
        assert decision.features.class_key == key

    def test_loose_bound_skips_to_the_neural_tier(self, schema, key):
        cascade = two_tier(schema, entries_for(key, cheap=(9.0, 0.01)))
        decision = cascade.route(EASY, max_q_error=2.0)
        assert decision.tier.name == "neural"
        assert decision.reason == "bound"

    def test_budget_excluding_neural_falls_back_best_effort(self, schema, key):
        cascade = two_tier(
            schema, entries_for(key, cheap=(9.0, 0.01), neural=(1.05, 5.0))
        )
        decision = cascade.route(EASY, max_q_error=2.0, budget_ms=1.0)
        assert decision.tier.name == "cheap"
        assert decision.reason == "best-effort"

    def test_live_neural_latency_overrides_calibrated(self, schema, key):
        cascade = two_tier(
            schema, entries_for(key, cheap=(9.0, 0.01), neural=(1.05, 5.0))
        )
        decision = cascade.route(
            EASY, max_q_error=2.0, budget_ms=1.0, neural_latency_ms=0.5
        )
        assert decision.tier.name == "neural"
        assert decision.reason == "bound"

    def test_thin_class_is_unproven_and_escalates(self, schema, key):
        cascade = two_tier(schema, entries_for(key, n=3.0), min_class_queries=8)
        decision = cascade.route(EASY)
        assert decision.tier.name == "neural"
        assert decision.reason == "last-resort"

    def test_uncalibrated_cascade_routes_last_resort(self, schema):
        decision = two_tier(schema, None).route(EASY)
        assert decision.tier.name == "neural"
        assert decision.reason == "last-resort"

    def test_unknown_class_routes_last_resort(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        decision = cascade.route(HARD)  # a class the calibration never saw
        assert decision.tier.name == "neural"
        assert decision.reason == "last-resort"

    def test_invalid_contract_values_raise(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        with pytest.raises(ServingError):
            cascade.route(EASY, max_q_error=0.5)
        with pytest.raises(ServingError):
            cascade.route(EASY, budget_ms=0.0)

    def test_staleness_demotion_moves_classes_off_the_neural_tier(
        self, schema, key
    ):
        cascade = two_tier(
            schema, entries_for(key, cheap=(3.0, 0.01), neural=(1.5, 5.0))
        )
        assert cascade.route(EASY, max_q_error=2.0).tier.name == "neural"
        cascade.staleness_provider = lambda: 2.5
        assert cascade.staleness_demotion() == 2.5
        decision = cascade.route(EASY, max_q_error=2.0)
        # 1.5 * 2.5 > 2.0: the stale model loses the class to the cheap tier.
        assert decision.tier.name == "cheap"
        assert decision.reason == "best-effort"

    def test_staleness_below_threshold_does_not_demote(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        cascade.staleness_provider = lambda: 1.5  # < demote_staleness_qerror
        assert cascade.staleness_demotion() == 1.0

    def test_broken_staleness_provider_never_breaks_routing(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        cascade.staleness_provider = lambda: 1 / 0
        assert cascade.staleness_demotion() == 1.0
        assert cascade.route(EASY).tier.name == "cheap"

    def test_registration_validation(self, schema):
        cascade = EstimatorCascade(schema)
        with pytest.raises(ServingError):
            cascade.route(EASY)  # no tiers
        cascade.register("a", _Const(1.0), neural=True)
        with pytest.raises(ServingError):
            cascade.register("a", _Const(1.0))  # duplicate name
        with pytest.raises(ServingError):
            cascade.register("b", _Const(1.0), neural=True)  # second neural
        with pytest.raises(ServingError):
            cascade.register("c", object())  # no estimate()
        with pytest.raises(ServingError):
            cascade.tier("missing")

    def test_constructor_validation(self, schema):
        for kwargs in (
            dict(default_max_q_error=0.9),
            dict(default_budget_ms=0.0),
            dict(min_class_queries=0),
            dict(demote_staleness_qerror=0.5),
        ):
            with pytest.raises(ServingError):
                EstimatorCascade(schema, **kwargs)


# ----------------------------------------------------------------------
# Standalone EstimationClient surface
# ----------------------------------------------------------------------
class TestStandaloneEstimate:
    @pytest.fixture()
    def key(self, schema):
        return QueryFeatures.extract(EASY, schema).class_key

    def test_routed_tier_answers_and_counters_move(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        assert cascade.estimate(EASY) == 5.0
        stats = cascade.stats()
        assert stats["routed"] == 1
        assert stats["tiers"] == {"cheap": 1, "neural": 0}
        assert stats["escalations"] == 0 and stats["escalation_rate"] == 0.0

    def test_failing_cheap_tier_escalates_to_the_final_tier(self, schema, key):
        cascade = EstimatorCascade(
            schema, calibration=CascadeCalibration(entries_for(key))
        )
        cascade.register("cheap", _Const(5.0, fail=True))
        cascade.register("neural", _Const(7.0), neural=True)
        assert cascade.estimate(EASY) == 7.0
        stats = cascade.stats()
        assert stats["tier_errors"] == {"cheap": 1}
        assert stats["tiers"] == {"cheap": 0, "neural": 1}
        assert stats["escalations"] == 1

    def test_final_tier_failure_raises(self, schema):
        cascade = EstimatorCascade(schema)
        cascade.register("neural", _Const(1.0, fail=True), neural=True)
        with pytest.raises(RuntimeError):
            cascade.estimate(EASY)

    def test_estimate_batch_matches_sequential(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        batch = cascade.estimate_batch([EASY, HARD])
        assert np.array_equal(batch, [5.0, 7.0])  # bound + last-resort

    def test_protocol_surface(self, schema, key):
        cascade = two_tier(schema, entries_for(key))
        assert cascade.is_fitted
        assert cascade.size_bytes == 128  # both _Const tiers report 64


# ----------------------------------------------------------------------
# Service wiring: inline cheap tiers, scheduler escalation, stats
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cascade_service(schema, oracle_engine):
    """Calibrated two-tier cascade fronting the served oracle engine."""
    config = ServingConfig(
        max_batch=8,
        max_wait_us=500,
        cache_size=0,
        n_samples=64,
        cascade=CascadeConfig(
            tiers=("per_table", "neural"),
            default_max_q_error=1.5,
            min_class_queries=4,
        ),
    )
    service = EstimationService(config=config)
    service.register("oracle", oracle_engine)
    cascade = service.enable_cascade("oracle")
    queries = calibration_workload(schema, n_queries=60, seed=11)
    cascade.calibrate(queries, true_cardinalities(schema, queries))
    yield service, cascade
    service.close()


class TestServiceWiring:
    def test_easy_query_is_answered_inline_by_per_table(self, cascade_service):
        service, cascade = cascade_service
        future = service.submit(EASY, model="oracle")
        assert future.tier == "per_table"
        expected = cascade.tier("per_table").estimator.estimate(EASY)
        assert future.result() == expected
        assert future.degraded is False

    def test_escalated_query_is_bitwise_with_cascade_free_serving(
        self, cascade_service, oracle_engine
    ):
        service, _ = cascade_service
        future = service.submit(HARD, model="oracle", seed=123)
        assert future.tier == "neural"
        reference = EstimationService(
            config=ServingConfig(
                max_batch=8, max_wait_us=500, cache_size=0, n_samples=64
            )
        )
        reference.register("oracle", oracle_engine)
        try:
            assert future.result() == reference.estimate(HARD, seed=123)
        finally:
            reference.close()

    def test_tight_budget_keeps_the_query_on_the_cheap_tier(
        self, cascade_service
    ):
        service, cascade = cascade_service
        # Even with an unreachable accuracy contract, a millisecond budget
        # excludes the scheduler path: best-effort answers from per_table.
        decision = cascade.route(
            HARD, max_q_error=1.0, budget_ms=1.0, neural_latency_ms=5.0
        )
        assert decision.tier.name == "per_table"
        assert decision.reason == "best-effort"

    def test_service_stats_surface_cascade_telemetry(self, cascade_service):
        service, _ = cascade_service
        service.submit(EASY, model="oracle").result()
        stats = service.stats()["cascade"]["oracle"]
        assert stats["routed"] >= 1
        assert set(stats["tiers"]) == {"per_table", "neural"}
        assert 0.0 <= stats["escalation_rate"] <= 1.0

    def test_cascade_for_returns_the_attached_cascade(self, cascade_service):
        service, cascade = cascade_service
        assert service.cascade_for("oracle") is cascade

    def test_expired_deadline_fails_before_the_inline_tier_runs(
        self, cascade_service
    ):
        service, _ = cascade_service
        future = service.submit(
            EASY, model="oracle", deadline=time.monotonic() - 1.0
        )
        with pytest.raises(DeadlineError):
            future.result()

    def test_inline_tier_error_escalates_to_the_scheduler(self, schema):
        key = QueryFeatures.extract(EASY, schema).class_key
        service = EstimationService(
            config=ServingConfig(max_batch=4, max_wait_us=500, cache_size=0)
        )
        service.register("m", FakeModel(42.0))
        cascade = EstimatorCascade(
            schema, calibration=CascadeCalibration(entries_for(key))
        )
        cascade.register("cheap", _Const(5.0, fail=True))
        cascade.register("neural", _Const(0.0), neural=True)
        service.attach_cascade(cascade, "m")
        try:
            future = service.submit(EASY, model="m")
            assert future.tier == "neural"
            assert future.result() == 42.0  # the registered model answers
            assert cascade.stats()["tier_errors"] == {"cheap": 1}
        finally:
            service.close()

    def test_attach_cascade_requires_a_neural_final_tier(self, schema):
        service = EstimationService()
        service.register("m", FakeModel(1.0))
        cascade = EstimatorCascade(schema)
        cascade.register("cheap", _Const(5.0))
        try:
            with pytest.raises(ServingError):
                service.attach_cascade(cascade, "m")
        finally:
            service.close()

    def test_enable_cascade_requires_a_config_section(self):
        service = EstimationService()
        service.register("m", FakeModel(1.0))
        try:
            with pytest.raises(ServingError):
                service.enable_cascade("m")
        finally:
            service.close()

    def test_enable_cascade_rejects_unknown_supplied_tiers(
        self, schema, oracle_engine
    ):
        config = ServingConfig(
            cascade=CascadeConfig(tiers=("per_table", "neural"))
        )
        service = EstimationService(config=config)
        service.register("oracle", oracle_engine)
        try:
            with pytest.raises(ServingError):
                service.enable_cascade(
                    "oracle", estimators={"bogus": _Const(1.0)}
                )
        finally:
            service.close()

    def test_enable_cascade_loads_persisted_calibration(
        self, schema, oracle_engine, cascade_service, tmp_path
    ):
        _, calibrated = cascade_service
        path = tmp_path / "calibration.json"
        calibrated.calibration.save(path)
        config = ServingConfig(
            cascade=CascadeConfig(
                tiers=("per_table", "neural"), calibration_path=str(path)
            )
        )
        service = EstimationService(config=config)
        service.register("oracle", oracle_engine)
        try:
            cascade = service.enable_cascade("oracle")
            assert (
                cascade.calibration.to_dict()
                == calibrated.calibration.to_dict()
            )
        finally:
            service.close()


# ----------------------------------------------------------------------
# HTTP wiring: contract fields, tier reporting, /metrics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def http_cascade(cascade_service):
    service, cascade = cascade_service
    with HttpServerThread(service, HttpConfig(port=0)) as server:
        client = HttpEstimationClient(server.host, server.port, "oracle")
        yield service, cascade, client
        client.close()


class TestHttpCascade:
    def test_response_reports_the_answering_tier(self, http_cascade):
        _, cascade, client = http_cascade
        value = client.estimate(EASY, seed=5)
        assert client.last_tier == "per_table"
        assert value == cascade.tier("per_table").estimator.estimate(EASY)

    def test_escalated_wire_answer_is_bitwise_with_in_process(
        self, http_cascade
    ):
        service, _, client = http_cascade
        wire = client.estimate(HARD, seed=77)
        assert client.last_tier == "neural"
        assert wire == service.submit(HARD, model="oracle", seed=77).result()

    def test_contract_fields_travel_per_request(self, http_cascade):
        _, cascade, client = http_cascade
        # A loose contract keeps even the hard class on the cheap tier.
        value = client.estimate(HARD, seed=5, max_q_error=1e6)
        assert client.last_tier == "per_table"
        assert value == cascade.tier("per_table").estimator.estimate(HARD)

    def test_invalid_budget_is_a_pointed_400(self, http_cascade):
        _, _, client = http_cascade
        with pytest.raises(QueryError, match="budget_ms"):
            client.estimate(EASY, seed=5, budget_ms=-1.0)

    def test_metrics_export_per_tier_counters(self, http_cascade):
        _, _, client = http_cascade
        client.estimate(EASY, seed=6)
        text = client.metrics_text()
        assert "repro_cascade_tier_total" in text
        assert "repro_cascade_escalation_rate" in text
        assert "repro_cascade_staleness_demotion" in text
        assert 'tier="per_table"' in text

    def test_healthz_carries_cascade_stats(self, http_cascade):
        _, _, client = http_cascade
        doc = client.healthz()
        assert "oracle" in doc["cascade"]
        assert "escalation_rate" in doc["cascade"]["oracle"]
