"""max_rel_var through the serving stack: scheduler, pool protocol, HTTP.

The adaptive-sampling knob must behave identically however a request
arrives — direct scheduler submit, ServingConfig default, or the wire —
and adaptive results must never alias fixed-samples results in the plan
cache (the cache key carries ``max_rel_var``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import (
    EstimationService,
    HttpConfig,
    HttpEstimationClient,
    HttpServerThread,
    MicroBatchScheduler,
    ServingConfig,
)
from tests.serving.conftest import FakeModel
from tests.serving.test_scheduler import fixed_source


class TestSchedulerPassthrough:
    def test_adaptive_submit_matches_direct_engine_call(
        self, oracle_engine, workload
    ):
        with MicroBatchScheduler(fixed_source(oracle_engine), n_samples=64) as sched:
            got = [
                sched.submit(q, seed=30 + i, max_rel_var=0.05).result()
                for i, q in enumerate(workload)
            ]
        want = oracle_engine.estimate_batch(
            workload,
            n_samples=64,
            rngs=[np.random.default_rng(30 + i) for i in range(len(workload))],
            max_rel_var=0.05,
        )
        np.testing.assert_array_equal(got, want)

    def test_adaptive_and_fixed_results_never_share_cache_entries(
        self, oracle_engine, workload
    ):
        query = workload[0]
        with MicroBatchScheduler(fixed_source(oracle_engine), n_samples=64) as sched:
            fixed = sched.submit(query, seed=7).result()
            adaptive = sched.submit(query, seed=7, max_rel_var=1e9).result()
            assert sched.stats()["cache_hits"] == 0  # distinct keys, no alias
            assert sched.submit(query, seed=7).result() == fixed
            assert sched.submit(query, seed=7, max_rel_var=1e9).result() == adaptive
            assert sched.stats()["cache_hits"] == 2

    def test_scheduler_default_comes_from_config(self, oracle_engine, workload):
        config = ServingConfig(max_rel_var=1e9, n_samples=64)
        service = EstimationService(config=config)
        service.register("oracle", oracle_engine)
        with service:
            service.submit(workload[0]).result()
            assert oracle_engine.last_adaptive is not None
            assert not oracle_engine.last_adaptive["escalated"].any()

    def test_invalid_bound_fails_synchronously(self, oracle_engine, workload):
        with MicroBatchScheduler(fixed_source(oracle_engine)) as sched:
            with pytest.raises(ServingError):
                sched.submit(workload[0], max_rel_var=-1.0)
        with pytest.raises(ServingError):
            ServingConfig(max_rel_var=-0.1)

    def test_mixed_bounds_flush_in_separate_groups(self, workload):
        class Capturing(FakeModel):
            def __init__(self):
                super().__init__(tag=1.0)
                self.kwargs_seen = []

            def estimate_batch(self, queries, n_samples=None, rngs=None, **kwargs):
                self.kwargs_seen.append(kwargs.get("max_rel_var"))
                return super().estimate_batch(queries, n_samples=n_samples, rngs=rngs)

        model = Capturing()
        with MicroBatchScheduler(
            fixed_source(model), max_wait_us=50_000, cache_size=0
        ) as sched:
            futures = [
                sched.submit(workload[0], max_rel_var=0.1),
                sched.submit(workload[1], max_rel_var=0.1),
                sched.submit(workload[2]),
            ]
            for future in futures:
                future.result()
        assert sorted(model.kwargs_seen, key=str) == [0.1, None]

    def test_engine_telemetry_rides_scheduler_stats(self, oracle_engine, workload):
        with MicroBatchScheduler(fixed_source(oracle_engine), n_samples=64) as sched:
            sched.submit(workload[0], max_rel_var=1e9).result()
            stats = sched.stats()
        assert stats["adaptive_batches"] >= 1
        assert stats["adaptive_queries"] >= 1

    def test_quantization_telemetry_rides_scheduler_stats(self, tiny_trained):
        from repro.core.inference import build_engine, measure_quantization_drift
        from tests.serving.conftest import (  # reuse the shared workload shape
            Query,
        )

        _, estimator = tiny_trained
        engine = build_engine(
            estimator.model,
            estimator.layout,
            estimator.counts.full_join_size,
            "fp32",
            quantization="int8",
        )
        queries = [Query.make(["R"], [])]
        measure_quantization_drift(engine, queries, n_samples=32, seed=5)
        with MicroBatchScheduler(fixed_source(engine)) as sched:
            stats = sched.stats()
        assert stats["quantization_bits"] == 8
        assert "quantization_drift_rel_max" in stats


class TestWirePassthrough:
    @pytest.fixture(scope="class")
    def http_stack(self, oracle_engine):
        service = EstimationService(config=ServingConfig(n_samples=64))
        service.register("oracle", oracle_engine)
        with HttpServerThread(service, HttpConfig(port=0)) as server:
            yield service, server
        service.close()

    @pytest.fixture()
    def client(self, http_stack):
        _, server = http_stack
        client = HttpEstimationClient(server.host, server.port, "oracle")
        yield client
        client.close()

    def test_max_rel_var_travels_and_matches_in_process(
        self, http_stack, client, workload
    ):
        service, _ = http_stack
        query = workload[0]
        wire = client.estimate(query, seed=11, max_rel_var=0.05)
        ref = service.submit(query, seed=11, max_rel_var=0.05).result()
        assert wire == ref

    def test_batch_max_rel_var_travels(self, http_stack, client, workload):
        service, _ = http_stack
        seeds = [200 + i for i in range(len(workload))]
        wire = client.estimate_batch(workload, seeds=seeds, max_rel_var=0.05)
        ref = np.array(
            [
                service.submit(q, seed=s, max_rel_var=0.05).result()
                for q, s in zip(workload, seeds)
            ]
        )
        np.testing.assert_array_equal(wire, ref)

    @pytest.mark.parametrize("bad", [-0.5, "tight", True])
    def test_invalid_max_rel_var_is_400(self, http_stack, client, workload, bad):
        from repro.errors import QueryError
        from repro.relational.dsl import query_to_dict

        body = json.dumps(
            {"query": query_to_dict(workload[0]), "max_rel_var": bad}
        ).encode("utf-8")
        status, _, payload = client._request(
            "POST", "/v1/models/oracle/estimate", body
        )
        assert status == 400
        with pytest.raises(QueryError):
            client._decode(status, payload)

    def test_adaptive_gauges_reach_metrics(self, http_stack, client, workload):
        client.estimate(workload[0], seed=3, max_rel_var=1e9)
        text = client.metrics_text()
        assert 'stat="adaptive_batches"' in text
        assert 'stat="adaptive_samples_saved"' in text
