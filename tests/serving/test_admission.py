"""Admission control: token buckets, bounded queue, deadline shedding."""

import pytest

from repro.errors import ServingError
from repro.serving.admission import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_unlimited_always_admits(self):
        bucket = TokenBucket(None, clock=FakeClock())
        assert bucket.acquire(10_000) == 0.0

    def test_burst_then_exact_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, clock=clock)  # burst defaults to rate
        assert bucket.acquire(10) == 0.0  # drain the whole burst
        # 4 tokens short at 10/s -> exactly 0.4s to refill the deficit.
        assert bucket.acquire(4) == pytest.approx(0.4)
        clock.advance(0.4)
        assert bucket.acquire(4) == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=5.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.acquire(2) == 0.0
        assert bucket.acquire(1) > 0.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ServingError):
            TokenBucket(rate=0.0)


class TestTenantQuota:
    def test_capacity_defaults_to_rate(self):
        assert TenantQuota("t", rate=7.0).capacity == 7.0
        assert TenantQuota("t", rate=7.0, burst=3.0).capacity == 3.0
        assert TenantQuota("t").capacity is None

    def test_validation(self):
        with pytest.raises(ServingError):
            TenantQuota("")
        with pytest.raises(ServingError):
            TenantQuota("t", rate=-1.0)
        with pytest.raises(ServingError):
            TenantQuota("t", burst=0.0)


class TestAdmit:
    def test_unknown_tenant_defaults_when_not_strict(self):
        ctl = AdmissionController(max_queue=4)
        decision = ctl.admit("anyone")
        assert decision.admitted

    def test_unknown_tenant_403_when_strict(self):
        ctl = AdmissionController(
            tenants=(TenantQuota("vip"),), strict_tenants=True
        )
        rejected = ctl.admit("anyone")
        assert (rejected.admitted, rejected.status, rejected.reason) == (
            False, 403, "tenant",
        )
        assert ctl.admit("vip").admitted

    def test_rate_limit_429_with_retry_after(self):
        clock = FakeClock()
        ctl = AdmissionController(
            default_quota=TenantQuota("default", rate=2.0), clock=clock
        )
        assert ctl.admit("a", cost=2).admitted
        rejected = ctl.admit("a", cost=1)
        assert (rejected.status, rejected.reason) == (429, "rate")
        assert rejected.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        assert ctl.admit("a", cost=1).admitted

    def test_tenants_have_independent_buckets(self):
        clock = FakeClock()
        ctl = AdmissionController(
            default_quota=TenantQuota("default", rate=1.0), clock=clock
        )
        assert ctl.admit("a").admitted
        assert not ctl.admit("a").admitted
        assert ctl.admit("b").admitted  # b's bucket is untouched by a's

    def test_queue_bound_503(self):
        ctl = AdmissionController(max_queue=2)
        assert ctl.admit("a").admitted
        assert ctl.admit("a").admitted
        rejected = ctl.admit("a")
        assert (rejected.status, rejected.reason) == (503, "queue")
        ctl.release(0.01)
        assert ctl.admit("a").admitted

    def test_queue_rejection_refunds_bucket_tokens(self):
        clock = FakeClock()
        ctl = AdmissionController(
            max_queue=1,
            default_quota=TenantQuota("default", rate=10.0),
            clock=clock,
        )
        assert ctl.admit("a", cost=5).admitted
        # Queue-full rejection must hand the 5 tokens back: otherwise a
        # full queue would double-punish the tenant's quota.
        assert ctl.admit("a", cost=5).reason == "queue"
        ctl.release(0.01)
        assert ctl.admit("a", cost=5).admitted

    def test_infeasible_deadline_shed_up_front(self):
        ctl = AdmissionController(max_queue=10)
        # Teach the EWMA that requests take ~1s.
        assert ctl.admit("a").admitted
        ctl.release(1.0)
        rejected = ctl.admit("a", deadline_s=0.05)
        assert (rejected.status, rejected.reason) == (503, "deadline")
        # A generous deadline still clears the same predictor.
        assert ctl.admit("a", deadline_s=30.0).admitted

    def test_expired_deadline_always_shed(self):
        ctl = AdmissionController()
        assert ctl.admit("a", deadline_s=0.0).reason == "deadline"
        assert ctl.admit("a", deadline_s=-1.0).reason == "deadline"

    def test_no_latency_history_admits_any_future_deadline(self):
        ctl = AdmissionController()
        assert ctl.admit("a", deadline_s=0.001).admitted

    def test_prediction_scales_with_occupancy(self):
        ctl = AdmissionController(max_queue=2)
        assert ctl.admit("a").admitted
        ctl.release(0.1)  # EWMA = 0.1s, in_flight back to 0
        assert ctl.admit("a", deadline_s=0.15).admitted  # 0.1 * (1 + 0/2)
        # Now in_flight=1: predicted 0.1 * (1 + 1/2) = 0.15 > 0.14.
        assert ctl.admit("a", deadline_s=0.14).reason == "deadline"

    def test_counters_reconcile(self):
        ctl = AdmissionController(max_queue=1, strict_tenants=True,
                                  tenants=(TenantQuota("a"),))
        ctl.admit("a")
        ctl.admit("a")          # queue
        ctl.admit("ghost")      # tenant
        ctl.release(0.01)
        stats = ctl.stats()
        assert stats["admitted"] == {"a": 1}
        assert stats["shed"] == {"a/queue": 1, "ghost/tenant": 1}
        assert stats["in_flight"] == 0

    def test_release_feeds_ewma(self):
        ctl = AdmissionController()
        ctl.admit("a")
        ctl.release(1.0)
        assert ctl.ewma_latency == 1.0
        ctl.admit("a")
        ctl.release(0.0)
        assert ctl.ewma_latency == pytest.approx(0.8)  # alpha = 0.2
