"""Shared serving-layer fixtures: one tiny trained estimator + an oracle engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimator import NeuroCard
from repro.core.progressive import ProgressiveSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from tests.core.oracle import OracleModel
from tests.core.test_estimator import correlated_schema, small_config


@pytest.fixture(scope="session")
def tiny_trained():
    """A quickly trained real estimator (shared; treat as read-only)."""
    schema = correlated_schema(n_root=80)
    config = small_config(
        train_tuples=8_000, sampler_threads=1, progressive_samples=64
    )
    return schema, NeuroCard(schema, config).fit()


@pytest.fixture(scope="session")
def oracle_engine():
    """Deterministic tabular-oracle inference engine (bitwise-stable)."""
    schema = correlated_schema(n_root=12, seed=4)
    oracle = OracleModel(
        schema, factorization_bits=2, exclude=("R.id", "C1.rid", "C2.rid")
    )
    return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)


@pytest.fixture()
def workload():
    return [
        Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
        Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)]),
        Query.make(["R", "C2"], [Predicate("C2", "score", "<=", 10)]),
        Query.make(["R", "C1", "C2"], [Predicate("R", "year", "<", 1996)]),
        Query.make(["C1"], []),
    ]


class FakeModel:
    """Duck-typed model: constant answer, call counting, optional failure.

    ``tag`` doubles as the returned estimate and a torn-read probe: both
    halves of :meth:`estimate_batch`'s output derive from one attribute
    read, so results are always internally consistent per model object.
    """

    def __init__(self, tag: float, delay: float = 0.0, fail: bool = False):
        self.tag = tag
        self.delay = delay
        self.fail = fail
        self.calls = 0
        self.batch_sizes = []
        self.is_fitted = True

    @property
    def size_bytes(self) -> int:
        return 1000

    def estimate_batch(self, queries, n_samples=None, rngs=None):
        self.calls += 1
        self.batch_sizes.append(len(queries))
        if self.delay:
            import time

            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError(f"model {self.tag} exploded")
        return np.full(len(queries), float(self.tag))
