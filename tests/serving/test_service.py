"""EstimationService: façade behavior, refresh invalidation, harness wiring."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.eval.harness import evaluate_estimator, true_cardinalities
from repro.serving import EstimationService
from tests.serving.conftest import FakeModel


@pytest.fixture()
def service(tiny_trained):
    _, estimator = tiny_trained
    with EstimationService(max_batch=16, max_wait_us=1_000, n_samples=64) as svc:
        svc.register("tiny", estimator)
        yield svc


class TestFacade:
    def test_estimate_and_batch(self, service, workload):
        single = service.estimate(workload[0], seed=3)
        assert np.isfinite(single) and single >= 0
        batch = service.estimate_batch(workload)
        assert batch.shape == (len(workload),)
        assert np.all(np.isfinite(batch)) and np.all(batch >= 0)

    def test_pinned_seed_matches_direct_batched_engine(self, service, tiny_trained, workload):
        _, estimator = tiny_trained
        query = workload[1]
        direct = estimator.estimate_batch(
            [query], n_samples=64, rngs=[np.random.default_rng(21)]
        )[0]
        served = service.estimate(query, seed=21)
        assert served == direct  # same engine, same pinned stream

    def test_single_model_resolves_implicitly(self, service, workload):
        assert service.submit(workload[0]).result(timeout=30) >= 0

    def test_multi_model_requires_name(self, tiny_trained, workload):
        _, estimator = tiny_trained
        with EstimationService(n_samples=64) as svc:
            svc.register("a", estimator)
            svc.registry.register("b", FakeModel(tag=5.0))
            with pytest.raises(ServingError, match="model name required"):
                svc.estimate(workload[0])
            assert svc.estimate(workload[0], model="a") >= 0

    def test_closed_service_rejects_submits(self, tiny_trained, workload):
        _, estimator = tiny_trained
        svc = EstimationService(n_samples=64)
        svc.register("tiny", estimator)
        svc.close()
        with pytest.raises(ServingError):
            svc.submit(workload[0])

    def test_stats_exposes_scheduler_and_registry(self, service, workload):
        service.estimate_batch(workload)
        stats = service.stats()
        assert stats["models"]["tiny"]["requests"] == len(workload)
        assert stats["registry"]["n_models"] == 1
        assert stats["registry"]["resident_bytes"] > 0


class TestRefreshInvalidation:
    def test_result_cache_invalidated_after_refresh(self, tiny_trained, workload):
        schema, estimator = tiny_trained
        query = workload[1]
        with EstimationService(max_batch=8, max_wait_us=500, n_samples=64) as svc:
            svc.register("tiny", estimator)
            svc.estimate(query, seed=11)
            svc.estimate(query, seed=11)
            scheduler = svc.scheduler("tiny")
            assert scheduler.n_cache_hits == 1
            batches = scheduler.stats()["batches"]

            assert svc.refresh("tiny", schema, train_tuples=1_024) == 1

            svc.estimate(query, seed=11)
            # The version bump forced a recompute on the refreshed model;
            # the stale cached result was not served.
            assert scheduler.n_cache_hits == 1
            assert scheduler.stats()["batches"] == batches + 1
            # And the original estimator object was never touched.
            assert svc.registry.get("tiny") is not estimator

    def test_refresh_under_live_planning_traffic(self, tiny_trained, workload):
        """refresh() copies safely while serving threads mutate plan caches."""
        import threading

        schema, estimator = tiny_trained
        with EstimationService(max_batch=8, max_wait_us=200, n_samples=32) as svc:
            svc.register("tiny", estimator)
            stop = threading.Event()
            errors = []

            def hammer():
                i = 0
                while not stop.is_set():
                    try:
                        svc.estimate(workload[i % len(workload)], seed=i)
                    except Exception as exc:  # pragma: no cover - failure path
                        errors.append(exc)
                        return
                    i += 1

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                svc.refresh("tiny", schema, train_tuples=1_024)
            finally:
                stop.set()
                thread.join()
            assert not errors


class TestHarnessWiring:
    def test_concurrent_evaluation_through_service(self, service, tiny_trained, workload):
        schema, estimator = tiny_trained
        truths = true_cardinalities(schema, workload, counts=estimator.counts)
        result = evaluate_estimator(
            "served", service, workload, truths, concurrency=4
        )
        assert len(result.errors) == len(workload)
        assert all(np.isfinite(e) for e in result.errors)
        assert all(lat > 0 for lat in result.latencies_ms)
        assert result.size_bytes == estimator.size_bytes

    def test_concurrent_evaluation_propagates_client_failures(self, workload):
        """A dead client must raise, not report fabricated zero estimates."""
        from repro.serving import MicroBatchScheduler

        failing = FakeModel(tag=1.0, fail=True)
        with MicroBatchScheduler(
            lambda: (failing, 0), max_batch=4, max_wait_us=500, cache_size=0
        ) as scheduler:
            with pytest.raises(RuntimeError, match="exploded"):
                evaluate_estimator(
                    "bad", scheduler, workload,
                    [1.0] * len(workload), concurrency=2,
                )
