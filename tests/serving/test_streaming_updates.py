"""Streaming updates: ingest, drift monitoring, background refresh, torn reads."""

import threading
import time

import numpy as np
import pytest

from repro.core.estimator import NeuroCard
from repro.core.progressive import ProgressiveSampler
from repro.core.refresh import fast_refresh_budget
from repro.errors import DataError, ServingError
from repro.eval.harness import evaluate_estimator
from repro.joins.sampler import FullJoinSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    BackgroundRefresher,
    DriftMonitor,
    MicroBatchScheduler,
    ModelRegistry,
    RefreshPolicy,
    StreamingIngestor,
)
from tests.core.oracle import OracleModel
from tests.core.test_estimator import correlated_schema, small_config


def two_table_schema(child_rows):
    """R(id, year) <- C(rid, kind); child_rows = [(rid, kind), ...]."""
    root = Table.from_dict(
        "R", {"id": list(range(20)), "year": [1990 + (i % 8) for i in range(20)]}
    )
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    return JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )


BASE_CHILD_ROWS = [(i % 20, i % 4) for i in range(40)]


@pytest.fixture(scope="module")
def updatable():
    """A small trained estimator whose snapshot we append to (module-owned)."""
    schema = correlated_schema(n_root=60, seed=2)
    # Serve the first 70% of C2; the rest arrives later as appends.
    c2 = schema.table("C2")
    initial = schema.replace_table(c2.take(np.arange(int(c2.n_rows * 0.7))))
    config = small_config(
        train_tuples=3_000, sampler_threads=1, progressive_samples=32,
        d_ff=32, batch_size=256,
    )
    return schema, initial, NeuroCard(initial, config).fit()


def c2_suffix_batches(full_schema, initial_schema, n_batches=2):
    """The held-back C2 rows as append batches (dictionaries shared)."""
    c2 = full_schema.table("C2")
    start = initial_schema.table("C2").n_rows
    splits = np.array_split(np.arange(start, c2.n_rows), n_batches)
    return [c2.take(chunk) for chunk in splits if len(chunk)]


class TestStreamingIngestor:
    def test_versions_and_row_accounting(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(schema)
        assert ingestor.snapshot()[1] == 0
        v1 = ingestor.ingest_rows("C", {"rid": [1, 2], "kind": [0, 1]})
        v2 = ingestor.ingest_rows("C", {"rid": [3], "kind": [2]})
        assert (v1, v2) == (1, 2)
        snap, version = ingestor.snapshot()
        assert version == 2
        assert snap.table("C").n_rows == len(BASE_CHILD_ROWS) + 3
        stats = ingestor.stats()
        assert stats["rows_ingested"] == 3
        assert stats["batches_ingested"] == 2

    def test_snapshots_are_immutable_and_shared_dictionary(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(schema)
        before, _ = ingestor.snapshot()
        ingestor.ingest_rows("C", {"rid": [0], "kind": [3]})
        after, _ = ingestor.snapshot()
        assert before.table("C").n_rows == len(BASE_CHILD_ROWS)  # untouched
        assert np.array_equal(
            before.table("C").column("kind").dictionary,
            after.table("C").column("kind").dictionary,
        )

    def test_strict_mode_rejects_new_dictionary_values(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(schema)
        with pytest.raises(DataError, match="dictionaries"):
            ingestor.ingest_rows("C", {"rid": [0], "kind": [99]})
        # The failed batch must not have bumped the version.
        assert ingestor.snapshot()[1] == 0

    def test_non_strict_mode_grows_dictionaries(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(schema, strict_dictionaries=False)
        ingestor.ingest_rows("C", {"rid": [0], "kind": [99]})
        snap, _ = ingestor.snapshot()
        assert snap.table("C").column("kind").domain_size == 6  # 4 + new + NULL

    def test_multi_table_delta_is_one_version(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(schema)
        version = ingestor.ingest_many(
            {
                "R": Table.from_dict("R", {"id": [5], "year": [1994]}),
                "C": Table.from_dict("C", {"rid": [5, 5], "kind": [0, 1]}),
            }
        )
        assert version == 1
        with pytest.raises(DataError, match="empty"):
            ingestor.ingest_many({})


class TestAppendRebuildProperty:
    """Appends + rebuild must equal constructing from concatenated data."""

    def test_ingested_schema_equals_direct_construction(self):
        rng = np.random.default_rng(11)
        base_rows = [(int(r), int(k)) for r, k in
                     zip(rng.integers(0, 20, 30), rng.integers(0, 4, 30))]
        schema = two_table_schema(base_rows)
        # Appends draw from values already in the base dictionaries (the
        # strict shared-code-space contract).
        rids = sorted({r for r, _ in base_rows})
        kinds = sorted({k for _, k in base_rows})
        ingestor = StreamingIngestor(schema)
        appended = []
        for _ in range(4):
            batch = [(rids[int(i)], kinds[int(j)]) for i, j in
                     zip(rng.integers(0, len(rids), 7),
                         rng.integers(0, len(kinds), 7))]
            appended.extend(batch)
            ingestor.ingest_rows(
                "C", {"rid": [r for r, _ in batch], "kind": [k for _, k in batch]}
            )
        streamed, version = ingestor.snapshot()
        assert version == 4
        direct = two_table_schema(base_rows + appended)
        for tname in ("R", "C"):
            st, dt = streamed.table(tname), direct.table(tname)
            assert st.n_rows == dt.n_rows
            for col in st.column_names:
                assert np.array_equal(st.codes(col), dt.codes(col))
                assert np.array_equal(
                    st.column(col).dictionary, dt.column(col).dictionary
                )

    def test_for_snapshot_routing_matches_fresh_sampler(self):
        rng = np.random.default_rng(3)
        base_rows = [(int(r), int(k)) for r, k in
                     zip(rng.integers(0, 20, 25), rng.integers(0, 4, 25))]
        schema = two_table_schema(base_rows)
        sampler = FullJoinSampler(schema)
        ingestor = StreamingIngestor(schema)
        rids = sorted({r for r, _ in base_rows})
        kinds = sorted({k for _, k in base_rows})
        ingestor.ingest_rows(
            "C", {"rid": [rids[0], rids[2], rids[0]], "kind": kinds[:3]}
        )
        streamed, _ = ingestor.snapshot()

        routed = sampler.for_snapshot(streamed)
        fresh = FullJoinSampler(streamed)
        assert routed.full_join_size == fresh.full_join_size
        assert routed.specs == sampler.specs  # column universe preserved
        # Fragment routing state is identical to a from-scratch build...
        for table in routed.table_order:
            a_idx, a_cum = routed._descend[table]
            b_idx, b_cum = fresh._descend[table]
            assert np.array_equal(a_idx, b_idx)
            assert np.array_equal(a_cum, b_cum)
        # ...and so is everything downstream: sampled id matrices and the
        # assembled model-ready batches, bitwise under a pinned stream.
        rows_a = routed.sample_row_id_matrix(256, np.random.default_rng(5))
        rows_b = fresh.sample_row_id_matrix(256, np.random.default_rng(5))
        assert np.array_equal(rows_a, rows_b)
        batch_a = routed.assemble(routed.row_ids_as_dict(rows_a))
        batch_b = fresh.assemble(fresh.row_ids_as_dict(rows_b))
        for name in batch_a:
            assert np.array_equal(batch_a[name], batch_b[name])

    def test_verify_append_rejects_non_appends(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        sampler = FullJoinSampler(schema)
        shrunk = schema.replace_table(schema.table("C").take(np.arange(10)))
        with pytest.raises(DataError, match="shrank"):
            sampler.verify_append(shrunk)
        # Same row count but a mutated prefix row is not an append either.
        codes = schema.table("C").codes("kind").copy()
        codes[0] = (codes[0] % 4) + 1
        from repro.relational.column import Column

        mutated = schema.replace_table(
            Table(
                "C",
                [
                    schema.table("C").column("rid"),
                    Column("kind", codes, schema.table("C").column("kind").dictionary),
                ],
            )
        )
        with pytest.raises(DataError, match="mutated"):
            sampler.verify_append(mutated)

    def test_verify_append_counts_new_rows(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        sampler = FullJoinSampler(schema)
        ingestor = StreamingIngestor(schema)
        ingestor.ingest_rows("C", {"rid": [1, 1, 2], "kind": [0, 1, 2]})
        streamed, _ = ingestor.snapshot()
        assert sampler.verify_append(streamed) == {"R": 0, "C": 3}


class TestDriftMonitor:
    def test_no_drift_on_identical_snapshot(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        monitor = DriftMonitor(schema)
        report = monitor.observe(schema, 0)
        assert report.max_divergence == 0.0
        assert report.ingested_fraction == 0.0
        assert not report.is_stale

    def test_policy_triggers_exactly_at_drift_threshold(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        monitor = DriftMonitor(schema, columns=["C.kind"])
        ingestor = StreamingIngestor(schema)
        ingestor.ingest_rows("C", {"rid": [0] * 10, "kind": [3] * 10})
        snap, version = ingestor.snapshot()
        report = monitor.observe(snap, version)
        assert report.max_divergence > 0
        at = RefreshPolicy(
            drift_threshold=report.max_divergence, ingest_threshold=None
        )
        above = RefreshPolicy(
            drift_threshold=np.nextafter(report.max_divergence, 1.0),
            ingest_threshold=None,
        )
        assert at.decide(report) == "fast"        # inclusive: == threshold fires
        assert above.decide(report) == "none"     # epsilon above does not

    def test_policy_triggers_exactly_at_ingest_threshold(self):
        schema = two_table_schema(BASE_CHILD_ROWS)  # 20 + 40 = 60 baseline rows
        monitor = DriftMonitor(schema, columns=["C.kind"])
        ingestor = StreamingIngestor(schema)
        ingestor.ingest_rows("C", {"rid": [0] * 6, "kind": [0] * 6})  # 6/60 = 0.1
        report = monitor.observe(*ingestor.snapshot())
        assert report.ingested_fraction == pytest.approx(0.1)
        at = RefreshPolicy(drift_threshold=None, ingest_threshold=0.1)
        above = RefreshPolicy(drift_threshold=None, ingest_threshold=0.1 + 1e-9)
        assert at.decide(report) == "fast"
        assert above.decide(report) == "none"

    def test_severe_drift_escalates_to_retrain(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        monitor = DriftMonitor(schema, columns=["C.kind"])
        ingestor = StreamingIngestor(schema)
        ingestor.ingest_rows("C", {"rid": [0] * 200, "kind": [3] * 200})
        report = monitor.observe(*ingestor.snapshot())
        policy = RefreshPolicy(drift_threshold=0.05, retrain_drift_threshold=0.5)
        assert report.max_divergence >= 0.5
        assert policy.decide(report) == "retrain"

    def test_domain_growth_forces_retrain(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        monitor = DriftMonitor(schema, columns=["C.kind"])
        ingestor = StreamingIngestor(schema, strict_dictionaries=False)
        ingestor.ingest_rows("C", {"rid": [0], "kind": [42]})
        report = monitor.observe(*ingestor.snapshot())
        assert report.domains_changed
        assert RefreshPolicy().decide(report) == "retrain"

    def test_staleness_qerror_signal(self):
        schema = two_table_schema(BASE_CHILD_ROWS)
        monitor = DriftMonitor(schema)
        policy = RefreshPolicy(
            drift_threshold=None, ingest_threshold=None, qerror_threshold=5.0
        )
        # Degraded serving quality triggers even with NO new data ingested:
        # the refresh takes extra gradient steps on the current snapshot.
        for q in (2.0, 6.0, 8.0):
            monitor.record_qerror(q)
        report = monitor.observe(schema, 0)
        assert report.staleness_qerror == 6.0  # rolling median
        assert not report.is_stale
        assert policy.decide(report) == "fast"
        # Rebasing (a refresh) clears the staleness window.
        ingestor = StreamingIngestor(schema)
        ingestor.ingest_rows("C", {"rid": [0], "kind": [0]})
        monitor.rebase(*ingestor.snapshot())
        assert monitor.observe(*ingestor.snapshot()).staleness_qerror == 1.0


class TestNoTornReads:
    def test_swap_mid_stream_serves_only_pre_or_post_versions(self):
        """Every pinned-seed result is bitwise one of the two model versions.

        Uses the deterministic tabular oracle (batch-composition invariant),
        so pre/post expectations are exact and the check is bitwise.
        """
        old_schema = two_table_schema(BASE_CHILD_ROWS)
        ingestor = StreamingIngestor(old_schema)
        ingestor.ingest_rows(
            "C", {"rid": [1, 3, 5, 7, 9, 11] * 4, "kind": [0, 1, 2, 3] * 6}
        )
        new_schema, _ = ingestor.snapshot()

        def engine(schema):
            oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
            return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)

        old_engine, new_engine = engine(old_schema), engine(new_schema)
        queries = [
            Query.make(["R", "C"], [Predicate("C", "kind", "=", k % 4)])
            for k in range(8)
        ]
        n_samples = 64
        expected = {}
        for i, q in enumerate(queries):
            expected[i] = (
                old_engine.estimate(q, n_samples=n_samples,
                                    rng=np.random.default_rng(i)),
                new_engine.estimate(q, n_samples=n_samples,
                                    rng=np.random.default_rng(i)),
            )

        holder = {"model": old_engine, "version": 0}
        with MicroBatchScheduler(
            lambda: (holder["model"], holder["version"]),
            max_batch=4, max_wait_us=200, cache_size=0, n_samples=n_samples,
        ) as scheduler:
            results = []
            stop = threading.Event()

            def swapper():
                while not stop.is_set():
                    # Atomic publication order: new model first, version
                    # second, exactly like ModelRegistry.swap under its lock.
                    holder["model"], holder["version"] = new_engine, 1
                    time.sleep(0.0005)
                    holder["model"], holder["version"] = old_engine, 0
                    time.sleep(0.0005)

            flipper = threading.Thread(target=swapper)
            flipper.start()
            try:
                for round_ in range(30):
                    futures = [
                        (i, scheduler.submit(q, seed=i))
                        for i, q in enumerate(queries)
                    ]
                    results.extend((i, f.result()) for i, f in futures)
            finally:
                stop.set()
                flipper.join()
        assert results
        for i, value in results:
            assert value in expected[i], (
                f"query {i} observed {value!r}, neither pre-swap "
                f"{expected[i][0]!r} nor post-swap {expected[i][1]!r}"
            )

    def test_ingest_while_serving_real_estimator(self, updatable):
        """Clients never see an error or a half-refreshed model under ingest."""
        full, initial, estimator = updatable
        registry = ModelRegistry()
        registry.register("live", estimator)
        ingestor = StreamingIngestor(initial)
        refresher = BackgroundRefresher(
            registry, "live", ingestor,
            policy=RefreshPolicy(
                drift_threshold=None, ingest_threshold=0.01,
                retrain_drift_threshold=2.0,  # always the fast strategy
            ),
            poll_interval=0.01,
        ).start()
        query = Query.make(["R", "C2"], [Predicate("C2", "score", "<=", 10)])
        failures = []
        stop = threading.Event()
        scheduler = MicroBatchScheduler(
            lambda: registry.get_with_version("live"),
            max_batch=8, max_wait_us=500, cache_size=0, n_samples=32,
        )

        def client(cid):
            try:
                i = 0
                while not stop.is_set():
                    value = scheduler.submit(query, seed=cid * 10_000 + i).result()
                    assert np.isfinite(value) and value >= 0.0
                    i += 1
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        clients = [threading.Thread(target=client, args=(c,)) for c in range(2)]
        for t in clients:
            t.start()
        try:
            for batch in c2_suffix_batches(full, initial, n_batches=2):
                version = ingestor.ingest(batch)
                deadline = time.monotonic() + 60
                while (
                    refresher.stats()["last_data_version"] < version
                    and refresher.last_error is None
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
        finally:
            stop.set()
            for t in clients:
                t.join()
            refresher.close()
            scheduler.close()
        assert not failures
        assert refresher.last_error is None
        served = registry.get("live")
        assert served.data_version == ingestor.version
        assert served.schema.table("C2").n_rows == full.table("C2").n_rows
        assert all(e.strategy == "fast" and e.ok for e in refresher.history)


class TestRefreshFailure:
    def test_failed_refresh_leaves_old_model_serving(self, updatable):
        _, initial, estimator = updatable
        registry = ModelRegistry()
        registry.register("live", estimator)
        before_version = registry.version("live")
        ingestor = StreamingIngestor(initial, strict_dictionaries=False)
        # New dictionary values make the fast (shared-vocabulary) strategy
        # impossible: update() must raise, and serving must be unaffected.
        ingestor.ingest_rows("C2", {"rid": [0], "score": [999_999]})
        refresher = BackgroundRefresher(registry, "live", ingestor)
        event = refresher.refresh_now("fast")
        assert not event.ok
        assert refresher.last_error is event.error
        assert registry.get("live") is estimator           # old object intact
        assert registry.version("live") == before_version  # no version bump
        # The poisoned version is not retried until new data arrives.
        assert refresher.poll_once() is None
        assert len(refresher.history) == 1

    def test_unknown_model_and_strategy_rejected(self, updatable):
        _, initial, estimator = updatable
        registry = ModelRegistry()
        registry.register("live", estimator)
        ingestor = StreamingIngestor(initial)
        with pytest.raises(ServingError, match="unknown model"):
            BackgroundRefresher(registry, "nope", ingestor)
        refresher = BackgroundRefresher(registry, "live", ingestor)
        event = refresher.refresh_now("hourly")
        assert not event.ok and isinstance(event.error, ServingError)


class TestCacheInvalidationOnRefresh:
    def test_result_cache_invalidates_on_version_bump(self, updatable):
        full, initial, estimator = updatable
        registry = ModelRegistry()
        registry.register("live", estimator)
        ingestor = StreamingIngestor(initial)
        refresher = BackgroundRefresher(
            registry, "live", ingestor,
            policy=RefreshPolicy(retrain_drift_threshold=2.0),
        )
        query = Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)])
        with MicroBatchScheduler(
            lambda: registry.get_with_version("live"),
            max_batch=8, max_wait_us=200, cache_size=64, n_samples=32,
        ) as scheduler:
            first = scheduler.submit(query, seed=9).result()
            assert scheduler.submit(query, seed=9).result() == first
            assert scheduler.stats()["cache_hits"] == 1

            ingestor.ingest(c2_suffix_batches(full, initial, n_batches=1)[0])
            event = refresher.refresh_now("fast")
            assert event.ok and event.model_version == registry.version("live")

            batches_before = scheduler.stats()["batches"]
            refreshed = scheduler.submit(query, seed=9).result()
            stats = scheduler.stats()
            assert stats["cache_hits"] == 1            # not served from cache
            assert stats["batches"] == batches_before + 1
            assert np.isfinite(refreshed)


class TestThrottledRefresh:
    def test_throttled_update_weights_bitwise_equal(self, updatable):
        """The duty cycle paces wall time only: weights match unthrottled."""
        full, initial, estimator = updatable
        from repro.core.refresh import clone_estimator

        fast, slow = clone_estimator(estimator), clone_estimator(estimator)
        snapshot = initial.replace_table(full.table("C2"))
        fast.update(snapshot, train_tuples=512)
        slow.update(snapshot, train_tuples=512, throttle=0.5)
        for a, b in zip(fast.model.parameters(), slow.model.parameters()):
            assert np.array_equal(a.value, b.value)

    def test_invalid_throttle_rejected(self, updatable):
        full, initial, estimator = updatable
        from repro.core.refresh import clone_estimator
        from repro.errors import EstimationError

        clone = clone_estimator(estimator)
        snapshot = initial.replace_table(full.table("C2"))
        with pytest.raises(EstimationError, match="throttle"):
            clone.update(snapshot, train_tuples=512, throttle=0.0)
        with pytest.raises(EstimationError, match="throttle"):
            clone.update(snapshot, train_tuples=512, throttle=1.5)


class TestSchedulerFlusherDeath:
    def test_flusher_death_fails_pending_futures_with_cause(self):
        from tests.serving.conftest import FakeModel

        scheduler = MicroBatchScheduler(
            lambda: (FakeModel(tag=1.0), 0),
            max_batch=4, max_wait_us=50_000, cache_size=0,
        )
        boom = RuntimeError("flusher exploded")

        def dying_flush(batch):
            raise boom

        scheduler._flush = dying_flush
        future = scheduler.submit(Query.make(["R"], []))
        with pytest.raises(ServingError, match="flusher died"):
            future.result(timeout=5)
        try:
            future.result(timeout=5)
        except ServingError as exc:
            assert exc.__cause__ is boom  # SamplerError-style chaining
        # Later submits fail fast with the same chained diagnosis instead
        # of queueing forever behind a dead flusher.
        with pytest.raises(ServingError, match="flusher died"):
            scheduler.submit(Query.make(["R"], []))


class TestHarnessFirstFailure:
    def test_concurrent_eval_surfaces_first_underlying_exception(self):
        class ExplodingService:
            """submit() fails with an error naming the query index."""

            def submit(self, query):
                from concurrent.futures import Future

                future = Future()
                future.set_exception(ValueError(f"query {query.index} failed"))
                return future

        class FakeQuery:
            def __init__(self, index):
                self.index = index

        queries = [FakeQuery(i) for i in range(6)]
        with pytest.raises(ValueError, match="query 0 failed"):
            evaluate_estimator(
                "bad", ExplodingService(), queries, [1.0] * 6, concurrency=3
            )


class TestIncrementalFitEntryPoint:
    def test_update_fraction_budget_and_data_version(self, updatable):
        full, initial, estimator = updatable
        from repro.core.refresh import clone_estimator

        clone = clone_estimator(estimator)
        assert clone.data_version == estimator.data_version == 0
        seen_before = clone.train_result.tuples_seen
        budget = fast_refresh_budget(clone.config, 0.01)
        snapshot = initial.replace_table(full.table("C2"))
        clone.update(snapshot, fraction=0.01, data_version=7)
        assert clone.data_version == 7
        assert clone.train_result.tuples_seen - seen_before == pytest.approx(
            budget, abs=clone.config.batch_size
        )
        # The original serving estimator was never touched by the clone.
        assert estimator.data_version == 0
        assert estimator.schema.table("C2").n_rows == initial.table("C2").n_rows

    def test_update_without_budget_only_rebuilds(self, updatable):
        full, initial, estimator = updatable
        from repro.core.refresh import clone_estimator

        clone = clone_estimator(estimator)
        seen_before = clone.train_result.tuples_seen
        clone.update(initial.replace_table(full.table("C2")))
        assert clone.train_result.tuples_seen == seen_before  # no training
        assert clone.data_version == 1  # auto-bump
