"""ServingConfig consolidation, the EstimationClient protocol, gate --only.

Covers the PR 6 API-redesign satellites: one validated config object for
every serving knob (dict round-trip for deployment files, hard errors on
typos), legacy kwargs surviving one release behind a DeprecationWarning,
a single client protocol every serving depth satisfies, and the
regression gate accepting comma-separated ``--only`` bench lists.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServingError
from repro.serving import (
    CascadeConfig,
    EstimationClient,
    EstimationService,
    MicroBatchScheduler,
    ModelRegistry,
    ServingConfig,
    WorkerPool,
)
from repro.serving.updates import RefreshPolicy


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_defaults_validate_and_match_refresh_policy_defaults():
    config = ServingConfig()
    assert config.refresh_policy() == RefreshPolicy()


@pytest.mark.parametrize(
    "field, value",
    [
        ("max_batch", 0),
        ("max_wait_us", -1),
        ("cache_size", -1),
        ("n_samples", 0),
        ("budget_bytes", 0),
        ("workers", -1),
        ("worker_start", "threads"),
        ("min_shard", 0),
        ("max_inflight", 0),
        ("drift_threshold", 1.5),
        ("ingest_threshold", -0.1),
        ("qerror_threshold", 0.5),
        ("retrain_drift_threshold", 2.0),
        ("fast_fraction", 0.0),
        ("train_duty", 1.5),
        ("min_interval_seconds", -1.0),
        ("poll_interval", 0.0),
    ],
)
def test_invalid_fields_fail_at_construction(field, value):
    with pytest.raises(ServingError, match=field.split("_")[0]):
        ServingConfig(**{field: value})


def test_config_is_frozen():
    config = ServingConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.max_batch = 128


# ----------------------------------------------------------------------
# Dict round-trip
# ----------------------------------------------------------------------
def test_dict_round_trip_is_exact():
    config = ServingConfig(
        workers=4, worker_start="spawn", max_batch=32, budget_bytes=1 << 20,
        qerror_threshold=8.0, n_samples=64,
    )
    assert ServingConfig.from_dict(config.to_dict()) == config
    # and the dict is JSON-serializable (deployment-file friendly)
    assert ServingConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config


def test_unknown_keys_are_hard_errors():
    with pytest.raises(ServingError, match="max_batchh"):
        ServingConfig.from_dict({"max_batchh": 32})


# ----------------------------------------------------------------------
# Legacy kwargs: one release of DeprecationWarning compatibility
# ----------------------------------------------------------------------
def test_legacy_service_kwargs_warn_but_apply():
    with pytest.warns(DeprecationWarning, match="max_batch"):
        service = EstimationService(max_batch=8, cache_size=0)
    try:
        assert service.config.max_batch == 8
        assert service.config.cache_size == 0
        assert service.config.max_wait_us == ServingConfig().max_wait_us
    finally:
        service.close()


def test_config_object_does_not_warn(recwarn):
    service = EstimationService(config=ServingConfig(max_batch=8))
    try:
        assert service.config.max_batch == 8
        assert not [w for w in recwarn if w.category is DeprecationWarning]
    finally:
        service.close()


def test_legacy_kwargs_override_explicit_config():
    with pytest.warns(DeprecationWarning):
        service = EstimationService(
            config=ServingConfig(max_batch=16), n_samples=32
        )
    try:
        assert service.config.max_batch == 16
        assert service.config.n_samples == 32
    finally:
        service.close()


# ----------------------------------------------------------------------
# EstimationClient protocol
# ----------------------------------------------------------------------
def test_every_serving_depth_satisfies_the_protocol(oracle_engine):
    from tests.serving.conftest import FakeModel

    registry = ModelRegistry()
    registry.register("m", FakeModel(tag=1.0))
    scheduler = MicroBatchScheduler(lambda: (oracle_engine, 0))
    pool = WorkerPool(n_workers=1, name="protocol")
    service = EstimationService(registry, config=ServingConfig(cache_size=0))
    try:
        for client in (oracle_engine, scheduler, service, pool):
            assert isinstance(client, EstimationClient), type(client)
    finally:
        service.close()
        scheduler.close()
        pool.close()


def test_harness_concurrency_accepts_plain_estimators(oracle_engine, workload):
    """evaluate_estimator(concurrency=N) no longer requires submit()."""
    from repro.eval.harness import evaluate_estimator

    class Plain:
        """estimate-only client: no submit, no estimate_batch."""

        def __init__(self, engine):
            self._engine = engine

        def estimate(self, query, **kwargs):
            return float(self._engine.estimate(query, **kwargs))

    truths = [1.0] * len(workload)
    result = evaluate_estimator(
        "plain", Plain(oracle_engine), workload, truths, concurrency=3
    )
    assert len(result.estimates) == len(workload)
    assert all(est > 0 for est in result.estimates)


# ----------------------------------------------------------------------
# check_regression --only comma lists
# ----------------------------------------------------------------------
def _run_gate(tmp_path: Path, only_args, extra=()):
    baseline = {
        "tolerance": 0.25,
        "metrics": {
            "alpha.qps": {"value": 100.0, "direction": "higher"},
            "beta.qps": {"value": 100.0, "direction": "higher"},
            "gamma.qps": {"value": 100.0, "direction": "higher"},
        },
    }
    (tmp_path / "baseline.json").write_text(json.dumps(baseline))
    (tmp_path / "alpha.json").write_text(json.dumps({"bench": "alpha", "qps": 200.0}))
    (tmp_path / "beta.json").write_text(json.dumps({"bench": "beta", "qps": 200.0}))
    script = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
    return subprocess.run(
        [
            sys.executable, str(script),
            "--baseline", str(tmp_path / "baseline.json"),
            *only_args, *extra,
            str(tmp_path / "alpha.json"), str(tmp_path / "beta.json"),
        ],
        capture_output=True, text=True,
    )


def test_only_accepts_comma_separated_bench_names(tmp_path):
    proc = _run_gate(tmp_path, ["--only", "alpha,beta"], extra=["--require-all"])
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "gamma" not in proc.stdout  # unselected bench ignored entirely


def test_only_comma_and_repeat_forms_are_equivalent(tmp_path):
    comma = _run_gate(tmp_path, ["--only", "alpha,beta"])
    repeated = _run_gate(tmp_path, ["--only", "alpha", "--only", "beta"])
    assert comma.returncode == repeated.returncode == 0
    assert comma.stdout == repeated.stdout


def test_only_still_rejects_unknown_names_in_comma_lists(tmp_path):
    proc = _run_gate(tmp_path, ["--only", "alpha,delta"])
    assert proc.returncode != 0
    assert "delta" in (proc.stdout + proc.stderr)


# ----------------------------------------------------------------------
# CascadeConfig (the `cascade` section, PR 10)
# ----------------------------------------------------------------------
def test_cascade_defaults_validate():
    cascade = CascadeConfig()
    assert cascade.tiers == ("per_table", "neural")
    assert cascade.calibration_path is None
    assert cascade.default_max_q_error == 4.0
    assert cascade.default_budget_ms is None
    assert cascade.min_class_queries == 8
    assert cascade.demote_staleness_qerror == 2.0


@pytest.mark.parametrize(
    "field,value",
    [
        ("tiers", ()),
        ("tiers", ("per_table", "per_table")),
        ("tiers", ("per_table", "")),
        ("default_max_q_error", 0.5),
        ("default_budget_ms", 0.0),
        ("default_budget_ms", -1.0),
        ("min_class_queries", 0),
        ("demote_staleness_qerror", 0.9),
    ],
)
def test_invalid_cascade_fields_fail_at_construction(field, value):
    with pytest.raises(ServingError):
        CascadeConfig(**{field: value})


def test_cascade_unknown_keys_are_hard_errors():
    with pytest.raises(ServingError):
        CascadeConfig.from_dict({"tierss": ("a", "b")})


def test_cascade_tiers_list_is_normalized_to_tuple():
    cascade = CascadeConfig.from_dict({"tiers": ["per_table", "neural"]})
    assert cascade.tiers == ("per_table", "neural")


def test_cascade_section_round_trips_inside_serving_config():
    config = ServingConfig(
        max_batch=16,
        cascade=CascadeConfig(
            tiers=("per_table", "deepdb", "neural"),
            calibration_path="/tmp/calibration.json",
            default_max_q_error=1.5,
            default_budget_ms=2.0,
            min_class_queries=4,
            demote_staleness_qerror=3.0,
        ),
    )
    assert ServingConfig.from_dict(config.to_dict()) == config
    # JSON-transportable, like every other section.
    assert ServingConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config
    # Config-less posture stays cascade-free after a round trip.
    assert ServingConfig.from_dict(ServingConfig().to_dict()).cascade is None


def test_cascade_section_must_be_a_cascade_config():
    with pytest.raises(ServingError):
        ServingConfig(cascade="per_table,neural")
