"""ModelRegistry: registration, lazy loading, eviction, hot-swap atomicity."""

import threading

import numpy as np
import pytest

from repro.core.persistence import save_model
from repro.errors import ServingError
from repro.serving import MicroBatchScheduler, ModelRegistry
from repro.relational.query import Query
from tests.serving.conftest import FakeModel


class TestRegistration:
    def test_register_get_version(self):
        registry = ModelRegistry()
        model = FakeModel(tag=1.0)
        registry.register("a", model)
        assert registry.get("a") is model
        assert registry.version("a") == 0
        assert "a" in registry and "b" not in registry

    def test_duplicate_and_unknown_rejected(self):
        registry = ModelRegistry()
        registry.register("a", FakeModel(tag=1.0))
        with pytest.raises(ServingError):
            registry.register("a", FakeModel(tag=2.0))
        with pytest.raises(ServingError, match="unknown model"):
            registry.get("missing")

    def test_unfitted_rejected(self):
        fake = FakeModel(tag=1.0)
        fake.is_fitted = False
        with pytest.raises(ServingError, match="fitted"):
            ModelRegistry().register("a", fake)


class TestLazyLoadAndEviction:
    def test_lazy_load_on_first_get(self, tiny_trained, tmp_path):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        registry = ModelRegistry()
        registry.register_path("m", path, schema)
        assert registry.loads == 0
        assert registry.resident_bytes == 0
        loaded = registry.get("m")
        assert registry.loads == 1
        assert registry.resident_bytes == loaded.size_bytes
        registry.get("m")
        assert registry.loads == 1  # cached, not reloaded

    def test_eviction_by_size_budget(self, tiny_trained, tmp_path):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        # Probe the resident footprint of one loaded model (weights plus
        # the compiled inference buffers folded on load) so the budget
        # fits exactly one of them, not two.
        probe = ModelRegistry()
        probe.register_path("probe", path, schema)
        budget = int(probe.get("probe").size_bytes * 1.5)  # fits one, not two
        registry = ModelRegistry(budget_bytes=budget)
        registry.register_path("a", path, schema)
        registry.register_path("b", path, schema)
        registry.get("a")
        registry.get("b")
        assert registry.evictions == 1
        assert registry.resident_bytes <= budget
        # The evicted model transparently reloads on demand.
        assert registry.get("a").is_fitted
        assert registry.loads == 3

    def test_pinned_models_never_evicted(self, tiny_trained):
        _, estimator = tiny_trained
        registry = ModelRegistry(budget_bytes=1)  # absurdly small
        registry.register("pinned", estimator)
        assert registry.get("pinned") is estimator
        assert registry.evictions == 0


class TestHotSwap:
    def test_swap_bumps_version_and_readers_keep_old_object(self):
        registry = ModelRegistry()
        old, new = FakeModel(tag=1.0), FakeModel(tag=2.0)
        registry.register("m", old)
        held = registry.get("m")
        assert registry.swap("m", new) == 1
        assert held is old  # a reader mid-batch is untouched
        assert registry.get("m") is new
        assert registry.version("m") == 1

    def test_swap_severs_stale_artifact_path(self, tiny_trained, tmp_path):
        """Post-swap eviction must not resurrect the pre-swap weights."""
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        registry = ModelRegistry()
        registry.register_path("m", path, schema)
        registry.get("m")
        replacement = FakeModel(tag=9.0)
        registry.swap("m", replacement)
        assert not registry.unload("m")  # no longer reloadable from disk
        assert registry.get("m") is replacement

    def test_refresh_trains_copy_without_blocking_readers(self, tiny_trained):
        schema, estimator = tiny_trained
        registry = ModelRegistry()
        registry.register("m", estimator)
        held = registry.get("m")
        version = registry.refresh("m", schema, train_tuples=1_024)
        assert version == 1
        assert held is estimator  # the live object was never mutated
        refreshed = registry.get("m")
        assert refreshed is not estimator
        assert refreshed.is_fitted

    def test_refresh_rebuilds_compiled_state(self, tiny_trained):
        """Hot-swap must never serve kernels folded from pre-update weights."""
        from repro.core.inference import build_engine, compiled_model

        schema, estimator = tiny_trained
        registry = ModelRegistry()
        registry.register("m", estimator)
        old_engine = registry.get("m").inference
        registry.refresh("m", schema, train_tuples=1_024)
        refreshed = registry.get("m")
        new_compiled = compiled_model(refreshed.inference)
        assert refreshed.inference is not old_engine
        assert new_compiled is not compiled_model(old_engine)
        # swap() precompiles before publishing: the first request after a
        # hot-swap is already on folded kernels.
        assert new_compiled.is_compiled
        # And those kernels reflect the refreshed weights: a fresh engine
        # built from the refreshed model must agree bitwise.
        query = Query.make(["R"])
        fresh = build_engine(
            refreshed.model, refreshed.layout,
            refreshed.counts.full_join_size, "fp32",
        )
        served = refreshed.estimate(query, rng=np.random.default_rng(21))
        rebuilt = fresh.estimate_batch(
            [query],
            n_samples=refreshed.config.progressive_samples,
            rngs=[np.random.default_rng(21)],
        )[0]
        assert served == rebuilt

    def test_hot_swap_under_concurrent_submit_no_torn_reads(self):
        """Every result is wholly from one model generation, never mixed."""
        registry = ModelRegistry()
        registry.register("m", FakeModel(tag=0.0))
        query = Query.make(["T"])
        results, errors = [], []
        stop = threading.Event()
        lock = threading.Lock()

        with MicroBatchScheduler(
            lambda: registry.get_with_version("m"),
            max_batch=8, max_wait_us=200, cache_size=0,
        ) as scheduler:

            def client():
                while not stop.is_set():
                    try:
                        value = scheduler.submit(query).result(timeout=10)
                    except Exception as exc:  # pragma: no cover - failure path
                        with lock:
                            errors.append(exc)
                        return
                    with lock:
                        results.append(value)

            threads = [threading.Thread(target=client) for _ in range(4)]
            for t in threads:
                t.start()
            for generation in range(1, 6):  # swap 5 times under load
                registry.swap("m", FakeModel(tag=float(generation)))
            stop.set()
            for t in threads:
                t.join()

        assert not errors
        assert len(results) > 0
        valid = {float(g) for g in range(6)}
        assert set(results) <= valid  # no torn / interpolated values
        assert np.isfinite(results).all()
