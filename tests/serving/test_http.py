"""HTTP front end: wire equivalence, 4xx surfaces, shedding, graceful drain."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import QueryError, ServingError
from repro.eval.harness import evaluate_estimator, true_cardinalities
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.serving import (
    EstimationService,
    HttpConfig,
    HttpEstimationClient,
    HttpServerThread,
    ServingConfig,
    TenantQuota,
)
from repro.serving.metrics import parse_samples
from tests.core.test_estimator import correlated_schema
from tests.serving.conftest import FakeModel


@pytest.fixture(scope="module")
def http_stack(oracle_engine):
    """One served oracle model behind a live HTTP server (read-only)."""
    service = EstimationService()
    service.register("oracle", oracle_engine)
    with HttpServerThread(service, HttpConfig(port=0)) as server:
        yield service, server
    service.close()


@pytest.fixture()
def client(http_stack):
    _, server = http_stack
    client = HttpEstimationClient(server.host, server.port, "oracle")
    yield client
    client.close()


class TestWireEquivalence:
    def test_single_estimate_bitwise_equals_in_process(self, http_stack, client, workload):
        service, _ = http_stack
        for i, query in enumerate(workload):
            assert client.estimate(query, seed=50 + i) == service.estimate(
                query, seed=50 + i
            )

    def test_batch_estimate_bitwise_equals_in_process(self, http_stack, client, workload):
        service, _ = http_stack
        seeds = [100 + i for i in range(len(workload))]
        wire = client.estimate_batch(workload, seeds=seeds)
        ref = np.array(
            [service.estimate(q, seed=s) for q, s in zip(workload, seeds)]
        )
        assert np.array_equal(wire, ref)

    def test_n_samples_override_travels(self, http_stack, client, workload):
        service, _ = http_stack
        query = workload[0]
        assert client.estimate(query, seed=9, n_samples=32) == (
            service.submit(query, seed=9, n_samples=32).result()
        )

    def test_harness_drives_the_wire_client(self, client, workload):
        """evaluate_estimator accepts the HTTP adapter unchanged."""
        schema = correlated_schema(n_root=12, seed=4)
        truths = true_cardinalities(schema, workload)
        result = evaluate_estimator(
            "over-the-wire", client, workload, truths, concurrency=2
        )
        assert len(result.errors) == len(workload)
        assert all(np.isfinite(e) and e >= 1.0 for e in result.errors)


class TestBadRequests:
    def _post_raw(self, client, body: bytes, path=None):
        status, _, payload = client._request(
            "POST", path or f"/v1/models/{client.model}/estimate", body
        )
        return status, json.loads(payload.decode())

    def test_malformed_json_is_400(self, client):
        status, doc = self._post_raw(client, b"{not json")
        assert status == 400
        assert "not valid JSON" in doc["error"]

    def test_non_object_body_is_400(self, client):
        status, doc = self._post_raw(client, b"[1, 2]")
        assert status == 400
        assert "JSON object" in doc["error"]

    def test_unknown_body_key_is_400(self, client):
        status, doc = self._post_raw(
            client, json.dumps({"query": {"tables": ["R"]}, "qeury": 1}).encode()
        )
        assert status == 400
        assert "qeury" in doc["error"]

    def test_query_and_queries_together_is_400(self, client):
        body = {"query": {"tables": ["R"]}, "queries": [{"tables": ["R"]}]}
        status, doc = self._post_raw(client, json.dumps(body).encode())
        assert status == 400
        assert "exactly one of" in doc["error"]

    def test_missing_both_is_400(self, client):
        status, _ = self._post_raw(client, b"{}")
        assert status == 400

    def test_seed_count_mismatch_is_400(self, client):
        body = {"queries": [{"tables": ["R"]}], "seeds": [1, 2]}
        status, doc = self._post_raw(client, json.dumps(body).encode())
        assert status == 400
        assert "matching 'queries'" in doc["error"]

    def test_bad_dsl_is_400(self, client):
        body = {"query": {"tables": ["R"],
                          "filters": [{"column": "R.year", "op": "!=", "value": 1}]}}
        status, doc = self._post_raw(client, json.dumps(body).encode())
        assert status == 400
        assert "unsupported filter op" in doc["error"]

    def test_unknown_column_is_400(self, client):
        """Submit-time validation (plan/layout) surfaces as a 400, not a 500."""
        query = Query.make(["R"], [Predicate("R", "id", "=", 1)])  # excluded col
        with pytest.raises(QueryError, match="400"):
            client.estimate(query)

    def test_unknown_model_is_404(self, http_stack):
        _, server = http_stack
        ghost = HttpEstimationClient(server.host, server.port, "ghost")
        with pytest.raises(QueryError, match="404"):
            ghost.estimate(Query.make(["R"], []))
        ghost.close()

    def test_unknown_route_is_404(self, client):
        status, _, _ = client._request("GET", "/v2/nope")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, _, _ = client._request("GET", "/v1/models/oracle/estimate")
        assert status == 405

    def test_oversized_body_is_413(self, http_stack):
        service, _ = http_stack
        with HttpServerThread(
            service, HttpConfig(port=0, max_body_bytes=64)
        ) as small:
            tiny = HttpEstimationClient(small.host, small.port, "oracle")
            status, _, payload = tiny._request(
                "POST", "/v1/models/oracle/estimate", b"x" * 65
            )
            assert status == 413
            tiny.close()


class TestAdmissionOverTheWire:
    def test_unknown_tenant_is_403_when_strict(self, oracle_engine):
        config = ServingConfig(
            http=HttpConfig(
                port=0, tenants=(TenantQuota("vip"),), strict_tenants=True
            )
        )
        service = EstimationService(config=config)
        service.register("oracle", oracle_engine)
        query = Query.make(["R"], [])
        # No explicit HttpConfig argument: the section must flow in from
        # ServingConfig.http.
        with HttpServerThread(service) as server:
            anon = HttpEstimationClient(server.host, server.port, "oracle")
            with pytest.raises(QueryError, match="403"):
                anon.estimate(query)
            vip = HttpEstimationClient(
                server.host, server.port, "oracle", tenant="vip"
            )
            assert vip.estimate(query, seed=1) > 0
            anon.close()
            vip.close()
        service.close()

    def test_quota_exhaustion_is_429_with_retry_after(self, oracle_engine):
        service = EstimationService()
        service.register("oracle", oracle_engine)
        query = Query.make(["R"], [])
        with HttpServerThread(
            service, HttpConfig(port=0, rate=2.0)
        ) as server:
            client = HttpEstimationClient(server.host, server.port, "oracle")
            client.estimate(query, seed=1)
            client.estimate(query, seed=2)
            status, headers, payload = client._request(
                "POST",
                "/v1/models/oracle/estimate",
                json.dumps({"query": {"tables": ["R"]}}).encode(),
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "rate" in json.loads(payload.decode())["error"]
            client.close()
        service.close()

    def test_infeasible_deadline_shed_with_503(self):
        """Once the EWMA knows requests are slow, tight deadlines shed early."""
        service = EstimationService()
        service.register("slow", FakeModel(tag=7.0, delay=0.2))
        query = Query.make(["R"], [])
        with HttpServerThread(service, HttpConfig(port=0)) as server:
            # max_retries=0: a retried 503 would shed more than once and
            # break the exact shed-count assertion below.
            client = HttpEstimationClient(
                server.host, server.port, "slow", max_retries=0
            )
            assert client.estimate(query) == 7.0  # teaches the EWMA ~0.2s
            with pytest.raises(ServingError, match="503.*deadline"):
                client.estimate(query, deadline_ms=10.0)
            shed = server.server.admission.stats()["shed"]
            assert shed == {"default/deadline": 1}
            client.close()
        service.close()

    def test_in_flight_deadline_expiry_is_504(self):
        service = EstimationService()
        service.register("slow", FakeModel(tag=7.0, delay=0.3))
        query = Query.make(["R"], [])
        with HttpServerThread(service, HttpConfig(port=0)) as server:
            client = HttpEstimationClient(server.host, server.port, "slow")
            # No latency history yet, so admission lets it through; the
            # in-flight timer then fires before the model answers.
            with pytest.raises(ServingError, match="504"):
                client.estimate(query, deadline_ms=50.0)
            client.close()
        service.close()


class TestObservability:
    def test_healthz_reports_models_and_admission(self, client):
        doc = client.healthz()
        assert doc["status"] == "ok"
        assert doc["models"] == ["oracle"]
        assert doc["admission"]["in_flight"] == 0
        assert "registry" in doc

    def test_metrics_reconcile_exactly_with_client_tallies(self, oracle_engine, workload):
        service = EstimationService()
        service.register("oracle", oracle_engine)
        with HttpServerThread(
            service, HttpConfig(port=0, rate=4.0)
        ) as server:
            client = HttpEstimationClient(
                server.host, server.port, "oracle", tenant="t1"
            )
            ok = shed = queries = 0
            # Batch of 3 + two singles = 5 tokens against a burst of 4.
            for body in (
                {"queries": [{"tables": ["R"]}] * 3, "seeds": [1, 2, 3]},
                {"query": {"tables": ["R"]}, "seed": 4},
                {"query": {"tables": ["R"]}, "seed": 5},
            ):
                status, _, payload = client._request(
                    "POST",
                    "/v1/models/oracle/estimate",
                    json.dumps(body).encode(),
                )
                if status == 200:
                    ok += 1
                    doc = json.loads(payload.decode())
                    queries += len(doc.get("estimates", [0.0]))
                else:
                    assert status == 429
                    shed += 1
            assert ok == 2 and shed == 1  # 3 + 1 admitted, then the bucket is dry
            samples = parse_samples(client.metrics_text())
            assert samples['repro_http_requests_total{code="200",tenant="t1"}'] == ok
            assert samples['repro_http_requests_total{code="429",tenant="t1"}'] == shed
            assert samples['repro_http_queries_total{tenant="t1"}'] == queries
            assert samples['repro_http_shed_total{reason="rate",tenant="t1"}'] == shed
            assert (
                samples['repro_http_request_seconds_count{tenant="t1"}'] == ok
            )
            client.close()
        service.close()

    def test_metrics_export_scheduler_gauges(self, client):
        client.estimate(Query.make(["R"], []), seed=11)
        samples = parse_samples(client.metrics_text())
        key = 'repro_scheduler_stat{model="oracle",stat="requests"}'
        assert samples[key] >= 1


class TestGracefulDrain:
    def test_drain_under_load_drops_no_admitted_request(self):
        """Every admitted request is answered; late ones see clean errors."""
        service = EstimationService()
        service.register("m", FakeModel(tag=3.0, delay=0.02))
        server = HttpServerThread(service, HttpConfig(port=0)).start()
        query = Query.make(["R"], [])

        successes = []
        clean_rejections = []
        anomalies = []
        stop = threading.Event()

        def worker():
            # Fail fast on drain-time 503s/disconnects: this test asserts
            # the *first* response for every request, not retried outcomes.
            client = HttpEstimationClient(
                server.host, server.port, "m", max_retries=0
            )
            while not stop.is_set():
                try:
                    successes.append(client.estimate(query))
                except ServingError:
                    clean_rejections.append("shed")  # 503 draining
                except (ConnectionError, OSError):
                    clean_rejections.append("closed")  # listener gone
                except Exception as exc:  # noqa: BLE001
                    anomalies.append(repr(exc))
            client.close()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        # Let traffic build, then drain mid-flight.
        while len(successes) < 20:
            pass
        admission = server.server.admission
        server.stop()  # graceful drain: flush in-flight, then tear down
        stop.set()
        for t in threads:
            t.join(timeout=10)

        assert not anomalies
        # Zero dropped in-flight futures: everything admission admitted
        # produced a 200 the load generator observed.
        assert sum(admission.admitted.values()) == len(successes)
        assert all(v == 3.0 for v in successes)
        assert admission.in_flight == 0
        service.close()

    def test_stop_is_idempotent(self, oracle_engine):
        service = EstimationService()
        service.register("oracle", oracle_engine)
        server = HttpServerThread(service, HttpConfig(port=0)).start()
        server.stop()
        server.stop()
        service.close()
