"""Chaos harness: deterministic fault injection, breaker cascade, recovery.

The invariants bench_chaos_resilience.py gates in CI, proven small here:
every request terminates (result or typed error), one seed replays one
fault schedule, non-degraded answers are bitwise-unaffected by the storm,
torn saves leave the previous artifact intact, and corrupted artifacts
surface as clean PersistenceErrors without poisoning their registry entry.
"""

from __future__ import annotations

import pickle
import threading
import time

import numpy as np
import pytest

from repro.core.persistence import load_model, save_model
from repro.errors import (
    DeadlineError,
    InjectedFaultError,
    PersistenceError,
    ServingError,
)
from repro.baselines.per_table import PerTableStatsEstimator
from repro.joins.executor import query_cardinality
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.serving import (
    CircuitBreaker,
    EstimationService,
    FaultPlan,
    FaultSpec,
    ModelRegistry,
    ServingConfig,
    faults,
)
from repro.serving.resilience import FALLBACK, PRIMARY, PROBE
from tests.core.test_estimator import correlated_schema
from tests.serving.conftest import FakeModel


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no process-global plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


class _ConstFallback:
    """Minimal degraded-mode estimator: constant answer, call counting."""

    def __init__(self, value: float, fail: bool = False):
        self.value = value
        self.fail = fail
        self.calls = 0

    def estimate(self, query) -> float:
        self.calls += 1
        if self.fail:
            raise RuntimeError("fallback exploded too")
        return self.value


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ServingError, match="exactly one"):
            FaultSpec("s")  # neither probability nor at
        with pytest.raises(ServingError, match="exactly one"):
            FaultSpec("s", probability=0.5, at=(1,))
        with pytest.raises(ServingError, match="within"):
            FaultSpec("s", probability=1.5)
        with pytest.raises(ServingError, match="kind"):
            FaultSpec("s", probability=0.5, kind="meltdown")
        with pytest.raises(ServingError, match="duplicate"):
            FaultPlan(specs=(FaultSpec("s", at=(0,)), FaultSpec("s", at=(1,))))

    def test_plan_pickles_and_compares(self):
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec("a", probability=0.3),
                FaultSpec("b", at=(2, 4), kind="disconnect"),
            ),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_same_seed_reproduces_identical_schedule(self):
        plan = FaultPlan(seed=13, specs=(FaultSpec("x", probability=0.4),))
        first = plan.schedule("x", 200)
        second = plan.schedule("x", 200)
        assert first == second and len(first) > 10
        assert plan.schedule("x", 200, scope="worker-0") != first

    def test_different_seeds_differ(self):
        spec = (FaultSpec("x", probability=0.4),)
        assert FaultPlan(seed=1, specs=spec).schedule("x", 200) != FaultPlan(
            seed=2, specs=spec
        ).schedule("x", 200)


class TestFaultInjector:
    def test_check_agrees_with_preview(self):
        plan = FaultPlan(seed=7, specs=(FaultSpec("s", probability=0.5),))
        injector = faults.FaultInjector(plan)
        fired = []
        for k in range(50):
            try:
                injector.check("s")
            except InjectedFaultError:
                fired.append(k)
        assert fired == injector.preview("s", 50)
        assert injector.stats()["s"] == {"hits": 50, "fires": len(fired)}
        assert injector.log == [("s", k) for k in fired]

    def test_per_site_schedule_survives_interleaving(self):
        """Whether site A's k-th hit fires cannot depend on site B traffic."""
        plan = FaultPlan(
            seed=3,
            specs=(FaultSpec("a", probability=0.5), FaultSpec("b", probability=0.5)),
        )

        def fires(order):
            injector = faults.FaultInjector(plan)
            out = {"a": [], "b": []}
            counts = {"a": 0, "b": 0}
            for site in order:
                k = counts[site]
                counts[site] += 1
                try:
                    injector.check(site)
                except InjectedFaultError:
                    out[site].append(k)
            return out

        interleaved = fires(["a", "b"] * 30)
        sequential = fires(["a"] * 30 + ["b"] * 30)
        assert interleaved == sequential

    def test_at_after_and_max_fires(self):
        plan = FaultPlan(
            specs=(FaultSpec("s", at=(0, 2, 4), after=1, max_fires=1),)
        )
        injector = faults.FaultInjector(plan)
        fired = []
        for k in range(6):
            try:
                injector.check("s")
            except InjectedFaultError:
                fired.append(k)
        assert fired == [2]  # hit 0 skipped by warmup, hit 4 capped away

    def test_unplanned_site_and_empty_default(self):
        assert faults.get_active() is None
        injector = faults.FaultInjector(FaultPlan(specs=(FaultSpec("s", at=(0,)),)))
        assert injector.check("not-in-plan") is None

    def test_injected_context_installs_and_restores(self):
        plan = FaultPlan(specs=(FaultSpec("s", at=(0,)),))
        with faults.injected(plan) as injector:
            assert faults.get_active() is injector
            with pytest.raises(InjectedFaultError, match="injected fault at 's'"):
                injector.check("s")
        assert faults.get_active() is None

    def test_disconnect_kind_returns_spec(self):
        plan = FaultPlan(specs=(FaultSpec("s", at=(0,), kind="disconnect"),))
        injector = faults.FaultInjector(plan)
        spec = injector.check("s")
        assert spec is not None and spec.kind == "disconnect"
        assert injector.check("s") is None  # hit 1 not scheduled

    def test_thread_storm_counts_every_hit_exactly_once(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec("s", probability=0.3),))
        injector = faults.FaultInjector(plan)
        n_threads, per_thread = 8, 50
        fires = [0] * n_threads

        def worker(i):
            for _ in range(per_thread):
                try:
                    injector.check("s")
                except InjectedFaultError:
                    fires[i] += 1

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = injector.stats()["s"]
        assert stats["hits"] == n_threads * per_thread
        assert stats["fires"] == sum(fires)
        assert stats["fires"] == len(injector.preview("s", n_threads * per_thread))


# ----------------------------------------------------------------------
# Circuit breaker state machine (pinned clock)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_k_consecutive_failures(self):
        clock = [0.0]
        b = CircuitBreaker(failures=3, cooldown_s=10.0, clock=lambda: clock[0])
        assert b.state == "closed" and b.allow() == PRIMARY
        b.record_failure()
        b.record_failure()
        b.record_success()  # success resets the consecutive count
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert b.allow() == FALLBACK

    def test_half_open_probe_single_flight(self):
        clock = [0.0]
        b = CircuitBreaker(failures=1, cooldown_s=5.0, clock=lambda: clock[0])
        b.record_failure()
        assert b.allow() == FALLBACK  # still cooling down
        clock[0] = 5.0
        assert b.allow() == PROBE  # cooldown elapsed: one probe
        assert b.state == "half_open"
        assert b.allow() == FALLBACK  # probe in flight: everyone else waits
        b.record_success(probe=True)
        assert b.state == "closed" and b.allow() == PRIMARY

    def test_failed_probe_reopens_and_recools(self):
        clock = [0.0]
        b = CircuitBreaker(failures=1, cooldown_s=5.0, clock=lambda: clock[0])
        b.record_failure()
        clock[0] = 5.0
        assert b.allow() == PROBE
        b.record_failure(probe=True)
        assert b.state == "open"
        assert b.allow() == FALLBACK  # cooldown restarted at the probe failure
        clock[0] = 10.0
        assert b.allow() == PROBE

    def test_stats_shape(self):
        b = CircuitBreaker(failures=1, cooldown_s=1.0)
        b.record_failure()
        stats = b.stats()
        assert stats["state"] == 2 and stats["opens"] == 1
        assert set(stats) >= {"state", "consecutive_failures", "opens",
                              "probes", "fallback_routes"}

    def test_validation(self):
        with pytest.raises(ServingError):
            CircuitBreaker(failures=0)
        with pytest.raises(ServingError):
            CircuitBreaker(cooldown_s=-1.0)


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_fails_before_dispatch(self):
        model = FakeModel(tag=1.0)
        service = EstimationService()
        service.register("m", model)
        query = Query.make(["R"], [])
        future = service.submit(query, deadline=time.monotonic() - 0.01)
        with pytest.raises(DeadlineError, match="deadline expired"):
            future.result(timeout=10)
        assert service.scheduler("m").stats()["deadline_expired"] == 1
        assert model.calls == 0  # cancelled before touching the model
        service.close()

    def test_generous_deadline_answers_normally(self):
        service = EstimationService()
        service.register("m", FakeModel(tag=4.0))
        future = service.submit(
            Query.make(["R"], []), deadline=time.monotonic() + 30.0
        )
        assert future.result(timeout=10) == 4.0
        service.close()

    def test_deadline_expiry_never_cascades_to_fallback(self):
        """DeadlineError is the caller's signal: no breaker hit, no fallback."""
        fallback = _ConstFallback(99.0)
        service = EstimationService(
            config=ServingConfig(breaker_failures=1, breaker_cooldown_s=60.0)
        )
        service.register("m", FakeModel(tag=1.0))
        service.register_fallback("m", fallback)
        future = service.submit(
            Query.make(["R"], []), deadline=time.monotonic() - 0.01
        )
        with pytest.raises(DeadlineError):
            future.result(timeout=10)
        assert fallback.calls == 0
        assert service.breaker("m").state == "closed"
        service.close()


# ----------------------------------------------------------------------
# Degraded-mode cascade through EstimationService
# ----------------------------------------------------------------------
class TestFallbackCascade:
    def test_no_fallback_preserves_error_semantics(self):
        service = EstimationService()
        service.register("m", FakeModel(tag=1.0, fail=True))
        with pytest.raises(RuntimeError, match="exploded"):
            service.submit(Query.make(["R"], []), seed=1).result(timeout=10)
        assert "resilience" not in service.stats()
        service.close()

    def test_primary_failure_answers_degraded(self):
        fallback = _ConstFallback(123.0)
        service = EstimationService(
            config=ServingConfig(breaker_failures=10, breaker_cooldown_s=60.0)
        )
        service.register("m", FakeModel(tag=1.0, fail=True))
        service.register_fallback("m", fallback)
        future = service.submit(Query.make(["R"], []), seed=1)
        assert future.result(timeout=10) == 123.0
        assert future.degraded is True
        stats = service.stats()["resilience"]["m"]
        assert stats["degraded_responses"] == 1
        assert stats["fallback_registered"] == 1
        service.close()

    def test_breaker_opens_and_skips_broken_primary(self):
        model = FakeModel(tag=1.0, fail=True)
        fallback = _ConstFallback(7.0)
        service = EstimationService(
            config=ServingConfig(breaker_failures=2, breaker_cooldown_s=60.0)
        )
        service.register("m", model)
        service.register_fallback("m", fallback)
        query = Query.make(["R"], [])
        for seed in (1, 2):  # two failures open the breaker
            assert service.submit(query, seed=seed).result(timeout=10) == 7.0
        assert service.breaker("m").state == "open"
        calls_before = model.calls
        future = service.submit(query, seed=3)
        assert future.result(timeout=10) == 7.0 and future.degraded
        assert model.calls == calls_before  # open circuit: primary untouched
        assert service.stats()["resilience"]["m"]["state"] == 2
        service.close()

    def test_successful_probe_closes_breaker_after_recovery(self):
        model = FakeModel(tag=5.0, fail=True)
        service = EstimationService(
            config=ServingConfig(breaker_failures=1, breaker_cooldown_s=0.05)
        )
        service.register("m", model)
        service.register_fallback("m", _ConstFallback(7.0))
        query = Query.make(["R"], [])
        assert service.submit(query, seed=1).result(timeout=10) == 7.0
        assert service.breaker("m").state == "open"
        model.fail = False  # the primary heals
        time.sleep(0.1)  # past the cooldown: next submit is the probe
        probe = service.submit(query, seed=2)
        assert probe.result(timeout=10) == 5.0 and not probe.degraded
        assert service.breaker("m").state == "closed"
        healthy = service.submit(query, seed=3)
        assert healthy.result(timeout=10) == 5.0 and not healthy.degraded
        service.close()

    def test_fallback_failure_surfaces_original_error(self):
        service = EstimationService(
            config=ServingConfig(breaker_failures=10, breaker_cooldown_s=60.0)
        )
        service.register("m", FakeModel(tag=1.0, fail=True))
        service.register_fallback("m", _ConstFallback(0.0, fail=True))
        with pytest.raises(RuntimeError, match="model 1.0 exploded"):
            service.submit(Query.make(["R"], []), seed=1).result(timeout=10)
        assert service.stats()["resilience"]["m"]["fallback_errors"] == 1
        service.close()

    def test_default_fallback_is_per_table_stats(self, oracle_engine):
        schema = correlated_schema(n_root=12, seed=4)
        engine = oracle_engine

        class _SchemaEngine:
            """Oracle engine + a .schema attribute for the default fallback."""

            is_fitted = True
            size_bytes = 0

            def __init__(self):
                self.schema = schema

            def estimate_batch(self, queries, **kwargs):
                return engine.estimate_batch(queries, **kwargs)

        service = EstimationService()
        service.register("m", _SchemaEngine())
        service.register_fallback("m")
        assert isinstance(service._fallbacks["m"], PerTableStatsEstimator)
        service.close()

    def test_register_fallback_unknown_model_rejected(self):
        service = EstimationService()
        with pytest.raises(ServingError, match="unknown model"):
            service.register_fallback("ghost", _ConstFallback(1.0))
        service.close()


class TestPerTableStatsFallback:
    def test_single_table_conjunctions_are_exact(self):
        schema = correlated_schema(n_root=40, seed=2)
        estimator = PerTableStatsEstimator(schema)
        queries = [
            Query.make(["R"], [Predicate("R", "year", ">=", 1995)]),
            Query.make(["C1"], [Predicate("C1", "kind", "=", 1)]),
            Query.make(
                ["R"],
                [Predicate("R", "year", ">=", 1995), Predicate("R", "year", "<", 1997)],
            ),
            Query.make(["C2"], []),
        ]
        for query in queries:
            assert estimator.estimate(query) == query_cardinality(schema, query)

    def test_join_estimates_are_positive_and_finite(self):
        schema = correlated_schema(n_root=40, seed=2)
        estimator = PerTableStatsEstimator(schema)
        query = Query.make(["R", "C1"], [Predicate("C1", "kind", "=", 1)])
        batch = estimator.estimate_batch([query, Query.make(["R", "C1", "C2"], [])])
        assert batch.shape == (2,) and np.all(np.isfinite(batch)) and np.all(batch >= 0)


# ----------------------------------------------------------------------
# Seeded fault storm: termination + bitwise purity of non-degraded answers
# ----------------------------------------------------------------------
class TestFaultStorm:
    def test_storm_terminates_with_bitwise_clean_survivors(
        self, oracle_engine, workload
    ):
        schema = correlated_schema(n_root=12, seed=4)
        queries = (workload * 8)[:40]
        seeds = list(range(100, 140))

        reference = EstimationService()
        reference.register("oracle", oracle_engine)
        expected = [
            reference.submit(q, seed=s).result(timeout=30)
            for q, s in zip(queries, seeds)
        ]
        reference.close()

        plan = FaultPlan(
            seed=11, specs=(FaultSpec("scheduler.flush", probability=0.4),)
        )
        service = EstimationService(
            config=ServingConfig(breaker_failures=3, breaker_cooldown_s=0.02)
        )
        service.register("oracle", oracle_engine)
        service.register_fallback("oracle", PerTableStatsEstimator(schema))
        with faults.injected(plan) as injector:
            futures = [
                service.submit(q, seed=s) for q, s in zip(queries, seeds)
            ]
            results = [f.result(timeout=30) for f in futures]  # all terminate
            assert injector.stats()["scheduler.flush"]["fires"] > 0
        degraded = [getattr(f, "degraded", False) for f in futures]
        assert any(degraded), "storm fired but nothing cascaded"
        for hit_fallback, result, clean in zip(degraded, results, expected):
            if not hit_fallback:
                assert result == clean  # bitwise: faults never skew survivors
        stats = service.stats()["resilience"]["oracle"]
        assert stats["degraded_responses"] == sum(degraded)
        service.close()

    def test_registry_load_fault_cascades_not_crashes(self, tiny_trained, tmp_path):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        fallback = _ConstFallback(42.0)
        service = EstimationService(
            config=ServingConfig(breaker_failures=1, breaker_cooldown_s=60.0)
        )
        service.register_path("m", path, schema)
        service.register_fallback("m", fallback)
        plan = FaultPlan(specs=(FaultSpec("registry.load", at=(0,)),))
        query = Query.make(["R"], [])
        with faults.injected(plan):
            broken = service.submit(query, seed=1)
            assert broken.result(timeout=30) == 42.0 and broken.degraded
        service.close()


# ----------------------------------------------------------------------
# Crash-safe persistence + corrupted-artifact recovery
# ----------------------------------------------------------------------
class TestCrashSafePersistence:
    def test_torn_save_leaves_previous_artifact_intact(self, tiny_trained, tmp_path):
        schema, estimator = tiny_trained
        path = tmp_path / "m.npz"
        save_model(estimator, path)
        before = path.read_bytes()
        plan = FaultPlan(specs=(FaultSpec("persistence.save", at=(0,)),))
        with faults.injected(plan):
            with pytest.raises(InjectedFaultError):
                save_model(estimator, path)  # dies between fsync and replace
        assert path.read_bytes() == before  # old artifact byte-identical
        assert not list(tmp_path.glob("*.tmp"))  # temp file cleaned up
        load_model(path, schema)  # still loadable, checksum still good

    def test_checksum_detects_bit_flip_in_params(self, tiny_trained, tmp_path):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        _tamper_param(path)
        with pytest.raises(PersistenceError, match="checksum"):
            load_model(path, schema)

    def test_truncated_artifact_is_clean_persistence_error(
        self, tiny_trained, tmp_path
    ):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.raises(PersistenceError):
            load_model(path, schema)

    def test_garbage_file_is_clean_persistence_error(self, tiny_trained, tmp_path):
        schema, _ = tiny_trained
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00" * 512)
        with pytest.raises(PersistenceError):
            load_model(path, schema)


class TestCorruptedArtifactRecovery:
    def test_registry_entry_survives_corruption_and_repair(
        self, tiny_trained, tmp_path
    ):
        """A corrupt artifact raises cleanly and does NOT poison the entry:
        once the file is repaired, the same registry name loads fine."""
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "m.npz")
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])  # torn download/copy
        registry = ModelRegistry()
        registry.register_path("m", path, schema)
        with pytest.raises(PersistenceError):
            registry.get("m")
        with pytest.raises(PersistenceError):  # still failing, still typed
            registry.get("m")
        path.write_bytes(good)  # artifact repaired in place
        model, version = registry.get_with_version("m")
        assert model.is_fitted and version == 0
        assert registry.loads == 1  # only the successful load counts

    def test_resident_model_keeps_serving_while_sibling_artifact_is_corrupt(
        self, tiny_trained, tmp_path
    ):
        schema, estimator = tiny_trained
        path = save_model(estimator, tmp_path / "broken.npz")
        _tamper_param(path)
        service = EstimationService()
        service.register("live", FakeModel(tag=3.0))
        service.register_path("broken", path, schema)
        query = Query.make(["R"], [])
        with pytest.raises(PersistenceError):
            service.submit(query, model="broken", seed=1).result(timeout=30)
        # The sibling model is completely unaffected by the corrupt entry.
        assert service.submit(query, model="live", seed=1).result(timeout=30) == 3.0
        service.close()


def _tamper_param(path) -> None:
    """Flip bytes inside one parameter array without touching __meta__."""
    import json
    import numpy as np

    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
    assert meta["checksum"]["algorithm"] == "crc32"
    key = next(k for k in sorted(arrays) if k.startswith("param::"))
    flipped = arrays[key].copy()
    flat = flipped.reshape(-1)
    flat[0] = flat[0] + 1.0 if flipped.dtype.kind == "f" else flat[0] ^ 1
    arrays[key] = flipped
    np.savez_compressed(path, **arrays)


# ----------------------------------------------------------------------
# Worker-process plan propagation
# ----------------------------------------------------------------------
class TestWorkerPropagation:
    def test_plan_rides_into_spawned_workers(self):
        service = EstimationService(config=ServingConfig(workers=1))
        service.register("m", FakeModel(tag=5.0))
        plan = FaultPlan(seed=2, specs=(FaultSpec("worker.batch", at=(0,)),))
        query = Query.make(["R"], [])
        with faults.injected(plan):
            first = service.submit(query, seed=1)
            with pytest.raises(InjectedFaultError, match="worker.batch"):
                first.result(timeout=60)
            # Hit 1 is not scheduled: the same worker answers normally.
            assert service.submit(query, seed=2).result(timeout=60) == 5.0
        service.close()

    def test_fault_plan_key_in_payload_tracks_installed_plan(self):
        from repro.serving.workers import WorkerPool

        plan = FaultPlan(seed=9, specs=(FaultSpec("worker.crash", at=(5,), kind="crash"),))
        model = FakeModel(tag=1.0)
        pool = WorkerPool(lambda: (model, 0), name="p", n_workers=1)
        try:
            with faults.injected(plan):
                payload, _ = pool._build_payload(model, 0)
                assert payload["fault_plan"] == plan
            payload, _ = pool._build_payload(model, 0)
            assert payload["fault_plan"] is None
        finally:
            pool.close()
