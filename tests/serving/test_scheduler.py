"""MicroBatchScheduler: coalescing, flush timing, caching, failure semantics."""

import threading
import time

import numpy as np
import pytest

from repro.errors import QueryError, ServingError
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.serving import MicroBatchScheduler
from tests.serving.conftest import FakeModel


def fixed_source(model, version=0):
    return lambda: (model, version)


class TestCoalescing:
    def test_concurrent_submits_share_batches(self):
        model = FakeModel(tag=7.0, delay=0.02)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=64, max_wait_us=5_000, cache_size=0
        ) as scheduler:
            # First request occupies the flusher (20ms model delay); the
            # rest pile up and must coalesce into far fewer batches.
            futures = [scheduler.submit(q)]
            time.sleep(0.005)
            futures += [scheduler.submit(q) for _ in range(15)]
            results = [f.result(timeout=10) for f in futures]
        assert results == [7.0] * 16
        assert model.calls <= 4
        assert scheduler.stats()["mean_batch_size"] > 1.0

    def test_full_batch_flushes_before_deadline(self):
        model = FakeModel(tag=1.0)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=4, max_wait_us=5_000_000, cache_size=0
        ) as scheduler:
            start = time.perf_counter()
            futures = [scheduler.submit(q) for _ in range(4)]
            for f in futures:
                f.result(timeout=10)
            elapsed = time.perf_counter() - start
        # A full batch must not sit out the 5s max-wait window.
        assert elapsed < 2.0

    def test_max_wait_flush_timing(self):
        """A lone request flushes at the max-wait deadline, not at max-batch."""
        model = FakeModel(tag=1.0)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=64, max_wait_us=60_000, cache_size=0
        ) as scheduler:
            start = time.perf_counter()
            scheduler.submit(q).result(timeout=10)
            elapsed = time.perf_counter() - start
        # Must have waited out (at least) the 60ms window, and not hung.
        assert 0.05 <= elapsed < 5.0
        assert model.calls == 1

    def test_done_callback_may_resubmit(self):
        """Futures resolve outside the scheduler lock, so async chaining works."""
        model = FakeModel(tag=2.0)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=4, max_wait_us=1_000, cache_size=0
        ) as scheduler:
            chained = {}
            submitted = threading.Event()

            def chain(_finished):
                chained["future"] = scheduler.submit(q)
                submitted.set()

            scheduler.submit(q).add_done_callback(chain)
            assert submitted.wait(timeout=5)  # no deadlock on re-entry
            assert chained["future"].result(timeout=5) == 2.0

    def test_close_drains_pending_requests(self):
        model = FakeModel(tag=3.0)
        q = Query.make(["T"])
        scheduler = MicroBatchScheduler(
            fixed_source(model), max_batch=64, max_wait_us=1_000_000, cache_size=0
        )
        futures = [scheduler.submit(q) for _ in range(5)]
        scheduler.close()  # long max-wait: close must not wait the window out
        assert [f.result(timeout=1) for f in futures] == [3.0] * 5
        with pytest.raises(ServingError):
            scheduler.submit(q)
        scheduler.close()  # idempotent


class TestFailureSemantics:
    def test_batch_failure_propagates_to_every_future(self):
        model = FakeModel(tag=0.0, fail=True)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=8, max_wait_us=2_000, cache_size=0
        ) as scheduler:
            futures = [scheduler.submit(q) for _ in range(3)]
            for f in futures:
                with pytest.raises(RuntimeError, match="exploded"):
                    f.result(timeout=10)
            # Fail-fast, not fail-forever: the scheduler keeps serving.
            model.fail = False
            assert scheduler.submit(q).result(timeout=10) == 0.0

    def test_short_result_array_fails_batch_instead_of_hanging(self):
        class TruncatingModel(FakeModel):
            def estimate_batch(self, queries, n_samples=None, rngs=None):
                return super().estimate_batch(queries[:1])

        model = TruncatingModel(tag=1.0, delay=0.01)
        q = Query.make(["T"])
        with MicroBatchScheduler(
            fixed_source(model), max_batch=8, max_wait_us=2_000, cache_size=0
        ) as scheduler:
            futures = [scheduler.submit(q) for _ in range(3)]
            for f in futures:
                with pytest.raises(ServingError, match="estimates for"):
                    f.result(timeout=10)

    def test_invalid_query_fails_synchronously(self, oracle_engine):
        bad = Query.make(["R", "NOPE"])
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=4, max_wait_us=1_000
        ) as scheduler:
            with pytest.raises(QueryError):
                scheduler.submit(bad)


class TestOracleEquivalence:
    def test_bitwise_equal_to_sequential_path(self, oracle_engine, workload):
        """Arbitrary coalescing never changes a pinned-seed result by one bit."""
        n = 120
        sequential = [
            oracle_engine.estimate(q, n_samples=n, rng=np.random.default_rng(40 + i))
            for i, q in enumerate(workload)
        ]
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=2, max_wait_us=500,
            cache_size=0, n_samples=n,
        ) as scheduler:
            futures = [
                scheduler.submit(q, seed=40 + i) for i, q in enumerate(workload)
            ]
            coalesced = [f.result(timeout=30) for f in futures]
        assert coalesced == sequential  # bitwise, not approx

    def test_mixed_n_samples_grouped_correctly(self, oracle_engine, workload):
        q = workload[0]
        a = oracle_engine.estimate(q, n_samples=64, rng=np.random.default_rng(9))
        b = oracle_engine.estimate(q, n_samples=128, rng=np.random.default_rng(9))
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=8, max_wait_us=50_000,
            cache_size=0,
        ) as scheduler:
            fa = scheduler.submit(q, seed=9, n_samples=64)
            fb = scheduler.submit(q, seed=9, n_samples=128)
            assert fa.result(timeout=30) == a
            assert fb.result(timeout=30) == b


class TestResultCache:
    def test_repeat_submission_hits_cache(self, oracle_engine, workload):
        q = workload[1]
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=4, max_wait_us=500, n_samples=64
        ) as scheduler:
            first = scheduler.submit(q, seed=5).result(timeout=30)
            batches = scheduler.stats()["batches"]
            again = scheduler.submit(q, seed=5).result(timeout=30)
            assert again == first
            assert scheduler.n_cache_hits == 1
            assert scheduler.stats()["batches"] == batches  # no recompute

    def test_semantically_equal_predicates_share_entry(self, oracle_engine):
        """Plan canonicalization: x>=3 AND x>=5 coalesces with x>=5."""
        loose = Query.make(
            ["R"],
            [Predicate("R", "year", ">=", 1993), Predicate("R", "year", ">=", 1995)],
        )
        tight = Query.make(["R"], [Predicate("R", "year", ">=", 1995)])
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=4, max_wait_us=500, n_samples=64
        ) as scheduler:
            a = scheduler.submit(tight, seed=2).result(timeout=30)
            b = scheduler.submit(loose, seed=2).result(timeout=30)
            assert a == b
            assert scheduler.n_cache_hits == 1

    def test_version_bump_invalidates_cache(self, oracle_engine, workload):
        """A registry hot-swap (new version) must force recomputation."""
        q = workload[2]
        version = {"v": 0}
        source = lambda: (oracle_engine, version["v"])
        with MicroBatchScheduler(
            source, max_batch=4, max_wait_us=500, n_samples=64
        ) as scheduler:
            scheduler.submit(q, seed=3).result(timeout=30)
            scheduler.submit(q, seed=3).result(timeout=30)
            assert scheduler.n_cache_hits == 1
            batches = scheduler.stats()["batches"]
            version["v"] = 1  # simulated update()/hot-swap
            scheduler.submit(q, seed=3).result(timeout=30)
            assert scheduler.n_cache_hits == 1  # miss: stale entry not served
            assert scheduler.stats()["batches"] == batches + 1

    def test_lru_eviction_bounds_cache(self, oracle_engine, workload):
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=8, max_wait_us=500,
            cache_size=2, n_samples=64,
        ) as scheduler:
            for seed in range(5):
                scheduler.submit(workload[0], seed=seed).result(timeout=30)
            assert scheduler.stats()["cache_size"] <= 2

    def test_cache_disabled(self, oracle_engine, workload):
        with MicroBatchScheduler(
            fixed_source(oracle_engine), max_batch=4, max_wait_us=500,
            cache_size=0, n_samples=64,
        ) as scheduler:
            a = scheduler.submit(workload[0], seed=1).result(timeout=30)
            b = scheduler.submit(workload[0], seed=1).result(timeout=30)
            assert a == b  # same pinned stream, recomputed
            assert scheduler.n_cache_hits == 0
