"""Thin setup.py shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this keeps ``pip install -e . --no-use-pep517`` (legacy
``setup.py develop``) working. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
