"""Shared timing helpers for the throughput benches and the CI smoke bench.

Kept free of pytest imports so ``smoke_latency.py`` can run in a bare
environment (CI's smoke job installs only the package). Both the fig7d
throughput addendum and the smoke benchmark measure through these helpers
so their numbers share one methodology.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np


def best_of(fn, rounds: int = 3) -> float:
    """Best wall time of ``fn`` over ``rounds``, after one warm-up call."""
    fn()  # warm caches (plans, allocator) outside the timed rounds
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def median_of(fn, rounds: int = 5) -> float:
    """Median wall time of ``fn`` over ``rounds``, after one warm-up call.

    The compiled-inference gate reports median latency (the paper's fig. 7d
    framing); the median tolerates one noisy round on shared CI runners
    where ``best_of`` would understate and a mean would overstate.
    """
    fn()  # warm caches (plans, compiled kernels) outside the timed rounds
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def measure_serving_paths(
    inference, queries, n_samples: int, rounds: int = 3
) -> Dict[str, float]:
    """Queries/sec of the sequential loop vs ``estimate_batch``.

    Equal ``n_samples`` on both paths; the sequential loop seeds one
    generator per query, mirroring how the equivalence tests pin streams.
    """
    t_seq = best_of(
        lambda: [
            inference.estimate(q, n_samples=n_samples, rng=np.random.default_rng(i))
            for i, q in enumerate(queries)
        ],
        rounds=rounds,
    )
    t_bat = best_of(
        lambda: inference.estimate_batch(
            queries, n_samples=n_samples, rng=np.random.default_rng(0)
        ),
        rounds=rounds,
    )
    return {
        "sequential_qps": len(queries) / t_seq,
        "batched_qps": len(queries) / t_bat,
        "speedup": t_seq / t_bat,
    }
