"""CI smoke benchmark: training-pipeline throughput, loop vs vectorized.

Measures the end-to-end sample-and-tokenize pipeline on a scaled-down
JOB-light schema at the paper-scale batch size (512):

* ``loop``       — per-row :class:`LoopJoinSampler` walk, dict assemble,
                   per-batch ``Layout.encode_batch`` (the correctness
                   oracle / pre-vectorization path);
* ``vectorized`` — ``sample_row_id_matrix`` + ``FusedEncoder`` (one gather
                   per table, no intermediate dict);

plus full training-step throughput (model forward/backward included) on the
single-thread fused path and the multi-worker prefetch pool.

The script verifies two acceptance properties and exits non-zero when they
fail (so CI catches real regressions, not just slow runners):

* pinned-seed NLL trajectories of the fused token path are bitwise
  identical to the sequential dict-batch oracle;
* the vectorized pipeline sustains >= 3x the loop sampler's tuples/sec.

Run:  PYTHONPATH=src python benchmarks/smoke_train_throughput.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys

import numpy as np

from repro.core.encoding import FusedEncoder, Layout
from repro.core.training import train_autoregressive
from repro.joins.counts import JoinCounts
from repro.joins.sampler import (
    FullJoinSampler,
    LoopJoinSampler,
    ThreadedSampler,
    joined_column_specs,
)
from repro.nn.resmade import ResMADE
from repro.workloads import job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

from bench_timing import best_of  # noqa: E402  (benchmarks/ on sys.path)


def pipeline_tuples_per_sec(draw_and_encode, batch_size: int, n_batches: int) -> float:
    """Tuples/sec of a sample->tokens pipeline over ``n_batches`` batches."""
    seconds = best_of(
        lambda: [draw_and_encode() for _ in range(n_batches)], rounds=3
    )
    return n_batches * batch_size / seconds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_smoke_train_throughput.json")
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--n-batches", type=int, default=20)
    parser.add_argument("--train-tuples", type=int, default=40_960)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only; do not fail on the 3x / bitwise-equality checks",
    )
    args = parser.parse_args()

    schema = job_light_schema(ImdbScale(n_title=600))
    counts = JoinCounts(schema)
    specs = joined_column_specs(schema, counts, exclude=DEFAULT_EXCLUDED_COLUMNS)
    vec = FullJoinSampler(schema, counts, specs=specs)
    loop = LoopJoinSampler(schema, counts, specs=specs)
    layout = Layout(schema, counts, specs, factorization_bits=14)
    fused = FusedEncoder(layout, vec)
    batch = args.batch_size

    # --- sample-and-tokenize pipeline throughput -----------------------
    rng_loop = np.random.default_rng(0)
    rng_vec = np.random.default_rng(0)
    loop_tps = pipeline_tuples_per_sec(
        lambda: layout.encode_batch(loop.sample_batch(batch, rng_loop)),
        batch, max(args.n_batches // 4, 2),  # the loop path is slow; fewer reps
    )
    vec_tps = pipeline_tuples_per_sec(
        lambda: fused.encode_row_ids(vec.sample_row_id_matrix(batch, rng_vec)),
        batch, args.n_batches,
    )

    # --- full training-step throughput (model included) ----------------
    def train_once(next_batch, seed=11):
        model = ResMADE(layout.domains, d_emb=8, d_ff=64, n_blocks=2, seed=7)
        return model, train_autoregressive(
            model, layout, next_batch, args.train_tuples, batch,
            learning_rate=5e-3, seed=seed,
        )

    rng_a = np.random.default_rng(1)
    model_a, oracle = train_once(lambda: vec.sample_batch(batch, rng_a))
    rng_b = np.random.default_rng(1)
    model_b, fused_run = train_once(
        lambda: fused.encode_row_ids(vec.sample_row_id_matrix(batch, rng_b))
    )
    losses_match = oracle.losses == fused_run.losses and all(
        np.array_equal(pa.value, pb.value)
        for pa, pb in zip(model_a.parameters(), model_b.parameters())
    )

    with ThreadedSampler(
        vec, batch, n_threads=2, seed=3, encode=fused.encode_row_ids
    ) as pool:
        _, pool_run = train_once(pool.get_batch)

    report = {
        "bench": "smoke_train_throughput",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "batch_size": batch,
        "loop_pipeline_tuples_per_sec": round(loop_tps, 1),
        "vectorized_pipeline_tuples_per_sec": round(vec_tps, 1),
        "sampling_speedup": round(vec_tps / loop_tps, 2),
        "train_tuples_per_sec": round(fused_run.tuples_per_second, 1),
        "pool_train_tuples_per_sec": round(pool_run.tuples_per_second, 1),
        "losses_bitwise_match": bool(losses_match),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    if not args.no_check:
        failures = []
        if not losses_match:
            failures.append(
                "fused token path diverged from the sequential dict-batch oracle"
            )
        if vec_tps < 3.0 * loop_tps:
            failures.append(
                f"vectorized pipeline only {vec_tps / loop_tps:.2f}x the loop "
                "sampler (need >= 3x)"
            )
        if failures:
            print("FAIL: " + "; ".join(failures), file=sys.stderr)
            sys.exit(1)
        print(f"OK: {vec_tps / loop_tps:.1f}x loop sampler, losses bitwise-identical")


if __name__ == "__main__":
    main()
