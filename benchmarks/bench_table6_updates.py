"""Table 6: update strategies under partition appends.

Paper (JOB-light, p95 across 5 ingested partitions):
    stale:        2.82  1848  1e5  1e4  1e4
    fast update:  2.82  5.39  12.84 12.85 14.3   (~3 s/update)
    retrain:      2.82  5.87  6.08  7.53  6.43   (~3 min/update)

Shape: the stale model degrades sharply after ingests; fast incremental
updates recover most of the accuracy at a fraction of the retraining cost.
"""

from repro.eval.updates import partition_by_year, run_update_experiment
from repro.workloads import job_light_queries

from conftest import base_config, write_result


def test_table6_update_strategies(light_env, benchmark):
    schema = light_env.schema
    snapshots = partition_by_year(schema, n_partitions=5)
    # Queries are generated against the FULL data (the final snapshot) and
    # re-labelled with exact truths per snapshot inside the experiment.
    queries = job_light_queries(schema, n=30, counts=light_env.counts)
    config = base_config(train_tuples=300_000, progressive_samples=256, seed=7)

    def run():
        return run_update_experiment(
            snapshots, queries, config, fast_fraction=0.02
        )

    experiment = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table6_updates",
        "Table 6: update strategies (paper: stale p95 blows up to 1e4-1e5; "
        "fast update stays ~13x; retrain best)\n" + experiment.format(),
    )

    stale = experiment.row("stale")
    fast = experiment.row("fast update")
    retrain = experiment.row("retrain")
    # Stale degrades after ingests; fast update recovers most accuracy.
    assert stale[-1].p95 > fast[-1].p95
    assert fast[-1].p95 < stale[-1].p95
    # Retrain is at least as accurate as stale at the end.
    assert retrain[-1].p95 <= stale[-1].p95
    # Fast updates cost far less time than retraining.
    assert sum(c.update_seconds for c in fast[1:]) < sum(
        c.update_seconds for c in retrain[1:]
    )
