"""Figure 7a: accuracy (p99 q-error) vs number of tuples trained.

Paper: 2-3M tuples out of a 2e12-tuple full join (0.001%) already reach
best-in-class accuracy; more helps with diminishing returns. At our scale we
train in increments and assert the p99 improves substantially from the first
checkpoint to the last, with the last two checkpoints close (diminishing
returns).
"""


from repro.core.estimator import NeuroCard
from repro.eval.harness import evaluate_estimator

from conftest import base_config, write_result

CHECKPOINTS = 5
TUPLES_PER_CHECKPOINT = 120_000


def test_fig7a_accuracy_vs_tuples(light_env, benchmark):
    schema = light_env.schema
    queries = light_env.queries["ranges"][:120]
    truths = light_env.truths["ranges"][:120]

    def run():
        estimator = NeuroCard(
            schema, base_config(train_tuples=TUPLES_PER_CHECKPOINT, seed=11)
        ).fit()
        series = []
        for step in range(1, CHECKPOINTS + 1):
            if step > 1:
                estimator.update(schema, train_tuples=TUPLES_PER_CHECKPOINT)
            res = evaluate_estimator(f"nc@{step}", estimator, queries, truths)
            summary = res.summary()
            series.append((step * TUPLES_PER_CHECKPOINT, summary.p99, summary.median))
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Figure 7a: accuracy vs tuples trained (paper: ~2-3M tuples suffice, "
        "0.001% of the full join; diminishing returns after)",
        f"{'tuples':>9} {'p99':>9} {'median':>8}",
    ]
    for tuples, p99, median in series:
        lines.append(f"{tuples:>9} {p99:>9.1f} {median:>8.2f}")
    frac = series[-1][0] / light_env.counts.full_join_size
    lines.append(
        f"(training stream = {frac:.2e} of the full join; the paper's 0.001% "
        "figure needs the 2e12-row full join of real IMDB — at our scale the "
        "full join is small enough that samples repeat, which only helps)"
    )
    write_result("fig7a_tuples", "\n".join(lines))

    p99s = [p for _, p, _ in series]
    medians = [m for _, _, m in series]
    # Accuracy improves with more tuples...
    assert p99s[-1] <= p99s[0]
    assert medians[-1] <= medians[0]
    # ...with diminishing returns at the end (last two within 2.5x).
    assert p99s[-1] <= p99s[-2] * 2.5
