"""Cascade routing benchmark: latency-budgeted tiers vs NeuroCard-only.

Serves the deterministic fp64 tabular oracle engine twice through the
full stack — once NeuroCard-only (every request micro-batched through
the scheduler) and once behind the estimator cascade
(:class:`repro.serving.cascade.EstimatorCascade`: per-table stats →
DeepDB-style SPN → neural) calibrated on a held-out workload from
:func:`repro.eval.calibration.calibration_workload`. The workload is
easy-heavy (80% single-table), which is exactly where the cascade's
contract pays: cheap tiers answer inline when their calibrated q-error
bound fits ``default_max_q_error``, so only the hard tail reaches the
scheduler. Reports and gates (``--no-check`` to report only):

* **p50 speedup** — closed-loop p50 latency of the cascade run is
  >= 3x better than the NeuroCard-only run on the same requests;
* **accuracy contract holds** — the cascade's p95 q-error is within
  10% of NeuroCard-only (cheap tiers only answer inside their
  calibrated bound, so routing must not cost accuracy);
* **cheap tiers stay honest** — p95 q-error over queries answered
  below the neural tier is <= 1.5 (per-tier accuracy gate);
* **bounded escalation** — at most 35% of the easy-heavy workload
  escalates to the neural tier;
* **escalated answers are bitwise clean** — every query the cascade
  escalates reproduces the NeuroCard-only run's fp64 answer exactly
  (same pinned per-request seeds, same scheduler path);
* **calibration persistence round-trips** — the calibration is saved
  with :meth:`CascadeCalibration.save` and re-loaded by
  ``EstimationService.enable_cascade`` via ``cascade.calibration_path``
  without loss.

Run:  PYTHONPATH=src python benchmarks/bench_cascade.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.baselines.per_table import PerTableStatsEstimator
from repro.baselines.spn import DeepDBEstimator
from repro.eval.calibration import calibration_workload
from repro.eval.harness import true_cardinalities
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    CascadeConfig,
    EstimationService,
    EstimatorCascade,
    ServingConfig,
)

# The tabular oracle lives with the tests (numpy-only, no pytest import);
# the CI smoke job runs from the repo root with only the package installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.core.oracle import OracleModel  # noqa: E402


def build_oracle_engine():
    """Two-table R |><| C oracle engine + schema (same shape as bench_http_api)."""
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
    from repro.core.progressive import ProgressiveSampler

    engine = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
    return schema, engine


def q_error(estimate: float, truth: float) -> float:
    estimate = max(float(estimate), 1.0)
    truth = max(float(truth), 1.0)
    return max(estimate / truth, truth / estimate)


def serving_config(args, cascade_cfg=None) -> ServingConfig:
    return ServingConfig(
        max_batch=16,
        max_wait_us=1000,
        cache_size=0,
        n_samples=args.n_samples,
        cascade=cascade_cfg,
    )


def run_closed_loop(service, requests, clients):
    """Drain ``requests`` through ``clients`` threads; per-request latency."""
    results: dict = {}
    tiers: dict = {}
    latencies: dict = {}
    errors: dict = {}
    lock = threading.Lock()
    next_idx = [0]

    def worker():
        while True:
            with lock:
                if next_idx[0] >= len(requests):
                    return
                i = next_idx[0]
                next_idx[0] += 1
            query, seed = requests[i]
            t0 = time.perf_counter()
            try:
                future = service.submit(query, seed=seed)
                value = future.result(timeout=120)
            except Exception as exc:  # noqa: BLE001 - tallied, fails the gate
                with lock:
                    errors[i] = type(exc).__name__
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                results[i] = value
                tiers[i] = getattr(future, "tier", None)
                latencies[i] = elapsed
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return {
        "results": results,
        "tiers": tiers,
        "latencies": latencies,
        "errors": errors,
        "wall_s": wall,
    }


def percentile_ms(latencies, q: float) -> float:
    if not latencies:
        return float("nan")
    return float(np.percentile(np.array(sorted(latencies)), q) * 1000.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_cascade.json")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--n-samples", type=int, default=200)
    parser.add_argument("--calibration-queries", type=int, default=160)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report without enforcing the acceptance gates",
    )
    args = parser.parse_args()

    schema, engine = build_oracle_engine()

    print(f"calibration: {args.calibration_queries} held-out queries...")
    calib_queries = calibration_workload(
        schema, n_queries=args.calibration_queries, easy_fraction=0.5, seed=21
    )
    calib_truths = true_cardinalities(schema, calib_queries)

    # Serving traffic is disjoint from calibration (different seed) and
    # easy-heavy: 80% single-table, the shape cheap tiers should win.
    serve_queries = calibration_workload(
        schema, n_queries=args.requests, easy_fraction=0.8, seed=22
    )
    serve_truths = true_cardinalities(schema, serve_queries)
    requests = [(q, 1000 + i) for i, q in enumerate(serve_queries)]

    # Tier estimators are built once and shared by the offline calibration
    # and the serving run (the per-table tier is training-free; DeepDB
    # fits its SPN-style approximation from join samples).
    per_table = PerTableStatsEstimator(schema)
    deepdb = DeepDBEstimator(schema)

    offline = EstimatorCascade(schema, default_max_q_error=1.2)
    offline.register("per_table", per_table)
    offline.register("deepdb", deepdb)
    offline.register("neural", engine, neural=True)
    calibration = offline.calibrate(calib_queries, calib_truths)

    with tempfile.TemporaryDirectory() as tmp:
        calib_path = Path(tmp) / "cascade_calibration.json"
        calibration.save(calib_path)

        cascade_cfg = CascadeConfig(
            tiers=("per_table", "deepdb", "neural"),
            calibration_path=str(calib_path),
            default_max_q_error=1.2,
        )

        print(f"NeuroCard-only run: {args.requests} requests, "
              f"{args.clients} clients...")
        with EstimationService(config=serving_config(args)) as service:
            service.register("oracle", engine)
            service.estimate(requests[0][0], seed=999_983)  # warm the scheduler
            reference = run_closed_loop(service, requests, args.clients)

        print("cascade run (per_table -> deepdb -> neural)...")
        with EstimationService(
            config=serving_config(args, cascade_cfg)
        ) as service:
            service.register("oracle", engine)
            cascade = service.enable_cascade(
                estimators={"per_table": per_table, "deepdb": deepdb}
            )
            roundtrip_ok = (
                cascade.calibration is not None
                and cascade.calibration.to_dict() == calibration.to_dict()
            )
            service.estimate(requests[0][0], seed=999_983)  # warm the scheduler
            routed = run_closed_loop(service, requests, args.clients)
            cascade_stats = cascade.stats()

    n = len(requests)
    all_answered = (
        not reference["errors"] and not routed["errors"]
        and len(reference["results"]) == n and len(routed["results"]) == n
    )

    p50_neural_ms = percentile_ms(list(reference["latencies"].values()), 50.0)
    p50_cascade_ms = percentile_ms(list(routed["latencies"].values()), 50.0)
    p50_speedup = p50_neural_ms / p50_cascade_ms if p50_cascade_ms else float("inf")

    qerr_neural = [
        q_error(reference["results"][i], serve_truths[i])
        for i in sorted(reference["results"])
    ]
    qerr_cascade = [
        q_error(routed["results"][i], serve_truths[i])
        for i in sorted(routed["results"])
    ]
    p95_qerror_neural = float(np.percentile(qerr_neural, 95.0))
    p95_qerror_cascade = float(np.percentile(qerr_cascade, 95.0))
    p95_qerror_ratio = p95_qerror_cascade / p95_qerror_neural

    # The warm-up estimate() is routed too, so normalize counts over the
    # measured requests only (tiers recorded per request index).
    tier_counts: dict = {}
    for tier in routed["tiers"].values():
        tier_counts[tier or "neural"] = tier_counts.get(tier or "neural", 0) + 1
    escalated = [i for i, t in routed["tiers"].items() if t == "neural"]
    escalation_rate = len(escalated) / n
    cheap_qerrs = [
        q_error(routed["results"][i], serve_truths[i])
        for i, t in routed["tiers"].items()
        if t is not None and t != "neural"
    ]
    cheap_tier_p95_qerror = (
        float(np.percentile(cheap_qerrs, 95.0)) if cheap_qerrs else 1.0
    )
    escalated_bitwise_match = all(
        routed["results"][i] == reference["results"][i] for i in escalated
    )
    qps = n / routed["wall_s"]

    report = {
        "bench": "cascade",
        "python": platform.python_version(),
        "requests": n,
        "clients": args.clients,
        "n_samples": args.n_samples,
        "calibration_queries": args.calibration_queries,
        "p50_neural_ms": round(p50_neural_ms, 3),
        "p50_cascade_ms": round(p50_cascade_ms, 3),
        "p50_speedup": round(p50_speedup, 2),
        "p95_qerror_neural": round(p95_qerror_neural, 4),
        "p95_qerror_cascade": round(p95_qerror_cascade, 4),
        "p95_qerror_ratio": round(p95_qerror_ratio, 4),
        "cheap_tier_p95_qerror": round(cheap_tier_p95_qerror, 4),
        "escalation_rate": round(escalation_rate, 4),
        "tier_counts": tier_counts,
        "escalated_bitwise_match": int(escalated_bitwise_match),
        "calibration_roundtrip_ok": int(bool(roundtrip_ok)),
        "all_answered": int(all_answered),
        "qps": round(qps, 1),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    if args.no_check:
        return
    failures = []
    if not all_answered:
        failures.append(
            f"unanswered requests (reference errors: {reference['errors']}, "
            f"cascade errors: {routed['errors']})"
        )
    if p50_speedup < 3.0:
        failures.append(
            f"p50 speedup {p50_speedup:.2f}x < 3x "
            f"({p50_neural_ms:.3f}ms -> {p50_cascade_ms:.3f}ms)"
        )
    if p95_qerror_ratio > 1.10:
        failures.append(
            f"cascade p95 q-error {p95_qerror_cascade:.4f} is more than 10% "
            f"worse than NeuroCard-only {p95_qerror_neural:.4f}"
        )
    if cheap_tier_p95_qerror > 1.5:
        failures.append(
            f"cheap-tier p95 q-error {cheap_tier_p95_qerror:.4f} > 1.5"
        )
    if escalation_rate > 0.35:
        failures.append(
            f"escalation rate {escalation_rate:.4f} > 0.35 on an "
            f"easy-heavy workload (tiers: {tier_counts})"
        )
    if not escalated_bitwise_match:
        failures.append(
            "escalated answers differ from the NeuroCard-only reference"
        )
    if not roundtrip_ok:
        failures.append("calibration save/load round-trip lost data")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print(
        f"cascade OK: p50 {p50_neural_ms:.2f}ms -> {p50_cascade_ms:.2f}ms "
        f"({p50_speedup:.1f}x), p95 q-error ratio {p95_qerror_ratio:.3f}, "
        f"escalation {escalation_rate:.2%}, tiers {tier_counts}, "
        f"stats {cascade_stats['escalations']}/{cascade_stats['routed']} escalated"
    )


if __name__ == "__main__":
    main()
