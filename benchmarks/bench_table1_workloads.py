"""Table 1: workload statistics (tables, full-join rows, cols, max domain).

Paper values (real IMDB):
    JOB-light          6   2e12    8   235K
    JOB-light-ranges   6   2e12   13   134K
    JOB-M             16   1e13   16   2.7M

Ours are scaled-down synthetic equivalents; the assertions check the
*shape*: JOB-M has more tables, a much larger full join, and a larger
maximum domain than JOB-light.
"""

from repro.workloads import workload_stats

from conftest import write_result


def test_table1_workload_stats(light_env, jobm_env, benchmark):
    def compute():
        return (
            workload_stats("JOB-light", light_env.schema, light_env.counts),
            workload_stats("JOB-M", jobm_env.schema, jobm_env.counts),
        )

    light, jobm = benchmark.pedantic(compute, rounds=1, iterations=1)

    header = f"{'Workload':<18} {'Tables':>6} {'Rows(full join)':>14} {'Cols':>5} {'Dom.':>8}"
    lines = [
        "Table 1: workloads (paper: JOB-light 6 tables/2e12 rows; JOB-M 16 tables/1e13 rows)",
        header,
        "-" * len(header),
        light.row(),
        jobm.row(),
    ]
    write_result("table1_workloads", "\n".join(lines))

    assert light.n_tables == 6
    assert jobm.n_tables == 16
    assert jobm.full_join_rows > light.full_join_rows
    assert jobm.max_domain >= light.max_domain
    # The full join dwarfs the base data (the paper's motivation for
    # sampling instead of materializing).
    base_rows = sum(t.n_rows for t in light_env.schema.tables.values())
    assert light.full_join_rows > 10 * base_rows
