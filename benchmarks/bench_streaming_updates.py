"""CI freshness benchmark: serve while ingesting, refresh in the background.

Converts the paper's §7.6 offline update experiment into a closed serving
loop: a tiny-config NeuroCard trained on partition 1 of the year-partitioned
JOB-light split serves concurrent clients while partitions 2..N stream in
through a :class:`repro.serving.StreamingIngestor`; a
:class:`BackgroundRefresher` applies the paper's *fast* strategy (~1% of
the training budget) after every ingest, hot-swapping refreshed models
behind the scheduler. Reports steady-state QPS, QPS during refresh windows,
refresh latency, and the post-refresh q-error on the newest snapshot
against three offline references (stale / fast / from-scratch retrain
oracle) computed with the same :mod:`repro.core.refresh` strategy
functions. Writes a ``BENCH_streaming_updates.json`` artifact gated by
``check_regression.py --only streaming_updates``.

The script verifies four acceptance properties and exits non-zero when
they fail (``--no-check`` to report only):

* serving sustains >= 70% of steady-state QPS while a background refresh
  is training and swapping;
* the served model after the final refresh reaches the offline *fast*
  strategy's median q-error on the newest snapshot (a 1.3x + 0.2 envelope
  absorbs the sampling noise of independently drawn refresh batches — the
  live stream appends rows where the offline snapshots sort them by year,
  so the two runs train on differently-ordered but identically-distributed
  data);
* every refresh succeeded and left the served model at the newest data
  version;
* no request ever observes a torn model: under pinned per-query seeds on
  the deterministic tabular oracle, every result returned while another
  thread hot-swaps between the pre- and post-append models is **bitwise**
  one of the two version-consistent answers.

Run:  PYTHONPATH=src python benchmarks/bench_streaming_updates.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig, clone_estimator, full_retrain
from repro.core.progressive import ProgressiveSampler
from repro.core.refresh import fast_refresh
from repro.eval.harness import true_cardinalities
from repro.eval.metrics import q_error
from repro.eval.updates import partition_stream
from repro.joins.counts import JoinCounts
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    BackgroundRefresher,
    MicroBatchScheduler,
    ModelRegistry,
    RefreshPolicy,
    StreamingIngestor,
)
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

# The tabular oracle lives with the tests (numpy-only, no pytest import);
# the CI smoke job runs from the repo root with only the package installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.core.oracle import OracleModel  # noqa: E402


def tiny_config(n_samples: int) -> NeuroCardConfig:
    return NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=40_000, learning_rate=5e-3,
        progressive_samples=n_samples, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )


def median_qerror(estimator, queries, truths, seed=1234) -> float:
    estimates = estimator.estimate_batch(
        queries, rng=np.random.default_rng(seed)
    )
    return float(np.median([q_error(e, t) for e, t in zip(estimates, truths)]))


def run_live_phase(estimator, snapshots, deltas, queries, args):
    """Serve closed-loop clients while ingesting + refreshing; measure QPS."""
    registry = ModelRegistry()
    registry.register("live", estimator)
    ingestor = StreamingIngestor(snapshots[0])
    refresher = BackgroundRefresher(
        registry, "live", ingestor,
        policy=RefreshPolicy(
            drift_threshold=None,
            ingest_threshold=1e-9,        # refresh after every ingest
            retrain_drift_threshold=2.0,  # always the paper's fast strategy
            fast_fraction=args.fast_fraction,
        ),
        poll_interval=0.02,
    ).start()
    scheduler = MicroBatchScheduler(
        lambda: registry.get_with_version("live"),
        max_batch=args.max_batch, max_wait_us=args.max_wait_us,
        cache_size=0, n_samples=args.n_samples,
    )

    completions = []  # (monotonic completion time,) per request
    lock = threading.Lock()
    stop = threading.Event()

    def client(cid: int) -> None:
        rng = np.random.default_rng(10_000 + cid)
        local = []
        i = 0
        while not stop.is_set():
            query = queries[int(rng.integers(0, len(queries)))]
            scheduler.submit(query, seed=cid * 1_000_003 + i).result()
            local.append(time.monotonic())
            i += 1
        with lock:
            completions.extend(local)

    clients = [
        threading.Thread(target=client, args=(cid,)) for cid in range(args.clients)
    ]
    serve_start = time.monotonic()
    for t in clients:
        t.start()
    try:
        time.sleep(args.warm_seconds)  # steady-state before the first ingest
        for delta in deltas[1:]:
            version = ingestor.ingest_many(delta)
            deadline = time.monotonic() + 120
            while (
                refresher.stats()["last_data_version"] < version
                and refresher.last_error is None
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            if refresher.last_error is not None:
                break
        time.sleep(args.warm_seconds)  # steady-state after the last refresh
    finally:
        stop.set()
        for t in clients:
            t.join()
        refresher.close()
        scheduler.close()
    serve_end = time.monotonic()

    windows = [
        (e.started_at, e.finished_at) for e in refresher.history if e.ok
    ]
    times = np.array(sorted(completions))
    in_window = np.zeros(len(times), dtype=bool)
    window_seconds = 0.0
    for lo, hi in windows:
        in_window |= (times >= lo) & (times <= hi)
        window_seconds += hi - lo
    steady_seconds = max((serve_end - serve_start) - window_seconds, 1e-9)
    steady_qps = float((~in_window).sum() / steady_seconds)
    refresh_qps = float(in_window.sum() / max(window_seconds, 1e-9))
    return {
        "registry": registry,
        "refresher": refresher,
        "ingestor": ingestor,
        "steady_qps": steady_qps,
        "refresh_qps": refresh_qps,
        "qps_ratio_under_refresh": refresh_qps / max(steady_qps, 1e-9),
        "refresh_seconds": [e.seconds for e in refresher.history if e.ok],
        "n_refreshes": sum(e.ok for e in refresher.history),
        "n_requests": len(times),
        "window_seconds": window_seconds,
    }


def torn_read_check(n_samples: int = 128, rounds: int = 40) -> bool:
    """Bitwise no-torn-reads proof on the composition-invariant oracle.

    Pre/post-append expectations are computed sequentially; while a thread
    hot-swaps between the two versions mid-stream, every concurrently
    served pinned-seed result must equal exactly one of them bitwise.
    """
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    old_schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    ingestor = StreamingIngestor(old_schema)
    # Appended rows draw from values already in the dictionaries (the
    # strict shared-code-space contract).
    rids = sorted({r for r, _ in child_rows})
    kinds = sorted({k for _, k in child_rows})
    ingestor.ingest_rows(
        "C",
        {
            "rid": [rids[int(i)] for i in rng.integers(0, len(rids), 30)],
            "kind": [kinds[int(j)] for j in rng.integers(0, len(kinds), 30)],
        },
    )
    new_schema, _ = ingestor.snapshot()

    def engine(schema):
        oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
        return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)

    old_engine, new_engine = engine(old_schema), engine(new_schema)
    queries = [
        Query.make(["R"], [Predicate("R", "year", ">=", 1994)]),
        Query.make(["R", "C"], [Predicate("C", "kind", "IN", (0, 2, 4))]),
        Query.make(["R", "C"], [Predicate("R", "year", "<", 1993)]),
        Query.make(["C"], [Predicate("C", "kind", "=", 1)]),
        Query.make(["R", "C"], []),
    ]
    expected = {}
    for i, q in enumerate(queries):
        expected[i] = {
            old_engine.estimate(q, n_samples=n_samples,
                                rng=np.random.default_rng(100 + i)),
            new_engine.estimate(q, n_samples=n_samples,
                                rng=np.random.default_rng(100 + i)),
        }

    holder = {"model": old_engine, "version": 0}
    stop = threading.Event()

    def swapper():
        while not stop.is_set():
            holder["model"], holder["version"] = new_engine, 1
            time.sleep(0.0004)
            holder["model"], holder["version"] = old_engine, 0
            time.sleep(0.0004)

    ok = True
    with MicroBatchScheduler(
        lambda: (holder["model"], holder["version"]),
        max_batch=3, max_wait_us=300, cache_size=0, n_samples=n_samples,
    ) as scheduler:
        flipper = threading.Thread(target=swapper)
        flipper.start()
        try:
            for _ in range(rounds):
                futures = [
                    (i, scheduler.submit(q, seed=100 + i))
                    for i, q in enumerate(queries)
                ]
                for i, future in futures:
                    if future.result() not in expected[i]:
                        ok = False
        finally:
            stop.set()
            flipper.join()
    return ok


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_streaming_updates.json")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--n-title", type=int, default=400)
    parser.add_argument("--n-partitions", type=int, default=4)
    parser.add_argument("--n-queries", type=int, default=48)
    parser.add_argument("--n-samples", type=int, default=128)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-us", type=int, default=2000)
    parser.add_argument(
        "--fast-fraction", type=float, default=0.1,
        help="incremental budget per refresh, as a fraction of train_tuples. "
        "The paper's fast strategy uses ~1%%, which at full IMDb scale is "
        "minutes of training; at this smoke scale 1%% is a single gradient "
        "step, so the default uses 10%% to make the refresh window long "
        "enough to measure serving QPS during it (offline and live use the "
        "same fraction, so the q-error comparison stays apples-to-apples)",
    )
    parser.add_argument(
        "--warm-seconds", type=float, default=1.5,
        help="steady-state serving window before/after the ingest stream",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only; do not fail the acceptance gates",
    )
    args = parser.parse_args()

    full = job_light_schema(ImdbScale(n_title=args.n_title))
    snapshots, deltas = partition_stream(full, n_partitions=args.n_partitions)
    final = snapshots[-1]
    counts_final = JoinCounts(final)
    queries = job_light_ranges_queries(final, n=args.n_queries, counts=counts_final)
    truths = true_cardinalities(final, queries, counts_final)
    config = tiny_config(args.n_samples)

    # Offline §7.6 references, via the shared repro.core.refresh strategies.
    start = time.perf_counter()
    stale = NeuroCard(snapshots[0], config).fit()
    train_seconds = time.perf_counter() - start
    stale_p50 = median_qerror(stale, queries, truths)

    offline_fast = clone_estimator(stale)
    offline_refresh_seconds = []
    for k in range(1, len(snapshots)):
        outcome = fast_refresh(
            offline_fast, snapshots[k],
            fraction=args.fast_fraction, data_version=k,
        )
        offline_refresh_seconds.append(outcome.seconds)
    offline_fast_p50 = median_qerror(offline_fast, queries, truths)

    oracle_outcome = full_retrain(final, config, data_version=len(snapshots) - 1)
    oracle_retrain_p50 = median_qerror(oracle_outcome.estimator, queries, truths)

    # Live phase: serve while ingesting partitions 2..N, refreshing behind
    # the scheduler.
    live = run_live_phase(clone_estimator(stale), snapshots, deltas, queries, args)
    served = live["registry"].get("live")
    post_refresh_p50 = median_qerror(served, queries, truths)
    refreshes_ok = (
        live["refresher"].last_error is None
        and live["n_refreshes"] == len(deltas) - 1
        and served.data_version == live["ingestor"].version
    )

    bitwise = torn_read_check(n_samples=args.n_samples)

    qerror_envelope = offline_fast_p50 * 1.3 + 0.2
    qerror_ok = post_refresh_p50 <= qerror_envelope
    report = {
        "bench": "streaming_updates",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "train_seconds": round(train_seconds, 2),
        "clients": args.clients,
        "n_partitions": args.n_partitions,
        "n_queries": len(queries),
        "n_samples": args.n_samples,
        "fast_fraction": args.fast_fraction,
        "n_requests": live["n_requests"],
        "steady_qps": round(live["steady_qps"], 2),
        "refresh_qps": round(live["refresh_qps"], 2),
        "qps_ratio_under_refresh": round(live["qps_ratio_under_refresh"], 3),
        "n_refreshes": live["n_refreshes"],
        "refresh_seconds_mean": round(
            float(np.mean(live["refresh_seconds"])), 3
        ) if live["refresh_seconds"] else 0.0,
        "refresh_window_seconds": round(live["window_seconds"], 3),
        "offline_refresh_seconds_mean": round(
            float(np.mean(offline_refresh_seconds)), 3
        ),
        "stale_p50_qerror": round(stale_p50, 3),
        "offline_fast_p50_qerror": round(offline_fast_p50, 3),
        "oracle_retrain_p50_qerror": round(oracle_retrain_p50, 3),
        "post_refresh_p50_qerror": round(post_refresh_p50, 3),
        "post_refresh_qerror_ok": int(qerror_ok),
        "refreshes_ok": int(refreshes_ok),
        "no_torn_reads": int(bitwise),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    if args.no_check:
        return
    failures = []
    if live["qps_ratio_under_refresh"] < 0.7:
        failures.append(
            f"QPS under refresh dropped to "
            f"{live['qps_ratio_under_refresh']:.0%} of steady state (< 70%)"
        )
    if not qerror_ok:
        failures.append(
            f"post-refresh median q-error {post_refresh_p50:.3f} exceeds the "
            f"offline fast strategy's envelope {qerror_envelope:.3f}"
        )
    if not refreshes_ok:
        failures.append(
            f"refresh trajectory incomplete: {live['n_refreshes']} ok "
            f"refreshes, last_error={live['refresher'].last_error!r}, served "
            f"data_version={served.data_version} vs "
            f"ingested {live['ingestor'].version}"
        )
    if not bitwise:
        failures.append("a request observed a torn model (bitwise oracle check)")
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    print(
        f"checks passed: {live['qps_ratio_under_refresh']:.0%} QPS under "
        f"refresh, post-refresh p50 {post_refresh_p50:.2f} <= envelope "
        f"{qerror_envelope:.2f} (offline fast {offline_fast_p50:.2f}, stale "
        f"{stale_p50:.2f}, retrain oracle {oracle_retrain_p50:.2f}), "
        f"{live['n_refreshes']} refreshes ok, no torn reads"
    )


if __name__ == "__main__":
    main()
