"""Table 4: JOB-M (16 tables, multi-key joins).

Paper:
    Postgres   120KB   174    1e4   8e4   1e5
    IBJS       -       61.1   3e5   4e6   4e6
    NeuroCard  27.3MB  3.2    283   1297  1e4

MSCN and DeepDB are excluded exactly as in the paper (unsupported filters /
intractable training on 16 tables). Shape: NeuroCard >10x better across the
board; column factorization keeps the model compact despite the
high-cardinality columns.
"""

from repro.baselines import IBJSEstimator, PostgresEstimator
from repro.core.estimator import NeuroCard
from repro.eval.harness import evaluate_estimator, format_report

from conftest import base_config, write_result

PAPER_ROWS = {
    "Postgres": "  174.00    10000.0    80000.0   100000.0",
    "IBJS": "   61.10   300000.0  4000000.0  4000000.0",
    "NeuroCard": "    3.20      283.0     1297.0    10000.0",
}


def test_table4_job_m(jobm_env, benchmark):
    queries = jobm_env.queries["job-m"]
    truths = jobm_env.truths["job-m"]
    postgres = PostgresEstimator(jobm_env.schema)
    ibjs = IBJSEstimator(jobm_env.schema, jobm_env.counts, max_samples=150, seed=0)
    neurocard = NeuroCard(
        jobm_env.schema, base_config(train_tuples=180_000, progressive_samples=256)
    ).fit()

    def run():
        return [
            evaluate_estimator("Postgres", postgres, queries, truths),
            evaluate_estimator("IBJS", ibjs, queries, truths),
            evaluate_estimator("NeuroCard", neurocard, queries, truths),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table4_jobm",
        format_report("Table 4: JOB-M estimation errors", results, PAPER_ROWS),
    )

    by_name = {r.name: r.summary() for r in results}
    nc = by_name["NeuroCard"]
    for other in ("Postgres", "IBJS"):
        assert nc.median <= by_name[other].median
        assert nc.p99 <= by_name[other].p99
        assert nc.maximum <= by_name[other].maximum
    # Factorization keeps the 16-table model compact.
    assert neurocard.size_mb < 64
