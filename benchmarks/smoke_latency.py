"""CI smoke benchmark: tiny-config serving latency, sequential vs batched.

Trains a small NeuroCard on a scaled-down JOB-light schema (seconds on one
CPU) and measures the two serving paths at equal ``n_samples``. Writes a
``BENCH_smoke_latency.json`` artifact so CI runs accumulate a throughput
trajectory over time; it never fails the build on perf numbers (that is the
full ``bench_fig7d_latency.py``'s job on a quiet machine).

Run:  PYTHONPATH=src python benchmarks/smoke_latency.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.core import NeuroCard, NeuroCardConfig
from repro.joins.counts import JoinCounts
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


from bench_timing import measure_serving_paths  # noqa: E402  (benchmarks/ on sys.path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_smoke_latency.json")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--n-samples", type=int, default=128)
    args = parser.parse_args()

    schema = job_light_schema(ImdbScale(n_title=600))
    counts = JoinCounts(schema)
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=60_000, learning_rate=5e-3,
        progressive_samples=args.n_samples, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    start = time.perf_counter()
    estimator = NeuroCard(schema, config).fit()
    train_seconds = time.perf_counter() - start
    queries = job_light_ranges_queries(schema, n=args.batch_size, counts=counts)
    measured = measure_serving_paths(estimator.inference, queries, args.n_samples)

    report = {
        "bench": "smoke_latency",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "train_seconds": round(train_seconds, 2),
        "model_mb": round(estimator.size_mb, 3),
        "n_queries": len(queries),
        "n_samples": args.n_samples,
        **{key: round(value, 2) for key, value in measured.items()},
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")


if __name__ == "__main__":
    main()
