"""Figure 7b: sampler throughput vs number of sampling threads.

Paper: four threads saturate the (GPU) trainer; throughput peaks ~40K
tuples/s. Here both the sampler and the trainer are CPU/numpy: a single
producer already sustains hundreds of thousands of tuples/s at our scale
— far above what the paper's GPU consumed — and adding Python threads only
adds GIL/queue overhead. The property that matters for the paper's claim is
that the sampling pipeline never starves the trainer; we assert every
thread configuration sustains well above the trainer's consumption rate,
and report the measured curve.
"""

import time

from repro.joins.sampler import FullJoinSampler, ThreadedSampler

from conftest import write_result

BATCH = 2048
BATCHES_PER_MEASURE = 25


def _throughput(sampler, n_threads: int) -> float:
    with ThreadedSampler(sampler, BATCH, n_threads=n_threads, seed=13) as threaded:
        threaded.get_batch()  # warmup
        start = time.perf_counter()
        for _ in range(BATCHES_PER_MEASURE):
            threaded.get_batch()
        elapsed = time.perf_counter() - start
    return BATCH * BATCHES_PER_MEASURE / elapsed


def test_fig7b_sampling_threads(light_env, benchmark):
    sampler = FullJoinSampler(light_env.schema, light_env.counts)

    def run():
        return {n: _throughput(sampler, n) for n in (1, 2, 4, 8)}

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Figure 7b: sampler throughput vs threads (paper: 4 threads saturate "
        "the trainer at ~40K tuples/s on 32 vCPUs)",
        f"{'threads':>8} {'tuples/s':>12}",
    ]
    for n, tps in curve.items():
        lines.append(f"{n:>8} {tps:>12.0f}")
    write_result("fig7b_threads", "\n".join(lines))

    # Every configuration feeds the trainer far faster than it consumes
    # (training measures ~20-50K tuples/s on this CPU).
    assert min(curve.values()) > 50_000
    assert curve[1] > 100_000
