"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark file regenerates one table or figure of the paper. Heavy
artifacts (schemas, ground truths, trained estimators) are session-scoped
and shared. Reports are printed and persisted under ``benchmarks/results/``
so that ``bench_output.txt`` plus that directory capture the full
paper-vs-measured comparison (also summarized in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.joins.counts import JoinCounts
from repro.eval.harness import true_cardinalities
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.workloads import (
    job_light_queries,
    job_light_ranges_queries,
    job_m_queries,
    job_light_schema,
    job_m_schema,
)
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Scaled-down workload sizes (paper: 70 / 1000 / 113 queries). The ranges
#: workload is trimmed to keep the full bench suite in CPU minutes.
N_JOB_LIGHT = 70
N_RANGES = 200
N_JOB_M = 113


def write_result(name: str, text: str) -> str:
    """Persist one report and echo it to stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@dataclass
class WorkloadEnv:
    """One schema + its workloads and exact ground truths."""

    schema: JoinSchema
    counts: JoinCounts
    queries: Dict[str, List[Query]] = field(default_factory=dict)
    truths: Dict[str, List[float]] = field(default_factory=dict)


def base_config(**overrides) -> NeuroCardConfig:
    """The Base NeuroCard configuration used across benches (Table 5)."""
    defaults = dict(
        d_emb=16,
        d_ff=128,
        n_blocks=2,
        factorization_bits=14,
        batch_size=512,
        train_tuples=600_000,
        learning_rate=5e-3,
        progressive_samples=512,
        sampler_threads=4,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        seed=0,
    )
    defaults.update(overrides)
    return NeuroCardConfig(**defaults)


@pytest.fixture(scope="session")
def light_env() -> WorkloadEnv:
    schema = job_light_schema(ImdbScale(n_title=1500))
    counts = JoinCounts(schema)
    env = WorkloadEnv(schema=schema, counts=counts)
    env.queries["job-light"] = job_light_queries(schema, n=N_JOB_LIGHT, counts=counts)
    env.queries["ranges"] = job_light_ranges_queries(schema, n=N_RANGES, counts=counts)
    for key in ("job-light", "ranges"):
        env.truths[key] = true_cardinalities(schema, env.queries[key], counts)
    return env


@pytest.fixture(scope="session")
def jobm_env() -> WorkloadEnv:
    schema = job_m_schema(ImdbScale(n_title=2000, n_phonetic=1500))
    counts = JoinCounts(schema)
    env = WorkloadEnv(schema=schema, counts=counts)
    env.queries["job-m"] = job_m_queries(schema, n=N_JOB_M, counts=counts)
    env.truths["job-m"] = true_cardinalities(schema, env.queries["job-m"], counts)
    return env


@pytest.fixture(scope="session")
def neurocard_light(light_env) -> NeuroCard:
    """The Base NeuroCard fitted on JOB-light (shared by several benches)."""
    return NeuroCard(light_env.schema, base_config()).fit()


@pytest.fixture(scope="session")
def deepdb_light(light_env):
    from repro.baselines import DeepDBEstimator

    return DeepDBEstimator(
        light_env.schema,
        light_env.counts,
        n_samples=30_000,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        seed=0,
    )


@pytest.fixture(scope="session")
def mscn_light(light_env):
    from repro.baselines import MSCNEstimator

    train = job_light_ranges_queries(
        light_env.schema, n=400, seed=91, counts=light_env.counts
    )
    cards = true_cardinalities(light_env.schema, train, light_env.counts)
    return MSCNEstimator(light_env.schema, train, cards, epochs=50, seed=0)
