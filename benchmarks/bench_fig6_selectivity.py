"""Figure 6: distribution of query selectivities per workload.

Paper: JOB-light-ranges and JOB-M have much wider selectivity spectra than
JOB-light; their median selectivity is >100x lower and the minimums reach
orders of magnitude further into the tail.
"""

import numpy as np

from repro.eval.figures import ascii_cdf, selectivity_spectrum

from conftest import write_result


def test_fig6_selectivity_distribution(light_env, jobm_env, benchmark):
    def compute():
        return {
            "JOB-light": selectivity_spectrum(
                light_env.schema, light_env.queries["job-light"], light_env.counts
            ),
            "JOB-light-ranges": selectivity_spectrum(
                light_env.schema, light_env.queries["ranges"], light_env.counts
            ),
            "JOB-M": selectivity_spectrum(
                jobm_env.schema, jobm_env.queries["job-m"], jobm_env.counts
            ),
        }

    spectra = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = ascii_cdf(
        {k: v for k, v in spectra.items()},
        "Figure 6: query selectivity CDFs (log10 x-axis)",
    )
    write_result("fig6_selectivity", text)

    med_light = np.median(spectra["JOB-light"])
    med_ranges = np.median(spectra["JOB-light-ranges"])
    # The ranges workload reaches markedly lower selectivities (paper: >100x
    # lower median; at our much smaller scale we assert >2x and a lower
    # minimum — fewer rows compress the attainable selectivity range).
    assert med_ranges < med_light / 2
    # More of the ranges workload's mass sits in the low-selectivity tail.
    tail = 1e-3
    assert (spectra["JOB-light-ranges"] < tail).mean() > (
        spectra["JOB-light"] < tail
    ).mean()
    assert spectra["JOB-M"].min() < med_light
