"""Chaos-resilience benchmark: a seeded fault storm vs availability gates.

Serves the deterministic fp64 tabular oracle engine through the full
stack (scheduler + sharded worker pool) while ``repro.serving.faults``
injects a *reproducible* storm — scheduler flush failures, parent-side
dispatch errors, and worker SIGKILLs — with a training-free per-table
fallback registered behind the circuit breaker. Reports QPS, p95
latency, fault/degraded tallies, and the acceptance properties the
``chaos-smoke`` CI leg pins (``--no-check`` to report only):

* **one seed, one schedule** — ``FaultPlan.schedule`` replayed twice
  (and from a freshly constructed equal plan) yields the identical fire
  indices, while a different seed yields a different schedule;
* **every request is answered** — under the storm the answered-request
  ratio is >= 0.99 (degraded answers count; stranded futures and raw
  infrastructure errors do not) and zero futures time out;
* **non-degraded answers are bitwise clean** — every answer that did
  NOT route through the fallback equals the no-fault reference run's
  fp64 result exactly, so injected faults never skew surviving math;
* **the storm really stormed** — the flush site fired, both planned
  dispatch errors fired, and the SIGKILL ingredient took a worker down
  (the pool respawned >= 1); failed requests cascaded to the fallback
  (degraded responses > 0) while the primary kept receiving traffic;
* **open-circuit traffic is served by the fallback** — a corrupted
  artifact opens the breaker on the first load failure and every
  subsequent request is answered degraded with the primary skipped
  (``fallback_routes`` > 0, zero successful loads);
* **containment** — an injected refresh failure leaves the old model
  object and version serving; an already-expired deadline fails with
  ``DeadlineError`` before dispatch while a generous deadline
  reproduces the reference answer bitwise.

Run:  PYTHONPATH=src python benchmarks/bench_chaos_resilience.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.baselines.per_table import PerTableStatsEstimator
from repro.core.progressive import ProgressiveSampler
from repro.errors import DeadlineError, InjectedFaultError
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    EstimationService,
    FaultPlan,
    FaultSpec,
    ModelRegistry,
    ServingConfig,
    StreamingIngestor,
    faults,
)
from repro.serving.updates import BackgroundRefresher

# The tabular oracle lives with the tests (numpy-only, no pytest import);
# the CI smoke job runs from the repo root with only the package installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.core.oracle import OracleModel  # noqa: E402


def build_oracle_engine():
    """Two-table R |><| C oracle engine + schema (same shape as bench_http_api)."""
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
    engine = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
    return schema, engine


QUERIES = [
    Query.make(["R"], [Predicate("R", "year", ">=", 1994)]),
    Query.make(["R", "C"], [Predicate("C", "kind", "IN", (0, 2, 4))]),
    Query.make(["R", "C"], [Predicate("R", "year", "<", 1993)]),
    Query.make(["C"], [Predicate("C", "kind", "=", 1)]),
    Query.make(["R", "C"], []),
]


def make_requests(n: int):
    """``n`` (query, seed) pairs; unique seeds pin every answer bitwise."""
    return [(QUERIES[i % len(QUERIES)], 1000 + i) for i in range(n)]


def make_storm_plan(seed: int) -> FaultPlan:
    """The storm: flush failures + dispatch errors + per-slot worker SIGKILL.

    ``at``-specs make the dispatch and crash ingredients certain (their
    hit counts are guaranteed by the request volume) while the flush
    failures draw from the plan's seeded per-site stream.
    """
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec("scheduler.flush", probability=0.25),
            FaultSpec("worker.dispatch", at=(1, 3)),
            FaultSpec("worker.crash", at=(15,), kind="crash"),
        ),
    )


def serving_config(args, *, breaker_failures=2, breaker_cooldown_s=0.05):
    return ServingConfig(
        max_batch=16,
        max_wait_us=1000,
        cache_size=0,
        n_samples=args.n_samples,
        workers=args.workers,
        min_shard=4,
        breaker_failures=breaker_failures,
        breaker_cooldown_s=breaker_cooldown_s,
    )


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def check_schedule_determinism(seed: int) -> bool:
    plan = make_storm_plan(seed)
    first = plan.schedule("scheduler.flush", 500)
    replayed = plan.schedule("scheduler.flush", 500)
    fresh = make_storm_plan(seed).schedule("scheduler.flush", 500)
    other = make_storm_plan(seed + 1).schedule("scheduler.flush", 500)
    return first == replayed == fresh and first != other and len(first) > 10


def run_reference(args, engine, requests):
    """No-fault run, same config as the storm: the bitwise reference."""
    with EstimationService(config=serving_config(args)) as service:
        service.register("oracle", engine)
        return [
            service.submit(q, seed=s).result(timeout=120) for q, s in requests
        ]


def run_storm(args, schema, engine, requests):
    # The breaker is effectively count-only here (failures far above the
    # workload size): every injected failure cascades per-request to the
    # fallback while the *primary keeps receiving traffic*, so the crash
    # and flush sites keep firing all storm long. Open-circuit routing is
    # gated separately (check_corruption_containment), where the breaker
    # deterministically opens.
    plan = make_storm_plan(args.seed)
    service = EstimationService(config=serving_config(args, breaker_failures=10_000))
    service.register("oracle", engine)
    service.register_fallback("oracle", PerTableStatsEstimator(schema))

    results: dict = {}
    degraded: dict = {}
    errors: dict = {}
    stranded = 0
    latencies = []
    lock = threading.Lock()
    next_idx = [0]

    def worker():
        nonlocal stranded
        while True:
            with lock:
                if next_idx[0] >= len(requests):
                    return
                i = next_idx[0]
                next_idx[0] += 1
            query, seed = requests[i]
            t0 = time.perf_counter()
            try:
                future = service.submit(query, seed=seed)
                value = future.result(timeout=120)
            except TimeoutError:
                with lock:
                    stranded += 1
                continue
            except Exception as exc:  # typed infra error: terminated, unanswered
                with lock:
                    errors[i] = type(exc).__name__
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                results[i] = value
                degraded[i] = bool(getattr(future, "degraded", False))
                latencies.append(elapsed)

    with faults.injected(plan) as injector:
        # Warm inside the injected block: the pool ships the plan to every
        # spawned worker with the model payload, so the storm must be
        # installed before the first publish.
        service.estimate(requests[0][0], seed=999_983)
        threads = [threading.Thread(target=worker) for _ in range(args.clients)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        fault_stats = injector.stats()

    stats = service.stats()
    service.close()

    resilience = stats["resilience"]["oracle"]
    pool = stats.get("pools", {}).get("oracle", {})
    return {
        "results": results,
        "degraded": degraded,
        "errors": errors,
        "stranded": stranded,
        "latencies": latencies,
        "wall_s": wall,
        "faults_fired": {
            site: int(s["fires"]) for site, s in fault_stats.items()
        },
        "resilience": resilience,
        "respawns": int(pool.get("respawns", 0)),
    }


def check_refresh_containment(schema, engine, seed: int) -> bool:
    """An injected refresh failure parks; the old model object keeps serving."""
    registry = ModelRegistry()
    registry.register("live", engine)
    before = registry.version("live")
    ingestor = StreamingIngestor(schema)
    refresher = BackgroundRefresher(registry, "live", ingestor)
    plan = FaultPlan(seed=seed, specs=(FaultSpec("refresher.train", at=(0,)),))
    with faults.injected(plan):
        event = refresher.refresh_now("fast")
    return (
        not event.ok
        and isinstance(event.error, InjectedFaultError)
        and registry.get("live") is engine
        and registry.version("live") == before
    )


def check_corruption_containment(args, schema):
    """A corrupted artifact degrades (open breaker + fallback), never poisons.

    Returns ``(contained, resilience_stats)`` — this is also the bench's
    deterministic open-circuit proof: the first request's load failure
    opens the breaker (``breaker_failures=1``) and every subsequent
    request is served by the per-table fallback with the primary skipped.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "broken.npz"
        path.write_bytes(b"this is not an npz artifact")
        service = EstimationService(
            config=serving_config(args, breaker_failures=1, breaker_cooldown_s=60.0)
        )
        try:
            service.register_path("broken", path, schema)
            service.register_fallback("broken", PerTableStatsEstimator(schema))
            futures = [
                service.submit(q, seed=50 + i, model="broken")
                for i, q in enumerate(QUERIES)
            ]
            answers = [f.result(timeout=120) for f in futures]
            stats = service.stats()
        finally:
            service.close()
    resilience = stats["resilience"]["broken"]
    contained = (
        all(np.isfinite(a) for a in answers)
        and all(getattr(f, "degraded", False) for f in futures)
        and resilience["state"] == 2.0  # open
        and resilience["fallback_routes"] >= 1
        and stats["registry"]["loads"] == 0  # the broken artifact never loaded
    )
    return contained, resilience


def check_deadline_probe(args, engine, reference) -> bool:
    """Expired deadlines fail typed before dispatch; generous ones are bitwise."""
    config = ServingConfig(
        max_batch=16, max_wait_us=1000, cache_size=0, n_samples=args.n_samples
    )
    with EstimationService(config=config) as service:
        service.register("oracle", engine)
        query, seed = QUERIES[0], 1000  # request 0 of the reference workload
        expired = service.submit(query, seed=seed, deadline=time.monotonic())
        try:
            expired.result(timeout=120)
            typed = False
        except DeadlineError:
            typed = True
        except Exception:
            typed = False
        generous = service.submit(
            query, seed=seed, deadline=time.monotonic() + 60.0
        ).result(timeout=120)
        expired_count = service.stats()["models"]["oracle"]["deadline_expired"]
    return typed and expired_count >= 1 and generous == reference[0]


# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_chaos_resilience.json")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--n-samples", type=int, default=200)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the storm (the SIGKILL ingredient "
        "needs >= 1; 0 skips the crash/respawn gate and fails --check)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report without enforcing the acceptance properties",
    )
    args = parser.parse_args()

    schema, engine = build_oracle_engine()
    requests = make_requests(args.requests)

    schedule_deterministic = check_schedule_determinism(args.seed)
    print("reference run (no faults)...")
    reference = run_reference(args, engine, requests)
    print(f"fault storm: {args.requests} requests, {args.clients} clients, "
          f"{args.workers} workers...")
    storm = run_storm(args, schema, engine, requests)

    n = len(requests)
    answered = len(storm["results"])
    answered_ratio = answered / n
    n_degraded = sum(1 for d in storm["degraded"].values() if d)
    mismatches = [
        i for i, value in storm["results"].items()
        if not storm["degraded"][i] and value != reference[i]
    ]
    bitwise_match = not mismatches
    no_stranded = storm["stranded"] == 0
    worker_crash_respawned = args.workers > 0 and storm["respawns"] >= 1
    flush_fired = storm["faults_fired"].get("scheduler.flush", 0) >= 1

    refresh_contained = check_refresh_containment(schema, engine, args.seed)
    corruption_contained, open_resilience = check_corruption_containment(
        args, schema
    )
    fallback_served_open_circuit = (
        open_resilience["opens"] >= 1
        and open_resilience["fallback_routes"] >= 1
        and open_resilience["degraded_responses"] >= 1
    )
    deadline_ok = check_deadline_probe(args, engine, reference)

    latencies = sorted(storm["latencies"])
    p95_ms = (
        latencies[max(0, int(len(latencies) * 0.95) - 1)] * 1000.0
        if latencies else float("nan")
    )
    qps = n / storm["wall_s"]

    report = {
        "bench": "chaos_resilience",
        "python": platform.python_version(),
        "requests": n,
        "clients": args.clients,
        "workers": args.workers,
        "storm_seed": args.seed,
        "faults_fired": storm["faults_fired"],
        "pool_respawns": storm["respawns"],
        "breaker_opens": int(open_resilience["opens"]),
        "open_circuit_fallback_routes": int(open_resilience["fallback_routes"]),
        "degraded_responses": n_degraded,
        "typed_errors": len(storm["errors"]),
        "answered_ratio": round(answered_ratio, 4),
        "qps": round(qps, 1),
        "p95_ms": round(p95_ms, 2),
        "schedule_deterministic": int(schedule_deterministic),
        "no_stranded_futures": int(no_stranded),
        "bitwise_match": int(bitwise_match),
        "fallback_served_open_circuit": int(fallback_served_open_circuit),
        "worker_crash_respawned": int(worker_crash_respawned),
        "refresh_failure_contained": int(refresh_contained),
        "artifact_corruption_contained": int(corruption_contained),
        "deadline_probe_ok": int(deadline_ok),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report, indent=2))

    if args.no_check:
        return
    failures = []
    if answered_ratio < 0.99:
        failures.append(
            f"answered ratio {answered_ratio:.4f} < 0.99 "
            f"(typed errors: {storm['errors']})"
        )
    if not no_stranded:
        failures.append(f"{storm['stranded']} futures timed out (stranded)")
    if not bitwise_match:
        failures.append(
            f"{len(mismatches)} non-degraded answers differ from the "
            f"no-fault reference (first: request {mismatches[0]})"
        )
    if not schedule_deterministic:
        failures.append("FaultPlan.schedule is not reproducible from the seed")
    if not fallback_served_open_circuit:
        failures.append(
            "breaker never opened or open-circuit traffic never reached "
            f"the fallback (resilience: {open_resilience})"
        )
    if not worker_crash_respawned:
        failures.append(
            f"worker SIGKILL ingredient missing: {args.workers} workers, "
            f"{storm['respawns']} respawns"
        )
    if not flush_fired:
        failures.append("scheduler.flush never fired during the storm")
    if n_degraded == 0:
        failures.append("storm fired but nothing cascaded to the fallback")
    if not refresh_contained:
        failures.append("injected refresh failure was not contained")
    if not corruption_contained:
        failures.append("corrupted artifact was not contained")
    if not deadline_ok:
        failures.append("deadline probe failed (typed 504-path or bitwise)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print(
        f"chaos OK: {answered_ratio:.4f} answered ({n_degraded} degraded, "
        f"{storm['respawns']} respawns, "
        f"{sum(storm['faults_fired'].values())} parent-side fires), "
        f"non-degraded bitwise-clean, refresh/corruption/deadline contained"
    )


if __name__ == "__main__":
    main()
