"""HTTP-serving benchmark: the wire API vs the in-process scheduler.

Serves the deterministic fp64 tabular oracle engine (bitwise-stable and
training-free, so the bench isolates the serving stack) through
``repro.serving.http`` and drives it with a closed-loop load generator
(N keep-alive client threads, one request in flight each). Reports QPS,
p50/p95 latency, shed and error rates, and five acceptance properties the
CI gate pins (``--no-check`` to report only):

* **wire results are bitwise-equal to in-process** — every pinned-seed
  answer over HTTP equals the sequential ``ProgressiveSampler.estimate``
  with the same seed (JSON ``repr``-round-trips floats exactly; the
  scheduler pins per-request generators);
* **the wire sustains >= 0.7x the in-process scheduler QPS** — the same
  requests through ``service.submit`` directly, same client count, so the
  ratio isolates HTTP parsing + loopback TCP overhead;
* **zero shed at low load** — an uncontended run must admit everything;
* **/metrics reconciles exactly** — scraped request/shed/query counters
  equal the load generator's own tallies, integer-exact;
* **overload sheds, admitted traffic stays fast** — at >= 3x the
  sustainable rate (token-bucket quota at one third of measured wire
  QPS), shed rate is positive while the p95 of *accepted* requests stays
  within 2x the uncontended p95 (shedding happens before batch slots are
  consumed, so survivors don't queue behind doomed requests).

Run:  PYTHONPATH=src python benchmarks/bench_http_api.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.progressive import ProgressiveSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    EstimationService,
    HttpConfig,
    HttpEstimationClient,
    HttpServerThread,
    ServingConfig,
)
from repro.serving.metrics import parse_samples

# The tabular oracle lives with the tests (numpy-only, no pytest import);
# the CI smoke job runs from the repo root with only the package installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.core.oracle import OracleModel  # noqa: E402


def build_oracle_engine() -> ProgressiveSampler:
    """The same two-table fp64 oracle the serving benches use."""
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
    return ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)


def make_requests(n_requests: int):
    """(query, seed) pairs; unique seeds so the result cache cannot hit."""
    queries = [
        Query.make(["R"], [Predicate("R", "year", ">=", 1994)]),
        Query.make(["R", "C"], [Predicate("C", "kind", "IN", (0, 2, 4))]),
        Query.make(["R", "C"], [Predicate("R", "year", "<", 1993)]),
        Query.make(["C"], [Predicate("C", "kind", "=", 1)]),
        Query.make(["R", "C"], []),
    ]
    return [(queries[i % len(queries)], 1000 + i) for i in range(n_requests)]


def run_inprocess(service, requests, n_clients: int):
    """Closed-loop clients against service.submit; returns (qps, results)."""
    results = [0.0] * len(requests)

    def client(cid: int) -> None:
        for i in range(cid, len(requests), n_clients):
            query, seed = requests[i]
            results[i] = service.submit(query, seed=seed).result()

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return len(requests) / wall, np.array(results)


def run_wire(server, requests, n_clients: int, tenant: str = "bench"):
    """Closed-loop clients over HTTP; per-request wall-time latencies.

    Returns (qps, results, latencies_of_accepted, tallies) where results
    holds NaN for shed/failed requests and tallies counts
    ``{"ok", "shed", "error"}`` exactly as the client threads observed
    them (the /metrics reconciliation compares against these).
    """
    from repro.errors import QueryError, ServingError

    results = [float("nan")] * len(requests)
    latencies: list = []
    tallies = {"ok": 0, "shed": 0, "error": 0}
    lock = threading.Lock()

    def client(cid: int) -> None:
        # max_retries=0: the /metrics reconciliation demands exactly one
        # wire request per workload entry, so retried 429s would break it.
        http = HttpEstimationClient(
            server.host, server.port, "oracle", tenant=tenant, max_retries=0
        )
        local_lat, ok, shed, error = [], 0, 0, 0
        for i in range(cid, len(requests), n_clients):
            query, seed = requests[i]
            t0 = time.perf_counter()
            try:
                results[i] = http.estimate(query, seed=seed)
                ok += 1
                local_lat.append(time.perf_counter() - t0)
            except QueryError as exc:
                # 429 = quota shed (the overload phase's design); any
                # other 4xx is a generator bug and counts as an error.
                if "429" in str(exc):
                    shed += 1
                else:
                    error += 1
            except ServingError:
                shed += 1  # 503 queue/deadline shed
            except Exception:  # noqa: BLE001
                error += 1
        http.close()
        with lock:
            latencies.extend(local_lat)
            tallies["ok"] += ok
            tallies["shed"] += shed
            tallies["error"] += error

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return len(requests) / wall, np.array(results), np.array(latencies), tallies


def reconcile_metrics(client, tenant: str, tallies) -> bool:
    """Scraped counters must equal the load generator's tallies exactly."""
    samples = parse_samples(client.metrics_text())

    def scraped(name: str, **labels) -> float:
        rendered = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
        return samples.get(f"{name}{{{rendered}}}", 0.0)

    ok = scraped("repro_http_requests_total", tenant=tenant, code="200")
    shed = sum(
        value
        for key, value in samples.items()
        if key.startswith("repro_http_shed_total") and f'tenant="{tenant}"' in key
    )
    queries = scraped("repro_http_queries_total", tenant=tenant)
    observed = scraped("repro_http_request_seconds_count", tenant=tenant)
    return (
        ok == tallies["ok"]
        and shed == tallies["shed"]
        and queries == tallies["ok"]  # single-query requests
        and observed == tallies["ok"]  # only admitted requests are timed
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_http_api.json")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--n-samples", type=int, default=200)
    parser.add_argument("--overload-x", type=float, default=3.0)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only; do not fail the acceptance checks",
    )
    args = parser.parse_args()

    engine = build_oracle_engine()
    requests = make_requests(args.requests)

    # Sequential fp64 reference: the bitwise ground truth for every path.
    sequential = np.array([
        engine.estimate(q, n_samples=args.n_samples, rng=np.random.default_rng(seed))
        for q, seed in requests
    ])

    config = ServingConfig(
        max_batch=64, max_wait_us=2000,
        cache_size=0,  # unique seeds anyway; keep the measurement honest
        n_samples=args.n_samples,
    )

    # -- in-process scheduler baseline --------------------------------
    service = EstimationService(config=config)
    service.register("oracle", engine)
    service.estimate(requests[0][0], seed=requests[0][1])  # warm the scheduler
    inprocess_qps, inprocess = run_inprocess(service, requests, args.clients)
    service.close()

    # -- wire run (uncontended) ----------------------------------------
    service = EstimationService(config=config)
    service.register("oracle", engine)
    with HttpServerThread(service, HttpConfig(port=0)) as server:
        wire_client = HttpEstimationClient(
            server.host, server.port, "oracle", tenant="bench"
        )
        wire_client.estimate(requests[0][0], seed=requests[0][1])  # warm
        wire_qps, wire, latencies, tallies = run_wire(
            server, requests, args.clients
        )
        tallies["ok"] += 1  # the warm-up request hit the same tenant
        metrics_ok = reconcile_metrics(wire_client, "bench", tallies)
        tallies["ok"] -= 1
        wire_client.close()
    service.close()

    bitwise = bool(np.array_equal(wire, sequential))
    inprocess_bitwise = bool(np.array_equal(inprocess, sequential))
    zero_shed = int(tallies["shed"] == 0 and tallies["error"] == 0)
    p50_ms = float(np.percentile(latencies, 50)) * 1e3 if len(latencies) else 0.0
    p95_ms = float(np.percentile(latencies, 95)) * 1e3 if len(latencies) else 0.0

    # -- overload probe: quota at wire_qps / overload_x ----------------
    # The same closed loop now offers ~overload_x times what the bucket
    # admits; shedding must appear and the survivors must stay fast.
    quota_rate = max(wire_qps / args.overload_x, 1.0)
    service = EstimationService(config=config)
    service.register("oracle", engine)
    with HttpServerThread(
        service,
        HttpConfig(port=0, rate=quota_rate, burst=max(quota_rate / 10, 1.0)),
    ) as server:
        _, _, over_latencies, over_tallies = run_wire(
            server, requests, args.clients
        )
    service.close()

    total = over_tallies["ok"] + over_tallies["shed"] + over_tallies["error"]
    overload_shed_rate = over_tallies["shed"] / total if total else 0.0
    overload_p95_ms = (
        float(np.percentile(over_latencies, 95)) * 1e3 if len(over_latencies) else 0.0
    )
    overload_ok = int(
        over_tallies["error"] == 0
        and overload_shed_rate > 0.0
        and overload_p95_ms <= 2.0 * p95_ms
    )

    report = {
        "bench": "http_api",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "clients": args.clients,
        "n_requests": len(requests),
        "n_samples": args.n_samples,
        "inprocess_qps": round(inprocess_qps, 2),
        "wire_qps": round(wire_qps, 2),
        "wire_ratio": round(wire_qps / inprocess_qps, 3),
        "p50_ms": round(p50_ms, 2),
        "p95_ms": round(p95_ms, 2),
        "shed_low_load": tallies["shed"],
        "error_low_load": tallies["error"],
        "zero_shed_low_load": zero_shed,
        "wire_bitwise_match": int(bitwise),
        "inprocess_bitwise_match": int(inprocess_bitwise),
        "metrics_reconcile_ok": int(metrics_ok),
        "overload_x": args.overload_x,
        "overload_shed_rate": round(overload_shed_rate, 3),
        "overload_p95_ms": round(overload_p95_ms, 2),
        "overload_ok": overload_ok,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    if args.no_check:
        return
    failures = []
    if not bitwise:
        failures.append("wire results are not bitwise-equal to the fp64 oracle path")
    if not inprocess_bitwise:
        failures.append("in-process results are not bitwise-equal (scheduler bug?)")
    if report["wire_ratio"] < 0.7:
        failures.append(
            f"wire QPS is {report['wire_ratio']:.2f}x in-process (< 0.7x floor)"
        )
    if not zero_shed:
        failures.append(
            f"uncontended run shed {tallies['shed']} / errored {tallies['error']}"
        )
    if not metrics_ok:
        failures.append("/metrics counters do not reconcile with client tallies")
    if not overload_ok:
        failures.append(
            f"overload probe failed: shed_rate={overload_shed_rate:.3f}, "
            f"p95 {overload_p95_ms:.1f}ms vs 2x floor {2 * p95_ms:.1f}ms, "
            f"errors={over_tallies['error']}"
        )
    if failures:
        print("\nHTTP API acceptance checks FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("\nHTTP API acceptance checks passed.")


if __name__ == "__main__":
    main()
