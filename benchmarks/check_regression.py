"""Benchmark-regression gate: compare smoke-bench reports to a baseline.

Reads the committed ``benchmarks/BENCH_baseline.json`` and one or more
current report files (each a JSON object with a ``bench`` name, as written
by ``smoke_latency.py`` / ``smoke_train_throughput.py``). Every baseline
metric is keyed ``<bench>.<field>`` and carries a reference ``value`` and a
``direction`` (``higher`` = bigger is better). A metric regresses when it
is worse than the baseline by more than the tolerance (default 25%, the
CI gate threshold); a missing metric is also a failure, so renaming a
report field cannot silently disable the gate.

Ratio metrics (speedups) are machine-relative and carry tight baselines;
absolute tuples/sec baselines are set conservatively below a developer
machine's numbers so the gate tracks order-of-magnitude regressions without
flaking on slower CI runners.

Run:  python benchmarks/check_regression.py \
          --baseline benchmarks/BENCH_baseline.json \
          BENCH_smoke_latency.json BENCH_smoke_train_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_reports(paths) -> Dict[str, dict]:
    reports: Dict[str, dict] = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        name = report.get("bench")
        if not name:
            sys.exit(f"report {path} has no 'bench' name field")
        reports[name] = report
    return reports


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+", help="current report JSON files")
    parser.add_argument("--baseline", default="benchmarks/BENCH_baseline.json")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline file's tolerance (fraction, e.g. 0.25)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = (
        args.tolerance if args.tolerance is not None else baseline.get("tolerance", 0.25)
    )
    reports = load_reports(args.current)

    failures = []
    print(f"{'metric':<55} {'baseline':>10} {'current':>10}  status")
    for key, spec in baseline["metrics"].items():
        bench, _, field = key.partition(".")
        ref, direction = spec["value"], spec.get("direction", "higher")
        report = reports.get(bench)
        current = None if report is None else report.get(field)
        if current is None:
            failures.append(f"{key}: missing from current reports")
            print(f"{key:<55} {ref:>10} {'—':>10}  MISSING")
            continue
        tol = spec.get("tolerance", tolerance)
        if direction == "higher":
            regressed = current < ref * (1.0 - tol)
        else:
            regressed = current > ref * (1.0 + tol)
        status = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(
                f"{key}: {current} vs baseline {ref} "
                f"(allowed {'-' if direction == 'higher' else '+'}{tol:.0%})"
            )
        print(f"{key:<55} {ref:>10} {current:>10}  {status}")

    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"\nBenchmark regression gate passed ({len(baseline['metrics'])} metrics).")


if __name__ == "__main__":
    main()
