"""Benchmark-regression gate: compare smoke-bench reports to a baseline.

Reads the committed ``benchmarks/BENCH_baseline.json`` and one or more
current report files (each a JSON object with a ``bench`` name, as written
by ``smoke_latency.py`` / ``smoke_train_throughput.py`` /
``bench_serving_qps.py``). Every baseline metric is keyed
``<bench>.<field>`` and carries a reference ``value`` and a ``direction``
(``higher`` = bigger is better). A metric regresses when it is worse than
the baseline by more than the tolerance (default 25%, the CI gate
threshold); a metric missing from a *provided* bench report is also a
failure, so renaming a report field cannot silently disable the gate.

CI runs the gate per job, each passing only the reports that job produced;
baseline benches with no report in the invocation are skipped (printed as
SKIPPED), but a provided report whose bench name matches no baseline
metric is a hard failure — renaming a report's ``bench`` field cannot
skip its gate. Pass ``--require-all`` to also fail on absent benches —
the full local refresh runs all benches and should use it. Two report
files claiming the same ``bench`` name are a hard error (the later one
would silently shadow the earlier), and under ``--require-all`` a gate
that matched zero metrics fails rather than "passing" vacuously.

Ratio metrics (speedups) are machine-relative and carry tight baselines;
absolute tuples/sec baselines are set conservatively below a developer
machine's numbers so the gate tracks order-of-magnitude regressions without
flaking on slower CI runners.

Run:  python benchmarks/check_regression.py \
          --baseline benchmarks/BENCH_baseline.json \
          BENCH_smoke_latency.json BENCH_smoke_train_throughput.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_reports(paths) -> Dict[str, dict]:
    reports: Dict[str, dict] = {}
    sources: Dict[str, str] = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        name = report.get("bench")
        if not name:
            sys.exit(f"report {path} has no 'bench' name field")
        if name in reports:
            # Two files claiming one bench would let the later file's
            # numbers silently shadow the earlier file's — a regressed
            # report could hide behind a healthy one and the gate would
            # check only the survivor.
            sys.exit(
                f"duplicate bench {name!r}: both {sources[name]} and {path} "
                "claim it; each report file must carry a distinct bench name"
            )
        reports[name] = report
        sources[name] = path
    return reports


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+", help="current report JSON files")
    parser.add_argument("--baseline", default="benchmarks/BENCH_baseline.json")
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline file's tolerance (fraction, e.g. 0.25)",
    )
    parser.add_argument(
        "--require-all", action="store_true",
        help="fail when a baseline bench has no report at all (full runs)",
    )
    parser.add_argument(
        "--only", action="append", metavar="BENCH[,BENCH...]",
        help="restrict the gate to these bench names (repeatable and/or "
        "comma-separated); with --require-all, a selected bench without "
        "a report is a hard failure while unselected benches are ignored "
        "entirely",
    )
    args = parser.parse_args()
    if args.only:
        # Accept both `--only a --only b` and `--only a,b` — CI matrices
        # interpolate one comma-joined variable into a single flag.
        args.only = [
            name.strip()
            for entry in args.only
            for name in entry.split(",")
            if name.strip()
        ]

    with open(args.baseline) as f:
        baseline = json.load(f)
    if args.only:
        known = {key.partition(".")[0] for key in baseline["metrics"]}
        unknown = set(args.only) - known
        if unknown:
            sys.exit(f"--only names unknown benches: {sorted(unknown)}")
        baseline["metrics"] = {
            key: spec for key, spec in baseline["metrics"].items()
            if key.partition(".")[0] in args.only
        }
    tolerance = (
        args.tolerance if args.tolerance is not None else baseline.get("tolerance", 0.25)
    )
    reports = load_reports(args.current)

    failures = []
    skipped = 0
    print(f"{'metric':<55} {'baseline':>10} {'current':>10}  status")
    for key, spec in baseline["metrics"].items():
        bench, _, field = key.partition(".")
        ref, direction = spec["value"], spec.get("direction", "higher")
        report = reports.get(bench)
        if report is None:
            if args.require_all:
                failures.append(f"{key}: bench {bench!r} has no report")
                print(f"{key:<55} {ref:>10} {'—':>10}  MISSING")
            else:
                skipped += 1
                print(f"{key:<55} {ref:>10} {'—':>10}  SKIPPED (no {bench} report)")
            continue
        current = report.get(field)
        if current is None:
            failures.append(f"{key}: missing from the {bench} report")
            print(f"{key:<55} {ref:>10} {'—':>10}  MISSING")
            continue
        tol = spec.get("tolerance", tolerance)
        if direction == "higher":
            regressed = current < ref * (1.0 - tol)
        else:
            regressed = current > ref * (1.0 + tol)
        status = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(
                f"{key}: {current} vs baseline {ref} "
                f"(allowed {'-' if direction == 'higher' else '+'}{tol:.0%})"
            )
        print(f"{key:<55} {ref:>10} {current:>10}  {status}")

    # A provided report whose bench name matches no baseline metric means
    # the gate checked nothing for it (e.g. the report's 'bench' field was
    # renamed) — fail loudly instead of silently skipping the whole bench.
    baseline_benches = {key.partition(".")[0] for key in baseline["metrics"]}
    for name in reports:
        if name not in baseline_benches:
            failures.append(
                f"report bench {name!r} has no baseline metrics "
                f"(known: {sorted(baseline_benches)})"
            )

    checked = len(baseline["metrics"]) - skipped
    # A gate that checked nothing passed nothing. Under --require-all an
    # empty baseline-vs-report intersection (e.g. every selected bench's
    # metrics vanished from the baseline file) must fail loudly, not
    # report success over zero metrics.
    if args.require_all and checked == 0 and not failures:
        failures.append(
            "the gate checked 0 metrics: no baseline metric matched any "
            "provided report (--require-all forbids an empty intersection)"
        )

    if failures:
        print("\nBenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    note = f", {skipped} skipped (bench not in this invocation)" if skipped else ""
    print(f"\nBenchmark regression gate passed ({checked} metrics{note}).")


if __name__ == "__main__":
    main()
