"""Table 5: ablation studies on JOB-light-ranges.

Paper (p50 / p99):
    Base (unbiased sampler, 14 bits, 128;16, all tables in one AR): 1.9 / 375
    (A) biased sampler:            33  / 1e4
    (B) 10 bits: 2.2 / 2811 ; 12 bits: 2.0 / 936 ; no factorization: 1.6 / 375
    (C) 128;64: 1.5 / 300 ; 1024;16: 1.7 / 497
    (D) one AR per table + independence: 40 / 7e6
    (E) no model, uniform join samples:  4.0 / 3e6

Shape assertions: the biased sampler (A) and per-table independence (D)
are the catastrophic ablations; fewer factorization bits trade accuracy for
space; the sampling-only estimator (E) has a reasonable median but a far
worse tail than any AR-model configuration.
"""

import numpy as np

from repro.baselines import BiasedJoinSampler, JoinSampleEstimator, PerTableAREstimator
from repro.core.estimator import NeuroCard
from repro.core.progressive import ProgressiveSampler
from repro.eval.harness import evaluate_estimator

from conftest import base_config, write_result


def fit_with_biased_sampler(schema, config):
    """NeuroCard trained on IBJS-style biased samples (ablation A)."""
    estimator = NeuroCard(schema, config)
    cfg = estimator.config
    import time

    from repro.core.encoding import Layout
    from repro.core.training import train_autoregressive
    from repro.joins.counts import JoinCounts
    from repro.joins.sampler import joined_column_specs
    from repro.nn.optim import Adam
    from repro.nn.resmade import ResMADE

    start = time.perf_counter()
    estimator.counts = JoinCounts(schema)
    specs = joined_column_specs(schema, estimator.counts, exclude=cfg.exclude_columns)
    estimator.sampler = BiasedJoinSampler(schema, estimator.counts, specs=specs)
    estimator.layout = Layout(schema, estimator.counts, specs, cfg.factorization_bits)
    estimator.prepare_seconds = time.perf_counter() - start
    estimator.model = ResMADE(
        estimator.layout.domains, d_emb=cfg.d_emb, d_ff=cfg.d_ff,
        n_blocks=cfg.n_blocks, seed=cfg.seed,
    )
    estimator._optimizer = Adam(estimator.model.parameters(), lr=cfg.learning_rate)
    rng = np.random.default_rng(cfg.seed)
    estimator.train_result = train_autoregressive(
        estimator.model, estimator.layout,
        lambda: estimator.sampler.sample_batch(cfg.batch_size, rng),
        cfg.train_tuples, cfg.batch_size, cfg.learning_rate,
        cfg.wildcard_skipping, cfg.seed, optimizer=estimator._optimizer,
    )
    estimator.inference = ProgressiveSampler(
        estimator.model, estimator.layout, estimator.counts.full_join_size
    )
    return estimator


def test_table5_ablations(light_env, neurocard_light, benchmark):
    schema, counts = light_env.schema, light_env.counts
    queries = light_env.queries["ranges"]
    truths = light_env.truths["ranges"]
    train_budget = 400_000

    def run():
        rows = {}

        def record(label, estimator):
            res = evaluate_estimator(label, estimator, queries, truths)
            rows[label] = (res.summary(), res.size_bytes)

        record("Base", neurocard_light)
        record(
            "(A) biased sampler",
            fit_with_biased_sampler(schema, base_config(train_tuples=train_budget)),
        )
        record(
            "(B) fact bits=6",
            NeuroCard(schema, base_config(
                factorization_bits=6, train_tuples=train_budget, seed=2,
            )).fit(),
        )
        record(
            "(B) no factorization",
            NeuroCard(schema, base_config(
                factorization_bits=None, train_tuples=train_budget, seed=3,
            )).fit(),
        )
        record(
            "(C) demb=48",
            NeuroCard(schema, base_config(d_emb=48, train_tuples=train_budget, seed=4)).fit(),
        )
        record(
            "(C) dff=512",
            NeuroCard(schema, base_config(d_ff=512, train_tuples=train_budget, seed=5)).fit(),
        )
        record(
            "(D) per-table AR",
            PerTableAREstimator(
                schema,
                base_config(train_tuples=train_budget, progressive_samples=128),
                counts,
            ),
        )
        record(
            "(E) join samples only",
            JoinSampleEstimator(schema, counts, n_samples=1000, seed=6),
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    header = f"{'Configuration':<24} {'Size':>9} {'p50':>7} {'p99':>10}"
    lines = [
        "Table 5: ablations on JOB-light-ranges (paper p50/p99: Base 1.9/375, "
        "A 33/1e4, D 40/7e6, E 4.0/3e6)",
        header,
        "-" * len(header),
    ]
    for label, (summary, size) in rows.items():
        size_label = f"{size / 2**20:.1f}MB" if size else "-"
        lines.append(
            f"{label:<24} {size_label:>9} {summary.median:>7.2f} {summary.p99:>10.1f}"
        )
    write_result("table5_ablations", "\n".join(lines))

    base = rows["Base"][0]
    # (A) the biased sampler causes a systematic median shift.
    assert rows["(A) biased sampler"][0].median > base.median * 1.5
    # (D) per-table independence is the worst configuration at the tail.
    assert rows["(D) per-table AR"][0].p99 > base.p99
    # (E) sampling-only: fine median, much worse tail than Base.
    assert rows["(E) join samples only"][0].p99 > base.p99
    # (B) fewer bits never helps the tail; disabling factorization costs space.
    assert rows["(B) no factorization"][1] >= rows["(B) fact bits=6"][1]
