"""CI load benchmark: concurrent serving QPS, scheduler vs sequential.

A closed-loop load generator drives the micro-batching scheduler
(`repro.serving`) with ``--clients`` concurrent threads, each keeping
``--depth`` requests in flight, against a tiny-config NeuroCard trained on
a scaled-down JOB-light schema. The baseline is the same request sequence
through the sequential ``estimate`` loop. Reports QPS, speedup, and
p50/p95/p99 per-request latency, and writes a ``BENCH_serving_qps.json``
artifact gated by ``check_regression.py``.

The script verifies three acceptance properties and exits non-zero when
they fail (``--no-check`` to report only):

* scheduler results are **bitwise-equal** to the sequential path under
  pinned per-query generators on the deterministic tabular oracle model
  (whose conditionals are batch-composition invariant);
* on the trained model, scheduler results match the sequential loop to
  ``rtol <= 5e-6`` under pinned seeds (both paths run the compiled fp32
  kernels, whose GEMMs may round differently per batch composition);
* the scheduler sustains >= 1.4x the sequential QPS at 8 concurrent
  clients. The floor was 3x before the compiled inference engine: the
  sequential baseline now runs batch-of-1 through the same compiled
  kernels (~4x faster than PR 3's loop), so coalescing's *relative* win
  shrank while absolute scheduler QPS rose — ``check_regression.py``
  gates that absolute level separately.

With ``--workers N`` the same load additionally runs against the
multiprocess worker pool (``ServingConfig(workers=N)``): micro-batches
are sharded across N processes attaching the model from shared-memory
blobs. A second report (``--pool-out``, bench ``multiprocess_serving``)
records pool QPS, the scaling factor over the single-process scheduler,
a pooled rerun of the oracle bitwise check, and a registry hot-swap
under pooled load that must complete with zero failed and zero
stale-version responses. The >= 2.5x scaling check is enforced only when
the host has at least ``--workers`` CPU cores (single-core dev boxes
report the number without failing on physics).

Run:  PYTHONPATH=src python benchmarks/bench_serving_qps.py [--out PATH]
      PYTHONPATH=src python benchmarks/bench_serving_qps.py --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.core.progressive import ProgressiveSampler
from repro.joins.counts import JoinCounts
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table
from repro.serving import (
    EstimationService,
    MicroBatchScheduler,
    ModelRegistry,
    ServingConfig,
    WorkerPool,
)
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

# The tabular oracle lives with the tests (numpy-only, no pytest import);
# the CI smoke job runs from the repo root with only the package installed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.core.oracle import OracleModel  # noqa: E402


def train_tiny_estimator(n_samples: int) -> NeuroCard:
    schema = job_light_schema(ImdbScale(n_title=600))
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=60_000, learning_rate=5e-3,
        progressive_samples=n_samples, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    return NeuroCard(schema, config).fit()


def make_requests(schema, n_requests: int, n_queries: int):
    """(query, seed) pairs; unique seeds so the result cache cannot hit."""
    counts = JoinCounts(schema)
    queries = job_light_ranges_queries(schema, n=n_queries, counts=counts)
    return [(queries[i % len(queries)], i) for i in range(n_requests)]


def run_sequential(inference, requests, n_samples: int):
    """One-at-a-time baseline; returns (qps, results)."""
    start = time.perf_counter()
    results = [
        inference.estimate(q, n_samples=n_samples, rng=np.random.default_rng(seed))
        for q, seed in requests
    ]
    wall = time.perf_counter() - start
    return len(requests) / wall, np.array(results)


def run_scheduler(scheduler, requests, n_clients: int, depth: int):
    """Closed-loop clients with ``depth`` requests in flight each.

    Returns (qps, results-in-request-order, per-request amortized latencies).
    """
    results = [0.0] * len(requests)
    latencies: list = []
    lock = threading.Lock()

    def client(cid: int) -> None:
        mine = list(range(cid, len(requests), n_clients))
        local_lat = []
        for at in range(0, len(mine), depth):
            window = mine[at:at + depth]
            t0 = time.perf_counter()
            futures = [
                (i, scheduler.submit(requests[i][0], seed=requests[i][1]))
                for i in window
            ]
            for i, future in futures:
                results[i] = future.result()
            per_request = (time.perf_counter() - t0) / len(window)
            local_lat.extend([per_request] * len(window))
        with lock:
            latencies.extend(local_lat)

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return len(requests) / wall, np.array(results), np.array(latencies)


def oracle_bitwise_check(n_samples: int = 200) -> bool:
    """Scheduler == sequential, bitwise, on the composition-invariant oracle."""
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
    ps = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
    queries = [
        Query.make(["R"], [Predicate("R", "year", ">=", 1994)]),
        Query.make(["R", "C"], [Predicate("C", "kind", "IN", (0, 2, 4))]),
        Query.make(["R", "C"], [Predicate("R", "year", "<", 1993)]),
        Query.make(["C"], [Predicate("C", "kind", "=", 1)]),
        Query.make(["R", "C"], []),
    ]
    sequential = [
        ps.estimate(q, n_samples=n_samples, rng=np.random.default_rng(100 + i))
        for i, q in enumerate(queries)
    ]
    with MicroBatchScheduler(
        lambda: (ps, 0), max_batch=3, max_wait_us=500,
        cache_size=0, n_samples=n_samples,
    ) as scheduler:
        futures = [scheduler.submit(q, seed=100 + i) for i, q in enumerate(queries)]
        coalesced = [f.result() for f in futures]
    return all(a == b for a, b in zip(sequential, coalesced))


class TagModel:
    """Picklable constant-answer model for the pooled hot-swap probe.

    The tag IS the version marker: after a swap to a new tag, any response
    still carrying the old tag is a stale-version response by definition.
    """

    is_fitted = True
    size_bytes = 256

    def __init__(self, tag: float):
        self.tag = tag

    def estimate_batch(self, queries, n_samples=None, rngs=None):
        return np.full(len(queries), self.tag, dtype=np.float64)

    def estimate(self, query, **kwargs) -> float:
        return self.tag


def pooled_oracle_bitwise_check(workers: int, n_samples: int = 200) -> bool:
    """Sharded pool == sequential, bitwise, on the fp64 oracle engine."""
    rng = np.random.default_rng(7)
    years = rng.integers(1990, 1998, 40)
    root = Table.from_dict(
        "R", {"id": list(range(40)), "year": [int(y) for y in years]}
    )
    child_rows = [
        (int(rng.integers(0, 40)), int(rng.integers(0, 5))) for _ in range(70)
    ]
    child = Table.from_dict(
        "C", {"rid": [r[0] for r in child_rows], "kind": [r[1] for r in child_rows]}
    )
    schema = JoinSchema(
        tables={"R": root, "C": child},
        edges=[JoinEdge("R", "C", (("id", "rid"),))],
        root="R",
    )
    oracle = OracleModel(schema, factorization_bits=2, exclude=("R.id", "C.rid"))
    ps = ProgressiveSampler(oracle, oracle.layout, oracle.full_join_size)
    queries = [
        Query.make(["R"], [Predicate("R", "year", ">=", 1994)]),
        Query.make(["R", "C"], [Predicate("C", "kind", "IN", (0, 2, 4))]),
        Query.make(["R", "C"], [Predicate("R", "year", "<", 1993)]),
        Query.make(["C"], [Predicate("C", "kind", "=", 1)]),
        Query.make(["R", "C"], []),
    ]
    sequential = [
        ps.estimate(q, n_samples=n_samples, rng=np.random.default_rng(100 + i))
        for i, q in enumerate(queries)
    ]
    with WorkerPool(n_workers=workers, name="oracle", min_shard=1) as pool:
        pool.publish(ps, 1)
        pooled = [
            pool.estimate(q, seed=100 + i, n_samples=n_samples)
            for i, q in enumerate(queries)
        ]
    return all(a == b for a, b in zip(sequential, pooled))


def swap_under_load_check(workers: int, queries) -> dict:
    """Hot-swap the registry during pooled load; count failed/stale responses."""
    registry = ModelRegistry()
    registry.register("probe", TagModel(1.0))
    config = ServingConfig(
        workers=workers, max_batch=16, max_wait_us=500, cache_size=0, min_shard=1
    )
    failed = 0
    stale_post_swap = 0
    during: list = []
    stop = threading.Event()
    lock = threading.Lock()

    with EstimationService(registry, config=config) as service:
        service.estimate(queries[0], model="probe")  # warm the pool

        def client() -> None:
            nonlocal failed
            while not stop.is_set():
                try:
                    value = service.estimate(queries[0], model="probe")
                except BaseException:
                    with lock:
                        failed += 1
                    return
                with lock:
                    during.append(value)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.3)
        service.swap("probe", TagModel(2.0))
        # swap() returning means every worker acked the new version: from
        # here on, a 1.0 response would be served by a stale worker.
        for q in queries:
            if service.estimate(q, model="probe") != 2.0:
                stale_post_swap += 1
        stop.set()
        for t in threads:
            t.join(timeout=30)

    torn = [v for v in during if v not in (1.0, 2.0)]
    return {
        "failed_responses": failed,
        "stale_post_swap_responses": stale_post_swap,
        "torn_responses": len(torn),
        "responses_during_swap": len(during),
        "ok": int(failed == 0 and stale_post_swap == 0 and not torn),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serving_qps.json")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="also benchmark the multiprocess worker pool with N processes",
    )
    parser.add_argument(
        "--pool-out", default="BENCH_multiprocess_serving.json",
        help="report path for the --workers run",
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--depth", type=int, default=2,
        help="requests each client keeps in flight (closed-loop window)",
    )
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--n-queries", type=int, default=64)
    parser.add_argument("--n-samples", type=int, default=128)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-us", type=int, default=2000)
    parser.add_argument(
        "--no-check", action="store_true",
        help="report only; do not fail on the 3x / equivalence checks",
    )
    args = parser.parse_args()

    start = time.perf_counter()
    estimator = train_tiny_estimator(args.n_samples)
    train_seconds = time.perf_counter() - start
    requests = make_requests(estimator.schema, args.requests, args.n_queries)

    sequential_qps, sequential = run_sequential(
        estimator.inference, requests, args.n_samples
    )

    base_config = ServingConfig(
        max_batch=args.max_batch, max_wait_us=args.max_wait_us,
        cache_size=0,  # unique seeds anyway; keep the measurement honest
        n_samples=args.n_samples,
    )
    service = EstimationService(config=base_config)
    service.register("tiny", estimator)
    scheduler = service.scheduler("tiny")
    scheduler_qps, coalesced, latencies = run_scheduler(
        scheduler, requests, args.clients, args.depth
    )
    stats = scheduler.stats()
    service.close()

    speedup = scheduler_qps / sequential_qps
    rel_dev = float(
        np.max(np.abs(coalesced - sequential) / np.maximum(np.abs(sequential), 1e-12))
    )
    bitwise = oracle_bitwise_check()

    report = {
        "bench": "serving_qps",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "train_seconds": round(train_seconds, 2),
        "clients": args.clients,
        "depth": args.depth,
        "n_requests": len(requests),
        "n_samples": args.n_samples,
        "max_batch": args.max_batch,
        "max_wait_us": args.max_wait_us,
        "mean_batch_size": round(stats["mean_batch_size"], 2),
        "sequential_qps": round(sequential_qps, 2),
        "scheduler_qps": round(scheduler_qps, 2),
        "speedup": round(speedup, 2),
        "p50_ms": round(float(np.percentile(latencies, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(latencies, 95)) * 1e3, 2),
        "p99_ms": round(float(np.percentile(latencies, 99)) * 1e3, 2),
        "max_rel_dev_vs_sequential": rel_dev,
        "oracle_bitwise_match": int(bitwise),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    pool_report = None
    if args.workers > 0:
        pool_config = ServingConfig(
            max_batch=args.max_batch, max_wait_us=args.max_wait_us,
            cache_size=0, n_samples=args.n_samples, workers=args.workers,
        )
        pool_service = EstimationService(config=pool_config)
        pool_service.register("tiny", estimator)
        pool_scheduler = pool_service.scheduler("tiny")
        # Warm outside the measurement: spawn the workers and attach the
        # blob at the registry's current version before the clock starts.
        warm_model, warm_version = pool_service.registry.get_with_version("tiny")
        pool_service.pool("tiny").publish(warm_model, warm_version, wait=True)
        pool_qps, pooled, pool_latencies = run_scheduler(
            pool_scheduler, requests, args.clients, args.depth
        )
        pool_stats = pool_service.pool("tiny").stats()
        pool_service.close()

        pool_rel_dev = float(
            np.max(np.abs(pooled - sequential) / np.maximum(np.abs(sequential), 1e-12))
        )
        pool_bitwise = pooled_oracle_bitwise_check(args.workers)
        swap_probe = swap_under_load_check(
            args.workers, [req[0] for req in requests[:8]]
        )
        pool_report = {
            "bench": "multiprocess_serving",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "workers": args.workers,
            "clients": args.clients,
            "depth": args.depth,
            "n_requests": len(requests),
            "n_samples": args.n_samples,
            "shared_bytes": pool_stats["shared_bytes"],
            "chunks": pool_stats["chunks"],
            "respawns": pool_stats["respawns"],
            "pool_qps": round(pool_qps, 2),
            "scheduler_qps": round(scheduler_qps, 2),
            "scaling_x": round(pool_qps / scheduler_qps, 2),
            "p50_ms": round(float(np.percentile(pool_latencies, 50)) * 1e3, 2),
            "p95_ms": round(float(np.percentile(pool_latencies, 95)) * 1e3, 2),
            "max_rel_dev_vs_sequential": pool_rel_dev,
            "oracle_bitwise_match": int(pool_bitwise),
            "swap_under_load_ok": swap_probe["ok"],
            "swap_probe": swap_probe,
        }
        with open(args.pool_out, "w") as f:
            json.dump(pool_report, f, indent=2)
        print(json.dumps(pool_report, indent=2))
        print(f"[saved to {args.pool_out}]")

    if args.no_check:
        return
    failures = []
    if not bitwise:
        failures.append("scheduler is not bitwise-equal to the sequential oracle path")
    if rel_dev > 5e-6:
        failures.append(
            f"trained-model deviation vs sequential {rel_dev:.2e} exceeds 5e-6"
        )
    if speedup < 1.4:
        failures.append(
            f"scheduler speedup {speedup:.2f}x at {args.clients} clients is below 1.4x"
        )
    if pool_report is not None:
        if not pool_report["oracle_bitwise_match"]:
            failures.append("worker pool is not bitwise-equal to the fp64 oracle path")
        if pool_report["max_rel_dev_vs_sequential"] > 5e-6:
            failures.append(
                "pooled trained-model deviation vs sequential "
                f"{pool_report['max_rel_dev_vs_sequential']:.2e} exceeds 5e-6"
            )
        if not pool_report["swap_under_load_ok"]:
            failures.append(
                f"hot-swap under pooled load failed: {pool_report['swap_probe']}"
            )
        cores = os.cpu_count() or 1
        if cores >= args.workers and pool_report["scaling_x"] < 2.5:
            failures.append(
                f"pool scaling {pool_report['scaling_x']:.2f}x with "
                f"{args.workers} workers on {cores} cores is below 2.5x"
            )
        elif cores < args.workers:
            print(
                f"note: scaling check skipped ({cores} cores < "
                f"{args.workers} workers); measured {pool_report['scaling_x']:.2f}x"
            )
    if failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    passed = (
        f"checks passed: bitwise oracle match, rel dev {rel_dev:.1e} <= 5e-6, "
        f"{speedup:.2f}x >= 1.4x at {args.clients} clients"
    )
    if pool_report is not None:
        passed += (
            f"; pool bitwise + swap-under-load clean at {args.workers} workers "
            f"({pool_report['scaling_x']:.2f}x)"
        )
    print(passed)


if __name__ == "__main__":
    main()
