"""Table 2: JOB-light estimation errors across estimators.

Paper (real IMDB):
    Postgres   70KB   7.97   797   3e3    1e3
    IBJS       -      1.48   1e3   1e3    1e4
    MSCN       2.7MB  3.01   136   1e3    1e3
    DeepDB     3.7MB  1.32   4.90  33.7   72.0
    NeuroCard  3.8MB  1.57   5.91  8.48   8.51

Shape assertions: NeuroCard has the best tail (p99/max) among all
estimators; the data-driven estimators (NeuroCard, DeepDB) beat the
query-driven and classical ones at every quantile.
"""

from repro.baselines import IBJSEstimator, PostgresEstimator
from repro.eval.harness import evaluate_estimator, format_report

from conftest import write_result

PAPER_ROWS = {
    "Postgres": "    7.97      797.0     3000.0     1000.0",
    "IBJS": "    1.48     1000.0     1000.0    10000.0",
    "MSCN": "    3.01      136.0     1000.0     1000.0",
    "DeepDB": "    1.32        4.9       33.7       72.0",
    "NeuroCard": "    1.57        5.9        8.5        8.5",
}


def test_table2_job_light(light_env, neurocard_light, deepdb_light, mscn_light, benchmark):
    queries = light_env.queries["job-light"]
    truths = light_env.truths["job-light"]
    postgres = PostgresEstimator(light_env.schema)
    ibjs = IBJSEstimator(light_env.schema, light_env.counts, max_samples=150, seed=0)

    def run():
        return [
            evaluate_estimator("Postgres", postgres, queries, truths),
            evaluate_estimator("IBJS", ibjs, queries, truths),
            evaluate_estimator("MSCN", mscn_light, queries, truths),
            evaluate_estimator("DeepDB", deepdb_light, queries, truths),
            evaluate_estimator("NeuroCard", neurocard_light, queries, truths),
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table2_joblight",
        format_report("Table 2: JOB-light estimation errors", results, PAPER_ROWS),
    )

    by_name = {r.name: r.summary() for r in results}
    nc = by_name["NeuroCard"]
    # NeuroCard wins the tail (the headline claim).
    for other in ("Postgres", "IBJS", "MSCN"):
        assert nc.p99 <= by_name[other].p99
        assert nc.maximum <= by_name[other].maximum
    assert nc.maximum <= by_name["DeepDB"].maximum
    # Data-driven estimators dominate the classical/query-driven at median.
    assert min(nc.median, by_name["DeepDB"].median) <= by_name["Postgres"].median
    assert nc.median < 3.0
