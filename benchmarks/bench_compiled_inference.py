"""Compiled-inference benchmark + equivalence gate (CI job).

Trains a small NeuroCard at the paper's Base architecture (d_emb 16,
d_ff 128 — the fig. 7d configuration) on a scaled-down JOB-light schema
and compares three engines over one batch of >= 64 range queries:

* ``off``   — the PR 1 batched path (``ProgressiveSampler``), the
  reference and correctness oracle;
* ``fp64``  — the compiled executor running the reference forward: must
  be **bitwise-equal** to ``off`` (pins that the executor restructure and
  all routing add zero drift);
* ``fp32``  — the compiled executor + compiled kernels (folded-embedding
  LUTs, wildcard-constant cache, prefix-sliced blocks, batched indicator
  runs, fp32 scratch): must keep estimates within 1e-4 relative of the
  reference (median; p90 within 1e-3 guards stray Monte Carlo boundary
  flips) and deliver **>= 2x** the reference's median batched latency.

On top of the fp32 gate, the quantized + adaptive serving kernels are
measured and gated against the same workload:

* ``int16`` / ``int8`` — quantized LUT kernels (per-channel scales, fp32
  GEMM accumulate): per-query drift vs the fp64 oracle must stay within
  the documented accuracy-ladder bounds (1e-3 / 5e-2 relative), and int8
  must not be slower than fp32 on median batched latency (the win comes
  from the bandwidth-bound fold/buffer path; GEMMs stay fp32 BLAS);
* ``adaptive`` — variance-adaptive sampling (``max_rel_var``): probe walks
  escalate only non-converged queries, which must beat the fixed-samples
  path on median batched latency and raise the delivered QPS floor.

Reference and compiled rounds are interleaved so machine drift hits both
paths alike; one automatic re-measure absorbs a transient spike before the
speedup assertion fails the build. Writes ``BENCH_compiled_inference.json``
for ``check_regression.py`` and the bench-trajectory artifact.

Run:  PYTHONPATH=src python benchmarks/bench_compiled_inference.py [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.core.inference import (
    build_engine,
    compiled_model,
    measure_quantization_drift,
    precompile_plan,
)
from repro.joins.counts import JoinCounts
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

SPEEDUP_FLOOR = 2.0
REL_MEDIAN_TOL = 1e-4
REL_P90_TOL = 1e-3
#: Documented per-query drift ceilings vs the fp64 oracle (docs/accuracy.md).
QUANT_DRIFT_BOUNDS = {"int16": 1e-3, "int8": 5e-2}
#: int8 kernels must at least match fp32 on median batched latency.
QUANT_SPEEDUP_FLOOR = 1.0
#: Adaptive sampling must beat the fixed-samples walk on the same batch.
#: At 0.15 relative standard error roughly a quarter of the range workload
#: escalates (measured ~1.7x): the gate exercises both the early-stop and
#: the escalation path instead of degenerating to all-probe or all-full.
ADAPTIVE_SPEEDUP_FLOOR = 1.2
ADAPTIVE_MAX_REL_VAR = 0.15


def measure_interleaved(ref_fn, fast_fn, rounds: int) -> tuple[float, float, float]:
    """Median latencies + median per-round speedup, rounds interleaved.

    Each round times the reference and the compiled path back to back, so
    machine drift hits both alike; the gated speedup is the median of the
    per-round ratios (pairing cancels drift that a ratio of medians keeps).
    """
    ref_fn(), fast_fn()  # warm plans, tries, compiled kernels
    ref_times, fast_times = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        ref_fn()
        ref_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        fast_fn()
        fast_times.append(time.perf_counter() - start)
    ratios = np.array(ref_times) / np.array(fast_times)
    return (
        float(np.median(ref_times)),
        float(np.median(fast_times)),
        float(np.median(ratios)),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_compiled_inference.json")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--n-samples", type=int, default=128)
    parser.add_argument("--rounds", type=int, default=7)
    args = parser.parse_args()
    if args.batch_size < 64:
        sys.exit("the gate is defined at batch >= 64")

    schema = job_light_schema(ImdbScale(n_title=600))
    counts = JoinCounts(schema)
    config = NeuroCardConfig(
        d_emb=16, d_ff=128, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=60_000, learning_rate=5e-3,
        progressive_samples=args.n_samples, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    start = time.perf_counter()
    estimator = NeuroCard(schema, config).fit(compile=False)
    train_seconds = time.perf_counter() - start
    queries = job_light_ranges_queries(schema, n=args.batch_size, counts=counts)

    J = estimator.counts.full_join_size
    reference = build_engine(estimator.model, estimator.layout, J, "off")
    oracle = build_engine(estimator.model, estimator.layout, J, "fp64")
    compiled = build_engine(estimator.model, estimator.layout, J, "fp32")
    quantized = {
        mode: build_engine(
            estimator.model, estimator.layout, J, "fp32", quantization=mode
        )
        for mode in ("int16", "int8")
    }

    start = time.perf_counter()
    seeded = sum(
        precompile_plan(compiled, compiled.plan(query)) for query in queries
    )
    compile_ms = (time.perf_counter() - start) * 1e3
    for engine in quantized.values():
        for query in queries:
            precompile_plan(engine, engine.plan(query))

    def run(engine):
        return engine.estimate_batch(
            queries, n_samples=args.n_samples,
            rngs=[np.random.default_rng(1000 + i) for i in range(len(queries))],
        )

    # Equivalence: fp64 oracle mode must be bitwise, fp32 within tolerance.
    est_ref, est_oracle, est_fp32 = run(reference), run(oracle), run(compiled)
    oracle_bitwise = int(np.array_equal(est_ref, est_oracle))
    rel = np.abs(est_fp32 - est_ref) / np.maximum(np.abs(est_ref), 1e-12)
    rel_median, rel_p90 = float(np.median(rel)), float(np.quantile(rel, 0.9))
    fp32_within_tol = int(rel_median <= REL_MEDIAN_TOL and rel_p90 <= REL_P90_TOL)

    def ref_fn():
        reference.estimate_batch(
            queries, n_samples=args.n_samples, rng=np.random.default_rng(0)
        )

    def fast_fn():
        compiled.estimate_batch(
            queries, n_samples=args.n_samples, rng=np.random.default_rng(0)
        )

    ref_s, fast_s, speedup = measure_interleaved(ref_fn, fast_fn, args.rounds)
    for _ in range(2):  # re-measure absorbs transient load spikes
        if speedup >= SPEEDUP_FLOOR:
            break
        ref_s, fast_s, speedup = measure_interleaved(ref_fn, fast_fn, args.rounds)

    # ---- Quantized kernels: drift vs the fp64 oracle + latency vs fp32.
    quant = {}
    for mode, engine in quantized.items():
        rel_drift = measure_quantization_drift(
            engine, queries, n_samples=args.n_samples, seed=2000
        )
        drift_p90 = float(np.quantile(rel_drift, 0.9))

        def quant_fn(engine=engine):
            engine.estimate_batch(
                queries, n_samples=args.n_samples, rng=np.random.default_rng(0)
            )

        _, quant_s, quant_speedup = measure_interleaved(
            fast_fn, quant_fn, args.rounds
        )
        floor = QUANT_SPEEDUP_FLOOR if mode == "int8" else 0.0
        for _ in range(2):
            if quant_speedup >= floor:
                break
            _, quant_s, quant_speedup = measure_interleaved(
                fast_fn, quant_fn, args.rounds
            )
        quant[mode] = {
            "ms": round(quant_s * 1e3, 2),
            "speedup_vs_fp32": round(quant_speedup, 3),
            "drift_rel_p50": float(np.median(rel_drift)),
            "drift_rel_p90": drift_p90,
            "drift_rel_max": float(rel_drift.max()),
            "within_bound": int(drift_p90 <= QUANT_DRIFT_BOUNDS[mode]),
            "size_kb": round(compiled_model(engine).size_bytes / 1024, 1),
        }

    # ---- Variance-adaptive sampling: fixed walk vs probe-and-escalate.
    def adaptive_fn():
        compiled.estimate_batch(
            queries, n_samples=args.n_samples, rng=np.random.default_rng(0),
            max_rel_var=ADAPTIVE_MAX_REL_VAR,
        )

    _, adaptive_s, adaptive_speedup = measure_interleaved(
        fast_fn, adaptive_fn, args.rounds
    )
    for _ in range(2):
        if adaptive_speedup >= ADAPTIVE_SPEEDUP_FLOOR:
            break
        _, adaptive_s, adaptive_speedup = measure_interleaved(
            fast_fn, adaptive_fn, args.rounds
        )
    adaptive_state = compiled.last_adaptive
    escalated_frac = float(adaptive_state["escalated"].mean())

    report = {
        "bench": "compiled_inference",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "train_seconds": round(train_seconds, 2),
        "n_queries": len(queries),
        "n_samples": args.n_samples,
        "rounds": args.rounds,
        "reference_ms": round(ref_s * 1e3, 2),
        "compiled_ms": round(fast_s * 1e3, 2),
        "speedup": round(speedup, 3),
        "compiled_qps": round(len(queries) / fast_s, 2),
        "oracle_bitwise_match": oracle_bitwise,
        "fp32_within_tol": fp32_within_tol,
        "fp32_rel_median": rel_median,
        "fp32_rel_p90": rel_p90,
        "precompiled_patterns": seeded,
        "precompile_ms": round(compile_ms, 2),
        "compiled_extra_kb": round(
            compiled_model(compiled).size_bytes / 1024, 1
        ),
        "int16_ms": quant["int16"]["ms"],
        "int16_speedup_vs_fp32": quant["int16"]["speedup_vs_fp32"],
        "int16_drift_rel_p90": quant["int16"]["drift_rel_p90"],
        "int16_within_bound": quant["int16"]["within_bound"],
        "int16_size_kb": quant["int16"]["size_kb"],
        "int8_ms": quant["int8"]["ms"],
        "int8_speedup_vs_fp32": quant["int8"]["speedup_vs_fp32"],
        "int8_drift_rel_p90": quant["int8"]["drift_rel_p90"],
        "int8_within_bound": quant["int8"]["within_bound"],
        "int8_size_kb": quant["int8"]["size_kb"],
        "adaptive_ms": round(adaptive_s * 1e3, 2),
        "adaptive_speedup": round(adaptive_speedup, 3),
        "adaptive_qps": round(len(queries) / adaptive_s, 2),
        "adaptive_escalated_frac": round(escalated_frac, 3),
        "adaptive_max_rel_var": ADAPTIVE_MAX_REL_VAR,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    failures = []
    if not oracle_bitwise:
        failures.append("fp64 oracle mode is not bitwise-equal to the reference")
    if not fp32_within_tol:
        failures.append(
            f"fp32 drift median={rel_median:.2e} p90={rel_p90:.2e} "
            f"exceeds ({REL_MEDIAN_TOL:.0e}, {REL_P90_TOL:.0e})"
        )
    if speedup < SPEEDUP_FLOOR:
        failures.append(
            f"compiled speedup {speedup:.2f}x < {SPEEDUP_FLOOR:.1f}x "
            f"({ref_s * 1e3:.1f}ms -> {fast_s * 1e3:.1f}ms)"
        )
    for mode in ("int16", "int8"):
        if not quant[mode]["within_bound"]:
            failures.append(
                f"{mode} drift p90={quant[mode]['drift_rel_p90']:.2e} exceeds "
                f"the documented {QUANT_DRIFT_BOUNDS[mode]:.0e} bound"
            )
    if quant["int8"]["speedup_vs_fp32"] < QUANT_SPEEDUP_FLOOR:
        failures.append(
            f"int8 kernels {quant['int8']['speedup_vs_fp32']:.2f}x vs fp32 "
            f"< {QUANT_SPEEDUP_FLOOR:.1f}x (quantization must not cost latency)"
        )
    if adaptive_speedup < ADAPTIVE_SPEEDUP_FLOOR:
        failures.append(
            f"adaptive sampling {adaptive_speedup:.2f}x vs fixed walk "
            f"< {ADAPTIVE_SPEEDUP_FLOOR:.1f}x at max_rel_var="
            f"{ADAPTIVE_MAX_REL_VAR}"
        )
    if failures:
        sys.exit("compiled-inference gate FAILED: " + "; ".join(failures))
    print(
        f"compiled-inference gate passed: {speedup:.2f}x at batch "
        f"{len(queries)}, oracle bitwise, fp32 within tolerance, "
        f"int8 {quant['int8']['speedup_vs_fp32']:.2f}x vs fp32 within drift "
        f"bounds, adaptive {adaptive_speedup:.2f}x "
        f"({escalated_frac:.0%} escalated)."
    )


if __name__ == "__main__":
    main()
