"""Figure 7d: per-query inference latency CDFs, plus batched serving.

Paper: MSCN is fastest (lightweight net); DeepDB spans ~1-100 ms depending
on query complexity; NeuroCard sits at a predictable ~17 ms median (more
FLOPs, but a fixed number of progressive-sampling forward passes).

Shape assertions: MSCN's median latency is the lowest; NeuroCard's latency
spread (p95/median) is tighter than DeepDB's relative spread or at least
bounded; all latencies are reported as CDFs. The batched engine adds an
amortized-latency series and a throughput comparison: packing ≥ 16 queries
through ``estimate_batch`` must be at least 1.8x the sequential loop's
queries/sec at equal ``n_samples`` (both paths ride the compiled fp32
kernels, which lifted the sequential baseline), and the compiled engine
must beat the reference batched path on top.
"""

import json
import os

import numpy as np

from repro.eval.figures import ascii_cdf
from repro.eval.harness import evaluate_estimator

from bench_timing import measure_serving_paths
from conftest import RESULTS_DIR, write_result


def test_fig7d_inference_latency(
    light_env, neurocard_light, deepdb_light, mscn_light, benchmark
):
    queries = light_env.queries["ranges"][:120]
    truths = light_env.truths["ranges"][:120]

    def run():
        return {
            "MSCN": evaluate_estimator("MSCN", mscn_light, queries, truths),
            "DeepDB": evaluate_estimator("DeepDB", deepdb_light, queries, truths),
            "NeuroCard": evaluate_estimator("NeuroCard", neurocard_light, queries, truths),
            "NeuroCard-batch": evaluate_estimator(
                "NeuroCard-batch", neurocard_light, queries, truths, batch_size=32
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {name: res.latencies_ms for name, res in results.items()}
    text = ascii_cdf(series, "Figure 7d: inference latency CDFs (ms, log10)")
    med = {name: np.median(lat) for name, lat in series.items()}
    spread = {
        name: np.quantile(lat, 0.95) / max(np.median(lat), 1e-9)
        for name, lat in series.items()
    }
    text += "\n" + "\n".join(
        f"  {name:<16} median={med[name]:.2f}ms p95/median={spread[name]:.2f}"
        for name in series
    )
    write_result("fig7d_latency", text)

    # MSCN (one tiny forward pass) is the fastest at the median.
    assert med["MSCN"] <= med["NeuroCard"]
    assert med["MSCN"] <= med["DeepDB"]
    # NeuroCard's latencies are predictable (tight spread, paper's point).
    assert spread["NeuroCard"] < 6.0
    # Batched serving amortizes below the sequential per-query latency.
    assert med["NeuroCard-batch"] < med["NeuroCard"]


def test_fig7d_batched_throughput(light_env, neurocard_light, benchmark):
    """estimate_batch >= 1.8x the (compiled) sequential loop's queries/sec
    at >= 16 queries, and the compiled engine beats the reference batched
    path on top."""
    import numpy as np

    from bench_timing import median_of
    from repro.core.inference import build_engine

    inference = neurocard_light.inference
    n_samples = 256
    batch_sizes = (16, 32)
    queries = light_env.queries["ranges"][: max(batch_sizes)]

    # Compiled-vs-reference batched engines over the same trained weights.
    reference = build_engine(
        neurocard_light.model, neurocard_light.layout,
        neurocard_light.full_join_size, "off",
    )
    compiled = build_engine(
        neurocard_light.model, neurocard_light.layout,
        neurocard_light.full_join_size, "fp32",
    )

    def run():
        rows = {
            size: measure_serving_paths(inference, queries[:size], n_samples)
            for size in batch_sizes
        }
        batch = queries[: max(batch_sizes)]
        ref_s = median_of(lambda: reference.estimate_batch(
            batch, n_samples=n_samples, rng=np.random.default_rng(0)))
        fast_s = median_of(lambda: compiled.estimate_batch(
            batch, n_samples=n_samples, rng=np.random.default_rng(0)))
        return rows, ref_s, fast_s

    rows, ref_s, fast_s = benchmark.pedantic(run, rounds=1, iterations=1)
    compiled_speedup = ref_s / fast_s
    text = "\n".join(
        [f"Figure 7d addendum: batched throughput (n_samples={n_samples})"]
        + [
            f"  batch={size:<3d} sequential {r['sequential_qps']:7.1f} q/s | "
            f"batched {r['batched_qps']:7.1f} q/s | speedup {r['speedup']:.2f}x"
            for size, r in rows.items()
        ]
        + [
            f"  compiled engine (batch={max(batch_sizes)}): reference "
            f"{ref_s * 1e3:7.1f} ms | compiled {fast_s * 1e3:7.1f} ms | "
            f"{compiled_speedup:.2f}x"
        ]
    )
    write_result("fig7d_batched_throughput", text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_batched_throughput.json"), "w") as f:
        json.dump(
            {
                "n_samples": n_samples,
                "batches": rows,
                "compiled_speedup": round(compiled_speedup, 3),
            },
            f, indent=2,
        )

    for size, r in rows.items():
        # Re-based from 3x when the compiled kernels lifted the sequential
        # denominator (batch-of-1 now runs the same compiled fast path);
        # measured ~2.1x/~2.5x at batch 16/32 on a developer box.
        assert r["speedup"] >= 1.8, (
            f"batched path only {r['speedup']:.2f}x sequential at batch={size}"
        )
    # The hard >= 2x gate lives in bench_compiled_inference.py (batch 64);
    # at batch 32 the compiled engine must still clearly win.
    assert compiled_speedup >= 1.3, (
        f"compiled engine only {compiled_speedup:.2f}x the reference batched path"
    )
