"""Figure 7d: per-query inference latency CDFs.

Paper: MSCN is fastest (lightweight net); DeepDB spans ~1-100 ms depending
on query complexity; NeuroCard sits at a predictable ~17 ms median (more
FLOPs, but a fixed number of progressive-sampling forward passes).

Shape assertions: MSCN's median latency is the lowest; NeuroCard's latency
spread (p95/median) is tighter than DeepDB's relative spread or at least
bounded; all latencies are reported as CDFs.
"""

import numpy as np

from repro.eval.figures import ascii_cdf
from repro.eval.harness import evaluate_estimator

from conftest import write_result


def test_fig7d_inference_latency(
    light_env, neurocard_light, deepdb_light, mscn_light, benchmark
):
    queries = light_env.queries["ranges"][:120]
    truths = light_env.truths["ranges"][:120]

    def run():
        return {
            "MSCN": evaluate_estimator("MSCN", mscn_light, queries, truths),
            "DeepDB": evaluate_estimator("DeepDB", deepdb_light, queries, truths),
            "NeuroCard": evaluate_estimator("NeuroCard", neurocard_light, queries, truths),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {name: res.latencies_ms for name, res in results.items()}
    text = ascii_cdf(series, "Figure 7d: inference latency CDFs (ms, log10)")
    med = {name: np.median(lat) for name, lat in series.items()}
    spread = {
        name: np.quantile(lat, 0.95) / max(np.median(lat), 1e-9)
        for name, lat in series.items()
    }
    text += "\n" + "\n".join(
        f"  {name:<10} median={med[name]:.2f}ms p95/median={spread[name]:.2f}"
        for name in series
    )
    write_result("fig7d_latency", text)

    # MSCN (one tiny forward pass) is the fastest at the median.
    assert med["MSCN"] <= med["NeuroCard"]
    assert med["MSCN"] <= med["DeepDB"]
    # NeuroCard's latencies are predictable (tight spread, paper's point).
    assert spread["NeuroCard"] < 6.0
