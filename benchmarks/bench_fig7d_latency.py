"""Figure 7d: per-query inference latency CDFs, plus batched serving.

Paper: MSCN is fastest (lightweight net); DeepDB spans ~1-100 ms depending
on query complexity; NeuroCard sits at a predictable ~17 ms median (more
FLOPs, but a fixed number of progressive-sampling forward passes).

Shape assertions: MSCN's median latency is the lowest; NeuroCard's latency
spread (p95/median) is tighter than DeepDB's relative spread or at least
bounded; all latencies are reported as CDFs. The batched engine adds an
amortized-latency series and a throughput comparison: packing ≥ 16 queries
through ``estimate_batch`` must be at least 1.8x the sequential loop's
queries/sec at equal ``n_samples`` (both paths ride the compiled fp32
kernels, which lifted the sequential baseline), and the compiled engine
must beat the reference batched path on top.

Standalone CI-smoke mode (no pytest, same small model as
``bench_compiled_inference.py``)::

    PYTHONPATH=src python benchmarks/bench_fig7d_latency.py --out PATH

measures the fig. 7d latency properties on the compiled fp32 engine —
per-query median + p95/median predictability spread, batched QPS, and
variance-adaptive QPS at ``max_rel_var=0.15`` — and writes ``fig7d.*``
metrics for ``check_regression.py``. The adaptive path must beat the
fixed-samples walk by >= 1.2x (the floor that PR's adaptive sampling
raised); the predictability spread is gated in-script.
"""

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from bench_timing import measure_serving_paths, median_of


def test_fig7d_inference_latency(
    light_env, neurocard_light, deepdb_light, mscn_light, benchmark
):
    from conftest import write_result
    from repro.eval.figures import ascii_cdf
    from repro.eval.harness import evaluate_estimator

    queries = light_env.queries["ranges"][:120]
    truths = light_env.truths["ranges"][:120]

    def run():
        return {
            "MSCN": evaluate_estimator("MSCN", mscn_light, queries, truths),
            "DeepDB": evaluate_estimator("DeepDB", deepdb_light, queries, truths),
            "NeuroCard": evaluate_estimator("NeuroCard", neurocard_light, queries, truths),
            "NeuroCard-batch": evaluate_estimator(
                "NeuroCard-batch", neurocard_light, queries, truths, batch_size=32
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    series = {name: res.latencies_ms for name, res in results.items()}
    text = ascii_cdf(series, "Figure 7d: inference latency CDFs (ms, log10)")
    med = {name: np.median(lat) for name, lat in series.items()}
    spread = {
        name: np.quantile(lat, 0.95) / max(np.median(lat), 1e-9)
        for name, lat in series.items()
    }
    text += "\n" + "\n".join(
        f"  {name:<16} median={med[name]:.2f}ms p95/median={spread[name]:.2f}"
        for name in series
    )
    write_result("fig7d_latency", text)

    # MSCN (one tiny forward pass) is the fastest at the median.
    assert med["MSCN"] <= med["NeuroCard"]
    assert med["MSCN"] <= med["DeepDB"]
    # NeuroCard's latencies are predictable (tight spread, paper's point).
    assert spread["NeuroCard"] < 6.0
    # Batched serving amortizes below the sequential per-query latency.
    assert med["NeuroCard-batch"] < med["NeuroCard"]


def test_fig7d_batched_throughput(light_env, neurocard_light, benchmark):
    """estimate_batch >= 1.8x the (compiled) sequential loop's queries/sec
    at >= 16 queries, and the compiled engine beats the reference batched
    path on top."""
    from conftest import RESULTS_DIR, write_result
    from repro.core.inference import build_engine

    inference = neurocard_light.inference
    n_samples = 256
    batch_sizes = (16, 32)
    queries = light_env.queries["ranges"][: max(batch_sizes)]

    # Compiled-vs-reference batched engines over the same trained weights.
    reference = build_engine(
        neurocard_light.model, neurocard_light.layout,
        neurocard_light.full_join_size, "off",
    )
    compiled = build_engine(
        neurocard_light.model, neurocard_light.layout,
        neurocard_light.full_join_size, "fp32",
    )

    def run():
        rows = {
            size: measure_serving_paths(inference, queries[:size], n_samples)
            for size in batch_sizes
        }
        batch = queries[: max(batch_sizes)]
        ref_s = median_of(lambda: reference.estimate_batch(
            batch, n_samples=n_samples, rng=np.random.default_rng(0)))
        fast_s = median_of(lambda: compiled.estimate_batch(
            batch, n_samples=n_samples, rng=np.random.default_rng(0)))
        return rows, ref_s, fast_s

    rows, ref_s, fast_s = benchmark.pedantic(run, rounds=1, iterations=1)
    compiled_speedup = ref_s / fast_s
    text = "\n".join(
        [f"Figure 7d addendum: batched throughput (n_samples={n_samples})"]
        + [
            f"  batch={size:<3d} sequential {r['sequential_qps']:7.1f} q/s | "
            f"batched {r['batched_qps']:7.1f} q/s | speedup {r['speedup']:.2f}x"
            for size, r in rows.items()
        ]
        + [
            f"  compiled engine (batch={max(batch_sizes)}): reference "
            f"{ref_s * 1e3:7.1f} ms | compiled {fast_s * 1e3:7.1f} ms | "
            f"{compiled_speedup:.2f}x"
        ]
    )
    write_result("fig7d_batched_throughput", text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_batched_throughput.json"), "w") as f:
        json.dump(
            {
                "n_samples": n_samples,
                "batches": rows,
                "compiled_speedup": round(compiled_speedup, 3),
            },
            f, indent=2,
        )

    for size, r in rows.items():
        # Re-based from 3x when the compiled kernels lifted the sequential
        # denominator (batch-of-1 now runs the same compiled fast path);
        # measured ~2.1x/~2.5x at batch 16/32 on a developer box.
        assert r["speedup"] >= 1.8, (
            f"batched path only {r['speedup']:.2f}x sequential at batch={size}"
        )
    # The hard >= 2x gate lives in bench_compiled_inference.py (batch 64);
    # at batch 32 the compiled engine must still clearly win.
    assert compiled_speedup >= 1.3, (
        f"compiled engine only {compiled_speedup:.2f}x the reference batched path"
    )


# ----------------------------------------------------------------------
# Standalone CI-smoke mode (pytest-free): fig7d.* metrics + latency gate.
# ----------------------------------------------------------------------

#: Paper's predictability claim: NeuroCard's per-query p95/median stays tight.
SPREAD_CEILING = 6.0
#: The adaptive path must beat the fixed-samples batched walk.
ADAPTIVE_SPEEDUP_FLOOR = 1.2
ADAPTIVE_MAX_REL_VAR = 0.15


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fig7d_latency.json")
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--n-samples", type=int, default=128)
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args()

    from repro.core import NeuroCard, NeuroCardConfig
    from repro.core.inference import build_engine, precompile_plan
    from repro.joins.counts import JoinCounts
    from repro.workloads import job_light_ranges_queries, job_light_schema
    from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

    schema = job_light_schema(ImdbScale(n_title=600))
    counts = JoinCounts(schema)
    config = NeuroCardConfig(
        d_emb=16, d_ff=128, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=60_000, learning_rate=5e-3,
        progressive_samples=args.n_samples, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    start = time.perf_counter()
    estimator = NeuroCard(schema, config).fit(compile=False)
    train_seconds = time.perf_counter() - start
    queries = job_light_ranges_queries(schema, n=args.batch_size, counts=counts)

    J = estimator.counts.full_join_size
    compiled = build_engine(estimator.model, estimator.layout, J, "fp32")
    for query in queries:
        precompile_plan(compiled, compiled.plan(query))

    # Per-query latencies (the paper's CDF view): one warm pass, then one
    # timed pass per round; per-query medians across rounds form the CDF.
    for query in queries:
        compiled.estimate(
            query, n_samples=args.n_samples, rng=np.random.default_rng(0)
        )
    per_query = np.empty((args.rounds, len(queries)))
    for r in range(args.rounds):
        for i, query in enumerate(queries):
            start = time.perf_counter()
            compiled.estimate(
                query, n_samples=args.n_samples, rng=np.random.default_rng(i)
            )
            per_query[r, i] = time.perf_counter() - start
    lat_ms = np.median(per_query, axis=0) * 1e3
    seq_p50_ms = float(np.median(lat_ms))
    spread = float(np.quantile(lat_ms, 0.95) / max(seq_p50_ms, 1e-9))

    def fixed_fn():
        compiled.estimate_batch(
            queries, n_samples=args.n_samples, rng=np.random.default_rng(0)
        )

    def adaptive_fn():
        compiled.estimate_batch(
            queries, n_samples=args.n_samples, rng=np.random.default_rng(0),
            max_rel_var=ADAPTIVE_MAX_REL_VAR,
        )

    fixed_s = median_of(fixed_fn, rounds=args.rounds)
    adaptive_s = median_of(adaptive_fn, rounds=args.rounds)
    for _ in range(2):  # re-measure absorbs transient load spikes
        if fixed_s / adaptive_s >= ADAPTIVE_SPEEDUP_FLOOR:
            break
        fixed_s = median_of(fixed_fn, rounds=args.rounds)
        adaptive_s = median_of(adaptive_fn, rounds=args.rounds)
    adaptive_speedup = fixed_s / adaptive_s
    escalated_frac = float(compiled.last_adaptive["escalated"].mean())
    batched_qps = len(queries) / fixed_s
    adaptive_qps = len(queries) / adaptive_s

    report = {
        "bench": "fig7d",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "train_seconds": round(train_seconds, 2),
        "n_queries": len(queries),
        "n_samples": args.n_samples,
        "rounds": args.rounds,
        "seq_p50_ms": round(seq_p50_ms, 3),
        "seq_p95_ms": round(float(np.quantile(lat_ms, 0.95)), 3),
        "spread_p95_over_p50": round(spread, 3),
        "latency_predictable": int(spread < SPREAD_CEILING),
        "batched_ms": round(fixed_s * 1e3, 2),
        "batched_qps": round(batched_qps, 2),
        "adaptive_ms": round(adaptive_s * 1e3, 2),
        "adaptive_qps": round(adaptive_qps, 2),
        "adaptive_speedup": round(adaptive_speedup, 3),
        "adaptive_escalated_frac": round(escalated_frac, 3),
        "adaptive_max_rel_var": ADAPTIVE_MAX_REL_VAR,
    }
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.out}]")

    failures = []
    if spread >= SPREAD_CEILING:
        failures.append(
            f"per-query p95/median spread {spread:.2f} >= {SPREAD_CEILING:.1f} "
            f"(latency no longer predictable)"
        )
    if adaptive_speedup < ADAPTIVE_SPEEDUP_FLOOR:
        failures.append(
            f"adaptive sampling {adaptive_speedup:.2f}x vs fixed walk "
            f"< {ADAPTIVE_SPEEDUP_FLOOR:.1f}x at max_rel_var="
            f"{ADAPTIVE_MAX_REL_VAR}"
        )
    if failures:
        sys.exit("fig7d latency gate FAILED: " + "; ".join(failures))
    print(
        f"fig7d latency gate passed: median {seq_p50_ms:.2f}ms/query "
        f"(spread {spread:.2f}), batched {batched_qps:.0f} q/s, adaptive "
        f"{adaptive_qps:.0f} q/s ({adaptive_speedup:.2f}x, "
        f"{escalated_frac:.0%} escalated)."
    )


if __name__ == "__main__":
    main()
