"""Table 3: JOB-light-ranges estimation errors (incl. -large variants).

Paper:
    Postgres        70KB   13.8   2e3    2e4    5e6
    IBJS            -      10.1   4e4    1e6    1e8
    MSCN            4.5MB  4.53   397    6e3    2e4
    DeepDB          4.4MB  3.40   537    8e3    2e5
    DeepDB-large    33.6MB 2.35   441    1e4    3e5
    NeuroCard       4.1MB  1.87   57.1   375    8169
    NeuroCard-large 23MB   1.49   44.0   300    4116

Shape: NeuroCard best across quantiles; enlarging both estimators helps at
the median; NeuroCard's tail advantage over DeepDB *widens* vs Table 2.
"""

from repro.baselines import DeepDBEstimator, IBJSEstimator, PostgresEstimator
from repro.core.estimator import NeuroCard
from repro.eval.harness import evaluate_estimator, format_report
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS

from conftest import base_config, write_result

PAPER_ROWS = {
    "Postgres": "   13.80     2000.0    20000.0  5000000.0",
    "IBJS": "   10.10    40000.0  1000000.0      1e8",
    "MSCN": "    4.53      397.0     6000.0    20000.0",
    "DeepDB": "    3.40      537.0     8000.0   200000.0",
    "DeepDB-large": "    2.35      441.0    10000.0   300000.0",
    "NeuroCard": "    1.87       57.1      375.0     8169.0",
    "NeuroCard-large": "    1.49       44.0      300.0     4116.0",
}


def test_table3_job_light_ranges(
    light_env, neurocard_light, deepdb_light, mscn_light, benchmark
):
    queries = light_env.queries["ranges"]
    truths = light_env.truths["ranges"]
    postgres = PostgresEstimator(light_env.schema)
    ibjs = IBJSEstimator(light_env.schema, light_env.counts, max_samples=150, seed=0)
    deepdb_large = DeepDBEstimator(
        light_env.schema,
        light_env.counts,
        n_samples=30_000,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
        large=True,
        seed=0,
    )
    nc_large = NeuroCard(
        light_env.schema,
        base_config(d_emb=32, d_ff=192, train_tuples=220_000, seed=1),
    ).fit()

    def run():
        results = [
            evaluate_estimator("Postgres", postgres, queries, truths),
            evaluate_estimator("IBJS", ibjs, queries, truths),
            evaluate_estimator("MSCN", mscn_light, queries, truths),
            evaluate_estimator("DeepDB", deepdb_light, queries, truths),
            evaluate_estimator("DeepDB-large", deepdb_large, queries, truths),
            evaluate_estimator("NeuroCard", neurocard_light, queries, truths),
            evaluate_estimator("NeuroCard-large", nc_large, queries, truths),
        ]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "table3_ranges",
        format_report("Table 3: JOB-light-ranges estimation errors", results, PAPER_ROWS),
    )

    by_name = {r.name: r.summary() for r in results}
    nc = by_name["NeuroCard"]
    # NeuroCard beats every baseline at p99 and max on the harder workload.
    for other in ("Postgres", "IBJS", "MSCN", "DeepDB", "DeepDB-large"):
        assert nc.p99 <= by_name[other].p99, other
    # The large NeuroCard is at least as good at the median.
    assert by_name["NeuroCard-large"].median <= nc.median * 1.25
    # NeuroCard model stays compact (a few MB at most).
    nc_result = next(r for r in results if r.name == "NeuroCard")
    assert nc_result.size_bytes < 64 * 2**20
