"""Figure 7c: wall-clock construction time comparison.

Paper: NeuroCard constructs fastest (join counts take 13 s, training ~3-7
min on GPU); DeepDB takes tens of minutes on CPU; MSCN's training itself is
quick but collecting true-cardinality labels for its training queries takes
hours (3.2 h for 10K queries).

Here everything runs on the same CPU substrate, so we report measured
construction times and assert the paper's *ordering of total cost*:
MSCN total (labels + training) exceeds NeuroCard's construction, and the
join-count preparation is a negligible fraction of NeuroCard's build.

The addendum quantifies why the build stays sampler-unbound: the
vectorized sample-and-tokenize pipeline (matrix sampler + fused encoder)
is measured against the per-row loop oracle at the training batch size.
"""

import time

import numpy as np

from repro.baselines import DeepDBEstimator, MSCNEstimator
from repro.core.encoding import FusedEncoder, Layout
from repro.core.estimator import NeuroCard
from repro.eval.harness import true_cardinalities
from repro.joins.sampler import LoopJoinSampler
from repro.workloads import job_light_ranges_queries
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS

from conftest import base_config, write_result


def test_fig7c_training_time(light_env, benchmark):
    schema = light_env.schema

    def run():
        timings = {}

        start = time.perf_counter()
        nc = NeuroCard(schema, base_config(train_tuples=120_000, seed=21)).fit()
        timings["NeuroCard build"] = time.perf_counter() - start
        timings["NeuroCard join counts"] = nc.prepare_seconds
        timings["NeuroCard train ktuples/s"] = nc.train_result.tuples_per_second / 1e3

        # Sampler-pipeline addendum: tuples/sec of draw+tokenize at the
        # training batch size, vectorized matrix path vs per-row loop oracle.
        batch, n_batches = 512, 8
        fused = FusedEncoder(nc.layout, nc.sampler)
        loop = LoopJoinSampler(schema, nc.counts, specs=nc.sampler.specs)
        loop_layout = Layout(schema, nc.counts, nc.sampler.specs, 14)
        rng = np.random.default_rng(23)
        start = time.perf_counter()
        for _ in range(n_batches):
            fused.encode_row_ids(nc.sampler.sample_row_id_matrix(batch, rng))
        timings["Sampler ktuples/s (vec)"] = (
            n_batches * batch / (time.perf_counter() - start) / 1e3
        )
        start = time.perf_counter()
        for _ in range(n_batches):
            loop_layout.encode_batch(loop.sample_batch(batch, rng))
        timings["Sampler ktuples/s (loop)"] = (
            n_batches * batch / (time.perf_counter() - start) / 1e3
        )

        start = time.perf_counter()
        DeepDBEstimator(
            schema, light_env.counts, n_samples=30_000,
            exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=21,
        )
        timings["DeepDB build"] = time.perf_counter() - start

        start = time.perf_counter()
        train = job_light_ranges_queries(schema, n=300, seed=22, counts=light_env.counts)
        cards = true_cardinalities(schema, train, light_env.counts)
        timings["MSCN labels"] = time.perf_counter() - start
        start = time.perf_counter()
        MSCNEstimator(schema, train, cards, epochs=50, seed=21)
        timings["MSCN training"] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Figure 7c: wall-clock construction (paper: NeuroCard 3-7 min incl. "
        "13 s join counts; DeepDB 24-38 min; MSCN 3 min + 3.2 h labels); "
        "throughput rows are labelled in ktuples/s",
        f"{'phase':<24} {'value':>9}",
    ]
    for phase, value in timings.items():
        lines.append(f"{phase:<24} {value:>9.2f}")
    write_result("fig7c_train_time", "\n".join(lines))

    # Join-count preparation is a small fraction of the total build (paper: 13 s).
    assert timings["NeuroCard join counts"] < 0.25 * timings["NeuroCard build"]
    # Training stays model-bound: the vectorized sample-and-tokenize path
    # sustains >= 3x the per-row loop sampler at the training batch size.
    assert timings["Sampler ktuples/s (vec)"] >= 3 * timings["Sampler ktuples/s (loop)"]
    # Label collection dominates MSCN's own training phase at equal query
    # budgets once per-query execution costs grow with data size; at minimum
    # it is a substantial extra cost NeuroCard does not pay.
    assert timings["MSCN labels"] > 0
    assert timings["NeuroCard build"] > 0 and timings["DeepDB build"] > 0
