"""Incremental updates under partition appends (paper §7.6 / Table 6).

Partitions the synthetic IMDB database on production year, ingests the
partitions one by one, and compares a stale estimator against fast
incremental updates — printing the accuracy recovery and update cost.

Run:  python examples/incremental_updates.py      (~2 minutes on CPU)
"""

import time

from repro.core import NeuroCard, NeuroCardConfig
from repro.eval.harness import evaluate_estimator, true_cardinalities
from repro.eval.updates import partition_by_year
from repro.joins.counts import JoinCounts
from repro.workloads import job_light_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


def main() -> None:
    schema = job_light_schema(ImdbScale(n_title=1000))
    snapshots = partition_by_year(schema, n_partitions=4)
    queries = job_light_queries(schema, n=25, counts=JoinCounts(schema))

    config = NeuroCardConfig(
        train_tuples=300_000, batch_size=512, learning_rate=5e-3,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
    )
    stale = NeuroCard(snapshots[0], config).fit()
    fresh = NeuroCard(snapshots[0], config).fit()

    print(f"{'ingest':>6} {'titles':>7} | {'stale p95':>10} | {'updated p95':>11} {'update-s':>9}")
    for k, snapshot in enumerate(snapshots):
        counts = JoinCounts(snapshot)
        truths = true_cardinalities(snapshot, queries, counts)
        update_seconds = 0.0
        if k > 0:
            start = time.perf_counter()
            fresh.update(snapshot, train_tuples=8_192)  # ~3% of the budget
            update_seconds = time.perf_counter() - start
        stale_p95 = evaluate_estimator("stale", stale, queries, truths).summary().p95
        fresh_p95 = evaluate_estimator("fresh", fresh, queries, truths).summary().p95
        print(f"{k + 1:>6} {snapshot.table('title').n_rows:>7} | "
              f"{stale_p95:>10.2f} | {fresh_p95:>11.2f} {update_seconds:>9.2f}")

    print("\nThe stale model degrades as new partitions shift the data "
          "distribution; a few seconds of incremental training recover it.")


if __name__ == "__main__":
    main()
