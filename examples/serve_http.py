"""Serve cardinality estimates over HTTP, and hot-swap the model mid-traffic.

Trains a small NeuroCard on the JOB-light schema, puts it behind the
stdlib asyncio HTTP front end (`repro.serving.http`), and drives it three
ways while closed-loop client threads keep traffic flowing:

1. a raw JSON request (exactly what ``curl`` would send, filter DSL and
   all) posted with ``http.client`` — no repro import needed on the caller;
2. the `HttpEstimationClient` wire adapter, whose pinned-seed answers are
   bitwise-equal to the in-process path;
3. a **hot-swap under live load**: a longer-trained replacement model is
   swapped in through the registry while the clients hammer the server,
   and the script proves no request failed or observed a torn model — the
   served estimates simply switch distribution at one request boundary.

It finishes with the operational surface: `/healthz` (models, refresher
liveness, admission occupancy) and a `/metrics` scrape whose counters
reconcile exactly with the number of requests the clients sent.

Run:  PYTHONPATH=src python examples/serve_http.py   (~1 minute)
"""

import http.client
import json
import threading

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.serving import (
    EstimationService,
    HttpConfig,
    HttpEstimationClient,
    HttpServerThread,
    ServingConfig,
)
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


def train(schema, train_tuples: int, seed: int) -> NeuroCard:
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, train_tuples=train_tuples,
        learning_rate=5e-3, progressive_samples=128, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=seed,
    )
    return NeuroCard(schema, config).fit(compile=True)


def main() -> None:
    schema = job_light_schema(ImdbScale(n_title=400))
    queries = job_light_ranges_queries(schema, n=24)

    print("training the initial model (short run)...")
    estimator = train(schema, train_tuples=20_000, seed=0)

    service = EstimationService(config=ServingConfig(n_samples=128, cache_size=0))
    service.register("imdb", estimator)

    with HttpServerThread(service, HttpConfig(port=0)) as server:
        print(f"serving on http://{server.host}:{server.port}\n")

        # -- 1. the curl view: plain JSON in, plain JSON out ------------
        body = {
            "query": {
                "tables": ["title", "movie_companies"],
                "filters": [
                    {"column": "title.production_year", "op": ">=", "value": 1990},
                    {"table": "movie_companies", "column": "company_type_id",
                     "op": "<=", "value": 1},
                ],
            },
            "seed": 7,
        }
        conn = http.client.HTTPConnection(server.host, server.port)
        conn.request(
            "POST", "/v1/models/imdb/estimate", json.dumps(body),
            {"Content-Type": "application/json", "X-Tenant": "example"},
        )
        raw = json.loads(conn.getresponse().read())
        conn.close()
        print(f"raw JSON estimate (curl-equivalent): {raw}")

        # -- 2. the client adapter: bitwise-equal to in-process ---------
        client = HttpEstimationClient(server.host, server.port, "imdb",
                                      tenant="example")
        wire = client.estimate(queries[0], seed=42)
        local = service.estimate(queries[0], seed=42)
        print(f"pinned seed over the wire {wire!r} == in-process {local!r}: "
              f"{wire == local}\n")

        # -- 3. hot-swap while closed-loop clients keep submitting ------
        stop = threading.Event()
        failures: list = []
        served: list = []
        lock = threading.Lock()

        def client_loop(cid: int) -> None:
            http_client = HttpEstimationClient(
                server.host, server.port, "imdb", tenant="example"
            )
            rng = np.random.default_rng(cid)
            while not stop.is_set():
                query = queries[int(rng.integers(0, len(queries)))]
                try:
                    estimate = http_client.estimate(query)
                except Exception as exc:  # noqa: BLE001 - any failure breaks the demo
                    with lock:
                        failures.append(exc)
                    return
                with lock:
                    served.append(estimate)
            http_client.close()

        threads = [
            threading.Thread(target=client_loop, args=(cid,)) for cid in range(4)
        ]
        for t in threads:
            t.start()

        print("training the replacement model while traffic flows...")
        replacement = train(schema, train_tuples=60_000, seed=1)
        before = len(served)
        version = service.swap("imdb", replacement)
        after_swap_marker = len(served)
        # Let the new model take some traffic, then stop the clients.
        while len(served) < after_swap_marker + 200 and not failures:
            stop.wait(0.01)
        stop.set()
        for t in threads:
            t.join()

        print(f"hot-swap installed model version {version} after "
              f"~{before} served requests; {len(served) - before} more "
              f"answered afterwards; failed requests: {len(failures)}")
        if failures:
            raise failures[0]

        # -- the operational surface ------------------------------------
        health = client.healthz()
        print(f"\n/healthz: status={health['status']} "
              f"models={health['models']} "
              f"registry={health['registry']}")
        scrape = client.metrics_text()
        ok_line = next(
            line for line in scrape.splitlines()
            if line.startswith("repro_http_requests_total")
            and 'tenant="example"' in line and 'code="200"' in line
        )
        # raw curl request + bitwise probe + everything the loop served
        expected = 2 + len(served)
        print(f"/metrics: {ok_line}  (clients counted {expected})")
        client.close()

    service.close()


if __name__ == "__main__":
    main()
