"""Cascade routing: cheap tiers answer easy queries, NeuroCard the hard tail.

Builds a two-tier estimator cascade (exact per-table stats -> NeuroCard),
calibrates it on a held-out workload, then routes an easy single-table
query and a hard correlated join under different accuracy/latency
contracts — printing which tier answered, why, how long it took, and the
resulting q-error. See docs/estimators.md for the full contract.

Run:  python examples/cascade_routing.py
"""

import time

import numpy as np

from repro.baselines.per_table import PerTableStatsEstimator
from repro.core import NeuroCard, NeuroCardConfig
from repro.eval.calibration import calibration_workload
from repro.eval.harness import true_cardinalities
from repro.joins.executor import query_cardinality
from repro.relational import JoinEdge, JoinSchema, Predicate, Query, Table
from repro.serving import EstimatorCascade


def build_schema() -> JoinSchema:
    """Tiny correlated "orders joins customers" schema (as in quickstart)."""
    rng = np.random.default_rng(0)
    n_customers = 300
    premium = rng.random(n_customers) < 0.2
    customers = Table.from_dict(
        "customers",
        {
            "id": list(range(n_customers)),
            "tier": ["premium" if p else "basic" for p in premium],
        },
    )
    rows = []
    for cid in range(n_customers):
        for _ in range(int(rng.integers(1, 6))):
            base = 500 if premium[cid] else 50
            rows.append((cid, int(base + rng.integers(0, 50))))
    orders = Table.from_dict(
        "orders",
        {"customer_id": [r[0] for r in rows], "amount": [r[1] for r in rows]},
    )
    return JoinSchema(
        tables={"customers": customers, "orders": orders},
        edges=[JoinEdge("customers", "orders", (("id", "customer_id"),))],
        root="customers",
    )


def main() -> None:
    schema = build_schema()

    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, train_tuples=150_000,
        learning_rate=5e-3,
        exclude_columns=("customers.id", "orders.customer_id"),
    )
    neural = NeuroCard(schema, config).fit()
    print(f"NeuroCard trained in {neural.train_result.wall_seconds:.1f}s "
          f"({neural.size_mb:.2f} MB)")

    # Register cheap-to-expensive; the final tier is the neural model.
    cascade = EstimatorCascade(
        schema, default_max_q_error=2.0, min_class_queries=5
    )
    cascade.register("per_table", PerTableStatsEstimator(schema))
    cascade.register("neural", neural, neural=True)

    # Calibrate per-(tier, query-class) q-error bounds on a held-out
    # workload; the router only lets a tier answer a class it has proven.
    held_out = calibration_workload(schema, n_queries=200, seed=3)
    cascade.calibrate(held_out, true_cardinalities(schema, held_out))
    print(f"calibrated on {len(held_out)} held-out queries\n")

    easy = Query.make(
        ["orders"], [Predicate("orders", "amount", "<", 100)],
        name="easy single-table",
    )
    # A narrow point predicate on a correlated join: the independence
    # assumption behind the per-table tier breaks here (calibrated p95
    # q-error ~4.6 for this class), so the default contract escalates.
    hard = Query.make(
        ["customers", "orders"],
        [Predicate("customers", "tier", "=", "premium"),
         Predicate("orders", "amount", "=", 510)],
        name="hard correlated join",
    )
    contracts = [
        (easy, {}),                        # default contract: q-error <= 2
        (hard, {}),                        # correlated join: must escalate
        (hard, {"budget_ms": 0.5}),        # tight budget: best effort wins
        (hard, {"max_q_error": 100.0}),    # loose accuracy: cheap tier ok
    ]
    header = (f"{'query':<22} {'contract':<20} {'tier':<10} "
              f"{'reason':<12} {'ms':>7} {'q-error':>8}")
    print(header)
    for query, contract in contracts:
        decision = cascade.route(query, **contract)
        start = time.perf_counter()
        estimate = decision.tier.estimator.estimate(query)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        truth = query_cardinality(schema, query)
        q_err = max(
            max(estimate, 1) / max(truth, 1), max(truth, 1) / max(estimate, 1)
        )
        label = ", ".join(f"{k}={v:g}" for k, v in contract.items()) or "default"
        print(f"{query.name:<22} {label:<20} {decision.tier.name:<10} "
              f"{decision.reason:<12} {elapsed_ms:>7.3f} {q_err:>8.2f}")


if __name__ == "__main__":
    main()
