"""Quantized inference: fp32 vs int16 vs int8 kernels on one workload.

Trains the fig. 7d smoke model (Base architecture on a scaled-down
JOB-light schema), then answers the same range workload with the compiled
fp32 engine and its int16/int8-quantized variants, printing a
latency / size / accuracy table: median batched latency, compiled-buffer
size, median q-error vs exact cardinalities, and per-query drift vs the
fp64 oracle. The drift columns are what the accuracy ladder in
``docs/accuracy.md`` documents — int16 stays within 1e-3 relative, int8
within 5e-2.

Run:  python examples/quantized_inference.py
"""

import time

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.core.inference import (
    build_engine,
    compiled_model,
    measure_quantization_drift,
    precompile_plan,
)
from repro.eval.harness import true_cardinalities
from repro.joins.counts import JoinCounts
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale

N_SAMPLES = 128


def median_latency_ms(engine, queries, rounds: int = 5) -> float:
    def run():
        engine.estimate_batch(
            queries, n_samples=N_SAMPLES, rng=np.random.default_rng(0)
        )

    run()  # warm plans and compiled kernels outside the timed rounds
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    return float(np.median(times)) * 1e3


def main() -> None:
    schema = job_light_schema(ImdbScale(n_title=600))
    counts = JoinCounts(schema)
    config = NeuroCardConfig(
        d_emb=16, d_ff=128, n_blocks=2, factorization_bits=14,
        batch_size=512, train_tuples=60_000, learning_rate=5e-3,
        progressive_samples=N_SAMPLES, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    estimator = NeuroCard(schema, config).fit(compile=False)
    queries = job_light_ranges_queries(schema, n=64, counts=counts)
    truths = np.maximum(true_cardinalities(schema, queries, counts), 1.0)

    J = estimator.counts.full_join_size
    engines = {
        mode: build_engine(
            estimator.model, estimator.layout, J, "fp32", quantization=mode
        )
        for mode in ("off", "int16", "int8")
    }
    for engine in engines.values():
        for query in queries:
            precompile_plan(engine, engine.plan(query))

    print(f"batch of {len(queries)} range queries, n_samples={N_SAMPLES}\n")
    header = (
        f"{'engine':<8} {'latency':>10} {'size':>9} {'q-err p50':>10} "
        f"{'drift p90':>10} {'drift max':>10}"
    )
    print(header)
    for mode, engine in engines.items():
        estimates = np.maximum(
            engine.estimate_batch(
                queries, n_samples=N_SAMPLES, rng=np.random.default_rng(0)
            ),
            1.0,
        )
        q_errors = np.maximum(estimates / truths, truths / estimates)
        latency = median_latency_ms(engine, queries)
        size_kb = compiled_model(engine).size_bytes / 1024
        if mode == "off":
            drift_p90 = drift_max = "-"
        else:
            drift = measure_quantization_drift(
                engine, queries, n_samples=N_SAMPLES, seed=7
            )
            drift_p90 = f"{np.quantile(drift, 0.9):.2e}"
            drift_max = f"{drift.max():.2e}"
        label = "fp32" if mode == "off" else mode
        print(
            f"{label:<8} {latency:>8.1f}ms {size_kb:>7.0f}kB "
            f"{np.median(q_errors):>10.2f} {drift_p90:>10} {drift_max:>10}"
        )
    print(
        "\ndrift = per-query relative deviation from the fp64 oracle; CI "
        "gates the p90 (docs/accuracy.md ladder: int16 <= 1e-3, int8 <= "
        "5e-2), the max column shows this run's worst query."
    )


if __name__ == "__main__":
    main()
