"""JOB-light walkthrough: NeuroCard vs a Postgres-style estimator.

Builds the synthetic IMDB star schema, generates JOB-light queries exactly
as in the paper's §7.1, trains one NeuroCard over all six tables, and prints
a Table-2-style error report against a classical histogram estimator.

Run:  python examples/imdb_joblight.py            (~1-2 minutes on CPU)
"""

from repro.baselines import PostgresEstimator
from repro.core import NeuroCard, NeuroCardConfig
from repro.eval.harness import evaluate_estimator, format_report, true_cardinalities
from repro.joins.counts import JoinCounts
from repro.workloads import job_light_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


def main() -> None:
    schema = job_light_schema(ImdbScale(n_title=1200))
    counts = JoinCounts(schema)
    print(f"schema: {len(schema.tables)} tables, "
          f"full outer join = {counts.full_join_size:,.0f} rows")

    queries = job_light_queries(schema, n=70, counts=counts)
    truths = true_cardinalities(schema, queries, counts)

    config = NeuroCardConfig(
        train_tuples=500_000, batch_size=512, learning_rate=5e-3,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
    )
    neurocard = NeuroCard(schema, config).fit()
    print(f"NeuroCard: {neurocard.size_mb:.1f} MB, join counts in "
          f"{neurocard.prepare_seconds:.2f}s, trained in "
          f"{neurocard.train_result.wall_seconds:.0f}s")

    # NeuroCard serves through the batched engine (amortized latency);
    # batch_size=1 or omitting it falls back to one query at a time.
    results = [
        evaluate_estimator("Postgres", PostgresEstimator(schema), queries, truths),
        evaluate_estimator("NeuroCard", neurocard, queries, truths, batch_size=32),
    ]
    print()
    print(format_report("JOB-light (70 queries)", results))


if __name__ == "__main__":
    main()
