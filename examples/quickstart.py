"""Quickstart: one NeuroCard estimator for a small two-table schema.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.joins.executor import query_cardinality
from repro.relational import JoinEdge, JoinSchema, Predicate, Query, Table


def main() -> None:
    rng = np.random.default_rng(0)

    # A tiny "orders joins customers" schema with a correlated attribute:
    # premium customers place large orders.
    n_customers = 500
    premium = rng.random(n_customers) < 0.2
    customers = Table.from_dict(
        "customers",
        {
            "id": list(range(n_customers)),
            "tier": ["premium" if p else "basic" for p in premium],
        },
    )
    rows = []
    for cid in range(n_customers):
        for _ in range(int(rng.integers(1, 6))):
            base = 500 if premium[cid] else 50
            rows.append((cid, int(base + rng.integers(0, 50))))
    orders = Table.from_dict(
        "orders",
        {"customer_id": [r[0] for r in rows], "amount": [r[1] for r in rows]},
    )
    schema = JoinSchema(
        tables={"customers": customers, "orders": orders},
        edges=[JoinEdge("customers", "orders", (("id", "customer_id"),))],
        root="customers",
    )

    # Fit one estimator for the whole schema (~seconds on a laptop).
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, train_tuples=150_000,
        learning_rate=5e-3, exclude_columns=("customers.id", "orders.customer_id"),
    )
    estimator = NeuroCard(schema, config).fit()
    print(f"trained on {estimator.train_result.tuples_seen:,} sampled tuples "
          f"in {estimator.train_result.wall_seconds:.1f}s; "
          f"model size {estimator.size_mb:.2f} MB; |J| = {estimator.full_join_size:,.0f}")

    # The same model answers joins AND single-table queries.
    queries = [
        Query.make(
            ["customers", "orders"],
            [Predicate("customers", "tier", "=", "premium"),
             Predicate("orders", "amount", ">=", 500)],
            name="correlated join",
        ),
        Query.make(
            ["customers", "orders"],
            [Predicate("customers", "tier", "=", "basic"),
             Predicate("orders", "amount", ">=", 500)],
            name="anti-correlated join",
        ),
        Query.make(["orders"], [Predicate("orders", "amount", "<", 100)],
                   name="single table"),
    ]
    # One packed inference pass answers the whole batch (the serving path);
    # estimator.estimate(query) remains available for one-off queries.
    estimates = estimator.estimate_batch(queries)
    print(f"\n{'query':<24} {'true':>8} {'estimate':>10} {'q-error':>8}")
    for query, estimate in zip(queries, estimates):
        truth = query_cardinality(schema, query)
        q_err = max(max(estimate, 1) / max(truth, 1), max(truth, 1) / max(estimate, 1))
        print(f"{query.name:<24} {truth:>8.0f} {estimate:>10.1f} {q_err:>8.2f}")


if __name__ == "__main__":
    main()
