"""Serve concurrent traffic through the estimation service.

Trains one NeuroCard, registers it with :class:`EstimationService`, and
drives it with 8 closed-loop client threads: every client submits one
query at a time, and the micro-batching scheduler coalesces the
concurrent requests into shared ``estimate_batch`` passes. With
``workers=2`` in the :class:`ServingConfig`, each coalesced micro-batch
is sharded across two worker processes that attach the model's weights
and compiled buffers from a shared-memory blob (zero-copy). Finishes
with a zero-downtime hot-swap refresh onto a new data snapshot — the
registry republishes the new version to every worker before the swap
returns.

Run:  PYTHONPATH=src python examples/serve_workload.py
"""

import threading
import time

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig
from repro.relational import JoinEdge, JoinSchema, Predicate, Query, Table
from repro.serving import EstimationService, ServingConfig


def build_schema(n_customers: int = 500, seed: int = 0) -> JoinSchema:
    """Orders join customers, with correlated amounts (see quickstart.py)."""
    rng = np.random.default_rng(seed)
    premium = rng.random(n_customers) < 0.2
    customers = Table.from_dict(
        "customers",
        {
            "id": list(range(n_customers)),
            "tier": ["premium" if p else "basic" for p in premium],
        },
    )
    rows = []
    for cid in range(n_customers):
        for _ in range(int(rng.integers(1, 6))):
            base = 500 if premium[cid] else 50
            rows.append((cid, int(base + rng.integers(0, 50))))
    orders = Table.from_dict(
        "orders",
        {"customer_id": [r[0] for r in rows], "amount": [r[1] for r in rows]},
    )
    return JoinSchema(
        tables={"customers": customers, "orders": orders},
        edges=[JoinEdge("customers", "orders", (("id", "customer_id"),))],
        root="customers",
    )


def main() -> None:
    # Serve an initial snapshot holding the first 80% of orders; the rest
    # arrives later as a partition append (same column dictionaries).
    full = build_schema()
    orders = full.table("orders")
    initial = full.replace_table(orders.take(np.arange(int(orders.n_rows * 0.8))))
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, train_tuples=100_000,
        learning_rate=5e-3, progressive_samples=128,
        exclude_columns=("customers.id", "orders.customer_id"),
    )
    # compile=True lowers the trained model into plan-specialized serving
    # kernels (folded-embedding LUTs, cached wildcard constants, sliced
    # output heads — fp32 fast path); it is also the default via
    # NeuroCardConfig.compiled_inference="fp32".
    estimator = NeuroCard(initial, config).fit(compile=True)
    print(f"trained in {estimator.train_result.wall_seconds:.1f}s, "
          f"{estimator.size_mb:.2f} MB")

    workload = [
        Query.make(["customers", "orders"],
                   [Predicate("customers", "tier", "=", "premium"),
                    Predicate("orders", "amount", ">=", 500)]),
        Query.make(["orders"], [Predicate("orders", "amount", "<", 100)]),
        Query.make(["customers"], [Predicate("customers", "tier", "=", "basic")]),
        Query.make(["customers", "orders"],
                   [Predicate("orders", "amount", "IN", (510, 520, 530))]),
    ]

    # One validated config object for every serving knob (scheduler,
    # worker pool, registry, refresh policy). ``workers=2`` turns on the
    # sharded multi-process executor; drop it (the default is 0) to serve
    # in-process. Legacy ctor kwargs such as ``max_batch=64`` still work
    # for one release behind a DeprecationWarning.
    serving = ServingConfig(max_batch=64, max_wait_us=2000, workers=2)
    with EstimationService(config=serving) as service:
        service.register("shop", estimator)
        # Fold the kernels and pre-warm the workload's wildcard patterns
        # before traffic arrives (the registry also does this on lazy
        # loads and hot-swaps).
        patterns = estimator.precompile(workload)
        print(f"compiled serving kernels "
              f"({estimator.size_mb:.2f} MB resident, "
              f"{patterns} plan patterns pre-warmed)")

        # 8 closed-loop clients, each query's latency = submit -> result.
        n_clients, per_client = 8, 40
        latencies, lock = [], threading.Lock()

        def client(cid: int) -> None:
            rng = np.random.default_rng(cid)
            local = []
            for i in range(per_client):
                query = workload[int(rng.integers(0, len(workload)))]
                start = time.perf_counter()
                service.submit(query, seed=cid * per_client + i).result()
                local.append(time.perf_counter() - start)
            with lock:
                latencies.extend(local)

        threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start

        n_requests = n_clients * per_client
        stats = service.stats()["models"]["shop"]
        pool_stats = service.stats().get("pools", {}).get("shop", {})
        print(f"{n_requests} requests from {n_clients} clients in {wall:.2f}s "
              f"-> {n_requests / wall:.0f} QPS "
              f"(p95 {np.percentile(latencies, 95) * 1e3:.1f} ms, "
              f"mean batch {stats['mean_batch_size']:.1f}, "
              f"{stats['cache_hits']:.0f} cache hits)")
        if pool_stats:
            print(f"worker pool: {pool_stats['workers']} processes, "
                  f"{pool_stats['chunks']} shards over "
                  f"{pool_stats['batches']} micro-batches, "
                  f"{pool_stats['shared_bytes'] / 1024:.0f} KB shared model "
                  f"memory (version {pool_stats['published_version']})")

        # Zero-downtime refresh: a copy ingests the full snapshot and takes
        # extra gradient steps, then replaces the live model atomically; the
        # version bump invalidates the scheduler's result cache.
        before = service.estimate(workload[0], seed=0)
        version = service.refresh("shop", full, train_tuples=20_000)
        after = service.estimate(workload[0], seed=0)
        print(f"hot-swapped to version {version}; premium-join estimate "
              f"{before:.0f} -> {after:.0f} after ingesting the append")


if __name__ == "__main__":
    main()
