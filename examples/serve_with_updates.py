"""Serve live traffic while the paper's §7.6 partitions stream in.

Trains a NeuroCard on partition 1 of the year-partitioned JOB-light split,
serves it through the estimation service, then ingests partitions 2..5 as
append batches through a :class:`StreamingIngestor` while closed-loop
clients keep submitting queries. A :class:`BackgroundRefresher` watches the
drift monitor and hot-swaps incrementally retrained models in (the paper's
*fast* strategy, throttled so serving keeps the CPU), and the script prints
the freshness / q-error trajectory after every ingest: how stale the served
model was just before the refresh, and how much accuracy the refresh
recovered.

Run:  PYTHONPATH=src python examples/serve_with_updates.py   (~2 minutes)
"""

import threading
import time

import numpy as np

from repro.core import NeuroCard, NeuroCardConfig, clone_estimator
from repro.eval.harness import true_cardinalities
from repro.eval.metrics import q_error
from repro.eval.updates import partition_stream
from repro.joins.counts import JoinCounts
from repro.serving import EstimationService, RefreshPolicy, StreamingIngestor
from repro.workloads import job_light_ranges_queries, job_light_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


def median_qerror(estimates, truths) -> float:
    return float(np.median([q_error(e, t) for e, t in zip(estimates, truths)]))


def main() -> None:
    full = job_light_schema(ImdbScale(n_title=500))
    snapshots, deltas = partition_stream(full, n_partitions=5)
    config = NeuroCardConfig(
        d_emb=8, d_ff=64, n_blocks=2, train_tuples=50_000,
        learning_rate=5e-3, progressive_samples=128, sampler_threads=1,
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS, seed=0,
    )
    # Probe workload: literals drawn from the final snapshot so every
    # query stays answerable across the whole stream.
    queries = job_light_ranges_queries(
        snapshots[-1], n=32, counts=JoinCounts(snapshots[-1])
    )

    estimator = NeuroCard(snapshots[0], config).fit(compile=True)
    print(f"trained on partition 1/5 in "
          f"{estimator.train_result.wall_seconds:.1f}s "
          f"({snapshots[0].table('title').n_rows} title rows)")
    # A frozen copy of the partition-1 model: the Table 6 "stale" row,
    # re-scored against every later snapshot to show what refreshing buys.
    stale_reference = clone_estimator(estimator)

    with EstimationService(n_samples=128, cache_size=0) as service:
        service.register("imdb", estimator)
        ingestor = StreamingIngestor(snapshots[0])
        refresher = service.serve_with_updates(
            "imdb", ingestor,
            policy=RefreshPolicy(
                drift_threshold=None,
                ingest_threshold=0.01,        # any partition triggers
                retrain_drift_threshold=2.0,  # stick to the fast strategy
                fast_fraction=0.05,
                train_duty=0.3,               # background training yields CPU
            ),
            poll_interval=0.05,
        )

        # Closed-loop client traffic for the whole ingest stream.
        stop = threading.Event()
        served = [0]

        def client(cid: int) -> None:
            rng = np.random.default_rng(cid)
            i = 0
            while not stop.is_set():
                query = queries[int(rng.integers(0, len(queries)))]
                service.submit(query, seed=cid * 100_000 + i).result()
                served[0] += 1  # telemetry only; exactness doesn't matter
                i += 1

        clients = [threading.Thread(target=client, args=(c,)) for c in range(4)]
        for t in clients:
            t.start()

        print("\npart  rows(title)  drift   stale-p50  served-p50  "
              "refresh-s  model-v")
        try:
            for k, delta in enumerate(deltas[1:], start=2):
                version = ingestor.ingest_many(delta)
                report = refresher.monitor.observe(*ingestor.snapshot())
                deadline = time.monotonic() + 180
                while (refresher.stats()["last_data_version"] < version
                       and refresher.last_error is None
                       and time.monotonic() < deadline):
                    time.sleep(0.05)
                if refresher.last_error is not None:
                    raise refresher.last_error
                # Score the never-refreshed partition-1 model (a private
                # clone) and the freshly served model (through the service,
                # sharing the scheduler with the live clients) against the
                # post-ingest snapshot's exact truths.
                snapshot_truths = true_cardinalities(snapshots[k - 1], queries)
                stale_p50 = median_qerror(
                    stale_reference.estimate_batch(
                        queries, rng=np.random.default_rng(0)
                    ),
                    snapshot_truths,
                )
                served_p50 = median_qerror(
                    service.estimate_batch(queries), snapshot_truths
                )
                fresh = service.registry.get("imdb")
                event = refresher.history[-1]
                print(f"{k:>4}  {fresh.schema.table('title').n_rows:>11}  "
                      f"{report.max_divergence:>5.3f}  {stale_p50:>10.2f}  "
                      f"{served_p50:>10.2f}  {event.seconds:>9.2f}  "
                      f"{event.model_version:>7}")
        finally:
            stop.set()
            for t in clients:
                t.join()

        print(f"\nserved ~{served[0]} requests during the stream; "
              f"final model data_version="
              f"{service.registry.get('imdb').data_version}, "
              f"refresher stats: {refresher.stats()}")


if __name__ == "__main__":
    main()
