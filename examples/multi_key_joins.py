"""JOB-M walkthrough: one estimator across 16 tables and multiple join keys.

Demonstrates the paper's §7.3.3 scenario: a single model covering the whole
16-table schema, queried over arbitrary connected subsets — including joins
that run through dimension tables on keys other than movie_id — with column
factorization keeping the model compact.

Run:  python examples/multi_key_joins.py          (~2-3 minutes on CPU)
"""

from repro.core import NeuroCard, NeuroCardConfig
from repro.eval.metrics import q_error
from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.relational import Predicate, Query
from repro.workloads import job_m_schema
from repro.workloads.imdb import DEFAULT_EXCLUDED_COLUMNS, ImdbScale


def main() -> None:
    schema = job_m_schema(ImdbScale(n_title=800))
    counts = JoinCounts(schema)
    print(f"JOB-M schema: {len(schema.tables)} tables, "
          f"{len(schema.edges)} join edges, |J| = {counts.full_join_size:,.0f}")

    config = NeuroCardConfig(
        train_tuples=400_000, batch_size=512, learning_rate=5e-3,
        factorization_bits=10,  # slice high-cardinality columns (§5)
        exclude_columns=DEFAULT_EXCLUDED_COLUMNS,
    )
    estimator = NeuroCard(schema, config).fit()
    print(f"model: {estimator.size_mb:.1f} MB "
          f"({len(estimator.layout.columns)} model columns incl. subcolumns)\n")

    queries = [
        Query.make(
            ["title", "movie_companies", "company_name"],
            [Predicate("company_name", "country_code", "=", "[a]"),
             Predicate("title", "production_year", ">=", 2000)],
            name="through company dim",
        ),
        Query.make(
            ["title", "cast_info", "name", "role_type"],
            [Predicate("name", "gender", "=", "f"),
             Predicate("role_type", "role", "=", "role_02")],
            name="3-hop person chain",
        ),
        Query.make(
            ["movie_keyword", "keyword"],
            [Predicate("keyword", "keyword_pcode", "<=", "P00100")],
            name="no fact table",
        ),
    ]
    estimates = estimator.estimate_batch(queries)  # one packed inference pass
    print(f"{'query':<22} {'tables':>6} {'true':>9} {'estimate':>11} {'q-error':>8}")
    for query, estimate in zip(queries, estimates):
        truth = query_cardinality(schema, query, counts=counts)
        print(f"{query.name:<22} {len(query.tables):>6} {truth:>9.0f} "
              f"{estimate:>11.1f} {q_error(estimate, truth):>8.2f}")


if __name__ == "__main__":
    main()
