"""Synthetic IMDB-like database generator.

Substitutes the paper's real IMDB snapshot (see DESIGN.md, Substitutions).
The generator preserves the properties cardinality estimators are sensitive
to:

* the JOB join topology — ``title`` fact table, five movie-side tables, and
  (for JOB-M) nine dimension tables, 16 tables total;
* zipf-skewed join-key fanouts (popular persons/keywords/companies);
* NULL-able foreign keys and NULL content values;
* strong inter-column and *inter-table* correlations: production year drives
  the kind of title, the volume and content of movie_info rows, ratings in
  movie_info_idx, and aka_title years; company country drives company types.

All columns are integers or zero-padded strings so that lexicographic
dictionary order equals semantic order (range filters stay meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table

#: The 6 JOB-light tables.
JOB_LIGHT_TABLES = (
    "title",
    "cast_info",
    "movie_companies",
    "movie_info",
    "movie_keyword",
    "movie_info_idx",
)


@dataclass
class ImdbScale:
    """Row-count knobs for the generator (defaults: bench-friendly sizes)."""

    n_title: int = 2000
    cast_per_title: float = 3.0
    mc_per_title: float = 1.3
    mi_per_title: float = 2.5
    mii_per_title: float = 1.2
    mk_per_title: float = 2.0
    aka_per_title: float = 0.3
    cc_per_title: float = 0.4
    n_person: int = 1200
    n_company: int = 350
    n_keyword: int = 500
    n_char: int = 700
    #: distinct phonetic codes in title (high-cardinality knob for JOB-M).
    n_phonetic: int = 600
    seed: int = 0


def _zipf_probs(n: int, a: float = 1.3) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probs = ranks**-a
    return probs / probs.sum()


def _zipf_choice(rng: np.random.Generator, n: int, size: int, a: float = 1.3) -> np.ndarray:
    return rng.choice(n, size=size, p=_zipf_probs(n, a))


def _with_nulls(values: np.ndarray, null_frac: float, rng: np.random.Generator) -> List:
    mask = rng.random(len(values)) < null_frac
    return [None if m else int(v) for v, m in zip(values, mask)]


def _pcode(idx: int) -> str:
    return f"P{idx:05d}"


class _ImdbBuilder:
    """Stateful builder producing all 16 tables with shared correlations."""

    def __init__(self, scale: ImdbScale):
        self.scale = scale
        self.rng = np.random.default_rng(scale.seed)
        self.tables: Dict[str, Table] = {}
        self._build_title()
        self._build_cast_side()
        self._build_company_side()
        self._build_info_side()
        self._build_keyword_side()
        self._build_title_satellites()

    # ------------------------------------------------------------------
    def _build_title(self) -> None:
        rng, n = self.rng, self.scale.n_title
        # Years skew recent: 1930..2019, more mass near 2019.
        raw = rng.beta(3.0, 1.3, n)
        years = (1930 + raw * 89).astype(np.int64)
        # Kind correlated with year: older titles skew to kinds 3/4,
        # recent ones to 1/2/7 (7 = tv episode).
        recent = years >= 1990
        kinds = np.where(
            recent,
            rng.choice([1, 2, 7], n, p=[0.45, 0.25, 0.3]),
            rng.choice([1, 3, 4], n, p=[0.3, 0.4, 0.3]),
        )
        episodes = np.where(
            kinds == 7, rng.integers(1, 40, n), -1
        )
        seasons = np.where(kinds == 7, rng.integers(1, 12, n), -1)
        phonetic = _zipf_choice(rng, self.scale.n_phonetic, n, a=1.1)
        self.title_years = years
        self.tables["title"] = Table.from_dict(
            "title",
            {
                "id": list(range(n)),
                "kind_id": [int(k) for k in kinds],
                "production_year": _with_nulls(years, 0.04, rng),
                "episode_nr": [None if e < 0 else int(e) for e in episodes],
                "season_nr": [None if s < 0 else int(s) for s in seasons],
                "phonetic_code": [_pcode(int(p)) for p in phonetic],
            },
        )

    def _child_movie_ids(self, per_title: float) -> np.ndarray:
        """Movie ids fanned out per title, more children for recent titles."""
        rng, n = self.rng, self.scale.n_title
        year_factor = 0.4 + 1.6 * (self.title_years - 1930) / 90.0
        counts = rng.poisson(per_title * year_factor)
        return np.repeat(np.arange(n), counts)

    def _build_cast_side(self) -> None:
        rng, scale = self.rng, self.scale
        movie_ids = self._child_movie_ids(scale.cast_per_title)
        m = len(movie_ids)
        persons = _zipf_choice(rng, scale.n_person, m, a=1.4)
        # Person gender (with NULLs); roles correlate with gender.
        genders = rng.choice(3, scale.n_person, p=[0.55, 0.35, 0.10])  # m/f/NULL
        person_gender = genders[persons]
        roles = np.where(
            person_gender == 0,
            rng.choice([1, 3, 5, 8], m),
            rng.choice([2, 4, 6, 9], m),
        )
        chars = _zipf_choice(rng, scale.n_char, m, a=1.2)
        self.tables["cast_info"] = Table.from_dict(
            "cast_info",
            {
                "movie_id": _with_nulls(movie_ids, 0.01, rng),
                "person_id": [int(p) for p in persons],
                "role_id": [int(r) for r in roles],
                "person_role_id": _with_nulls(chars, 0.3, rng),
                "nr_order": _with_nulls(rng.integers(1, 11, m), 0.2, rng),
            },
        )
        self.tables["name"] = Table.from_dict(
            "name",
            {
                "id": list(range(scale.n_person)),
                "gender": [
                    {0: "m", 1: "f", 2: None}[int(g)] for g in genders
                ],
                "name_pcode": [
                    _pcode(int(v))
                    for v in rng.integers(0, scale.n_person // 2 + 1, scale.n_person)
                ],
            },
        )
        self.tables["role_type"] = Table.from_dict(
            "role_type",
            {
                "id": list(range(1, 13)),
                "role": [f"role_{i:02d}" for i in range(1, 13)],
            },
        )
        self.tables["char_name"] = Table.from_dict(
            "char_name",
            {
                "id": list(range(scale.n_char)),
                "name_pcode": [
                    _pcode(int(v))
                    for v in rng.integers(0, scale.n_char // 2 + 1, scale.n_char)
                ],
            },
        )

    def _build_company_side(self) -> None:
        rng, scale = self.rng, self.scale
        movie_ids = self._child_movie_ids(scale.mc_per_title)
        m = len(movie_ids)
        companies = _zipf_choice(rng, scale.n_company, m, a=1.3)
        countries = rng.choice(8, scale.n_company, p=[0.4, 0.2, 0.12, 0.1, 0.08, 0.05, 0.03, 0.02])
        # Company type correlates with the company's country.
        company_country = countries[companies]
        ctype = np.where(
            company_country == 0,
            rng.choice([1, 2], m, p=[0.8, 0.2]),
            rng.choice([2, 3, 4], m, p=[0.4, 0.4, 0.2]),
        )
        self.tables["movie_companies"] = Table.from_dict(
            "movie_companies",
            {
                "movie_id": _with_nulls(movie_ids, 0.01, rng),
                "company_id": [int(c) for c in companies],
                "company_type_id": [int(t) for t in ctype],
            },
        )
        self.tables["company_name"] = Table.from_dict(
            "company_name",
            {
                "id": list(range(scale.n_company)),
                "country_code": [f"[{chr(97 + int(c))}]" for c in countries],
                "name_pcode": [
                    _pcode(int(v))
                    for v in rng.integers(0, scale.n_company, scale.n_company)
                ],
            },
        )
        self.tables["company_type"] = Table.from_dict(
            "company_type",
            {
                "id": [1, 2, 3, 4],
                "kind": ["production", "distribution", "effects", "misc"],
            },
        )

    def _build_info_side(self) -> None:
        rng, scale = self.rng, self.scale
        # movie_info: info value correlated with (type, production year).
        movie_ids = self._child_movie_ids(scale.mi_per_title)
        m = len(movie_ids)
        info_types = _zipf_choice(rng, 40, m, a=1.1) + 1
        year_bucket = (self.title_years[movie_ids] - 1930) // 10
        info_val = np.clip(
            year_bucket * 10 + rng.integers(0, 15, m) + info_types, 0, 120
        )
        self.tables["movie_info"] = Table.from_dict(
            "movie_info",
            {
                "movie_id": _with_nulls(movie_ids, 0.01, rng),
                "info_type_id": [int(t) for t in info_types],
                "info": [f"v{int(v):04d}" for v in info_val],
            },
        )
        self.tables["info_type"] = Table.from_dict(
            "info_type",
            {
                "id": list(range(1, 41)),
                "info": [f"type_{i:02d}" for i in range(1, 41)],
            },
        )
        # movie_info_idx: numeric rating, higher for recent titles.
        movie_ids2 = self._child_movie_ids(scale.mii_per_title)
        m2 = len(movie_ids2)
        types2 = rng.integers(1, 11, m2)
        rating = np.clip(
            ((self.title_years[movie_ids2] - 1930) * 0.7)
            + rng.normal(0, 7, m2)
            + 20,
            0,
            100,
        ).astype(np.int64)
        self.tables["movie_info_idx"] = Table.from_dict(
            "movie_info_idx",
            {
                "movie_id": _with_nulls(movie_ids2, 0.01, rng),
                "info_type_id": [int(t) for t in types2],
                "info": [int(r) for r in rating],
            },
        )
        self.tables["info_type_idx"] = Table.from_dict(
            "info_type_idx",
            {
                "id": list(range(1, 11)),
                "info": [f"idxtype_{i:02d}" for i in range(1, 11)],
            },
        )

    def _build_keyword_side(self) -> None:
        rng, scale = self.rng, self.scale
        movie_ids = self._child_movie_ids(scale.mk_per_title)
        m = len(movie_ids)
        keywords = _zipf_choice(rng, scale.n_keyword, m, a=1.5)
        self.tables["movie_keyword"] = Table.from_dict(
            "movie_keyword",
            {
                "movie_id": _with_nulls(movie_ids, 0.01, rng),
                "keyword_id": [int(k) for k in keywords],
            },
        )
        self.tables["keyword"] = Table.from_dict(
            "keyword",
            {
                "id": list(range(scale.n_keyword)),
                "keyword_pcode": [
                    _pcode(int(v))
                    for v in rng.integers(0, scale.n_keyword // 2 + 1, scale.n_keyword)
                ],
            },
        )

    def _build_title_satellites(self) -> None:
        rng, scale = self.rng, self.scale
        movie_ids = self._child_movie_ids(scale.aka_per_title)
        m = len(movie_ids)
        # aka years track the parent title's year (cross-table correlation).
        aka_years = self.title_years[movie_ids] + rng.integers(0, 3, m)
        self.tables["aka_title"] = Table.from_dict(
            "aka_title",
            {
                "movie_id": [int(v) for v in movie_ids],
                "kind_id": [int(v) for v in rng.integers(1, 8, m)],
                "production_year": _with_nulls(aka_years, 0.05, rng),
            },
        )
        movie_ids2 = self._child_movie_ids(scale.cc_per_title)
        m2 = len(movie_ids2)
        self.tables["complete_cast"] = Table.from_dict(
            "complete_cast",
            {
                "movie_id": [int(v) for v in movie_ids2],
                "subject_id": [int(v) for v in rng.integers(1, 5, m2)],
                "status_id": [int(v) for v in rng.integers(1, 5, m2)],
            },
        )


def _movie_edge(child: str) -> JoinEdge:
    return JoinEdge(parent="title", child=child, keys=(("id", "movie_id"),))


def job_light_schema(scale: Optional[ImdbScale] = None) -> JoinSchema:
    """The 6-table JOB-light star schema (every table joins title on id)."""
    scale = scale if scale is not None else ImdbScale()
    builder = _ImdbBuilder(scale)
    tables = {name: builder.tables[name] for name in JOB_LIGHT_TABLES}
    edges = [_movie_edge(name) for name in JOB_LIGHT_TABLES if name != "title"]
    return JoinSchema(tables=tables, edges=edges, root="title")


def job_m_schema(scale: Optional[ImdbScale] = None) -> JoinSchema:
    """The 16-table JOB-M schema with multi-key joins through dimensions."""
    scale = scale if scale is not None else ImdbScale()
    builder = _ImdbBuilder(scale)
    tables = dict(builder.tables)
    edges = [
        _movie_edge("cast_info"),
        _movie_edge("movie_companies"),
        _movie_edge("movie_info"),
        _movie_edge("movie_info_idx"),
        _movie_edge("movie_keyword"),
        _movie_edge("aka_title"),
        _movie_edge("complete_cast"),
        JoinEdge("cast_info", "name", (("person_id", "id"),)),
        JoinEdge("cast_info", "role_type", (("role_id", "id"),)),
        JoinEdge("cast_info", "char_name", (("person_role_id", "id"),)),
        JoinEdge("movie_companies", "company_name", (("company_id", "id"),)),
        JoinEdge("movie_companies", "company_type", (("company_type_id", "id"),)),
        JoinEdge("movie_info", "info_type", (("info_type_id", "id"),)),
        JoinEdge("movie_info_idx", "info_type_idx", (("info_type_id", "id"),)),
        JoinEdge("movie_keyword", "keyword", (("keyword_id", "id"),)),
    ]
    return JoinSchema(tables=tables, edges=edges, root="title")


#: Content columns excluded from models by default: surrogate keys that no
#: workload filters on (keeps estimator sizes honest, as in the paper).
DEFAULT_EXCLUDED_COLUMNS = (
    "title.id",
    "cast_info.movie_id",
    "cast_info.person_id",
    "cast_info.person_role_id",
    "movie_companies.movie_id",
    "movie_companies.company_id",
    "movie_info.movie_id",
    "movie_info_idx.movie_id",
    "movie_keyword.movie_id",
    "aka_title.movie_id",
    "complete_cast.movie_id",
    "name.id",
    "char_name.id",
    "keyword.id",
    "company_name.id",
    "company_type.id",
    "info_type.id",
    "info_type_idx.id",
    "role_type.id",
)
