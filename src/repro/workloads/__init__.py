"""Workloads: synthetic IMDB schema + JOB-light / JOB-light-ranges / JOB-M.

The real IMDB snapshot is not available offline, so :mod:`repro.workloads.imdb`
generates an IMDB-*like* database with the same 16-table join structure,
zipfian key skew, NULL-able foreign keys, and deliberately injected
inter-table correlations (the property the paper's evaluation stresses).
Query generators follow the paper's §7.1 recipes, including drawing filter
literals from inner-join samples to guarantee non-empty results.
"""

from repro.workloads.imdb import ImdbScale, job_light_schema, job_m_schema
from repro.workloads.generators import (
    job_light_queries,
    job_light_ranges_queries,
    job_m_queries,
)
from repro.workloads.stats import WorkloadStats, workload_stats

__all__ = [
    "ImdbScale",
    "job_light_schema",
    "job_m_schema",
    "job_light_queries",
    "job_light_ranges_queries",
    "job_m_queries",
    "WorkloadStats",
    "workload_stats",
]
