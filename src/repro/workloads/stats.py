"""Workload statistics (paper Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.joins.counts import JoinCounts
from repro.relational.schema import JoinSchema


@dataclass(frozen=True)
class WorkloadStats:
    """Table 1's columns: tables, full-join rows, columns, max domain."""

    name: str
    n_tables: int
    full_join_rows: float
    n_columns: int
    max_domain: int

    def row(self) -> str:
        return (
            f"{self.name:<18} {self.n_tables:>6} {self.full_join_rows:>14.3g} "
            f"{self.n_columns:>5} {self.max_domain:>8}"
        )


def workload_stats(
    name: str, schema: JoinSchema, counts: Optional[JoinCounts] = None
) -> WorkloadStats:
    """Compute the Table 1 row for a schema snapshot."""
    counts = counts if counts is not None else JoinCounts(schema)
    n_columns = sum(len(t.column_names) for t in schema.tables.values())
    max_domain = max(
        col.n_distinct
        for t in schema.tables.values()
        for col in t.columns.values()
    )
    return WorkloadStats(
        name=name,
        n_tables=len(schema.tables),
        full_join_rows=counts.full_join_size,
        n_columns=n_columns,
        max_domain=max_domain,
    )
