"""Query workload generators following the paper's §7.1 recipes.

All three generators draw filter literals from a tuple sampled out of the
query graph's *inner join* (via :class:`InnerJoinSampler`), which — exactly
as the paper argues — follows the data distribution and guarantees non-empty
results.

* ``job_light_queries``: 70 queries, 2–5 tables, equality filters only except
  ranges on ``title.production_year``.
* ``job_light_ranges_queries``: 1000 queries spread uniformly over 18
  JOB-light join graphs, 3–6 mixed equality/range (and occasional IN) filters
  over a wider column variety.
* ``job_m_queries``: 113 queries over the 16-table schema, joining 2–11
  tables through multiple join keys.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import InnerJoinSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinSchema

#: Columns suitable for range operators (ordered semantics).
RANGE_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "title": ("production_year", "episode_nr", "season_nr", "phonetic_code"),
    "cast_info": ("nr_order",),
    "movie_info": ("info",),
    "movie_info_idx": ("info",),
    "aka_title": ("production_year",),
    "name": ("name_pcode",),
    "char_name": ("name_pcode",),
    "keyword": ("keyword_pcode",),
    "company_name": ("name_pcode",),
}

#: Columns filtered only with equality (categorical semantics).
EQUALITY_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "title": ("kind_id",),
    "cast_info": ("role_id",),
    "movie_companies": ("company_type_id",),
    "movie_info": ("info_type_id",),
    "movie_info_idx": ("info_type_id",),
    "movie_keyword": ("keyword_id",),
    "company_name": ("country_code",),
    "company_type": ("kind",),
    "info_type": ("info",),
    "info_type_idx": ("info",),
    "role_type": ("role",),
    "aka_title": ("kind_id",),
    "complete_cast": ("subject_id", "status_id"),
    "name": ("gender",),
}

_JOB_LIGHT_CHILDREN = (
    "cast_info",
    "movie_companies",
    "movie_info",
    "movie_keyword",
    "movie_info_idx",
)


def _tuple_value(schema: JoinSchema, rows: Dict[str, np.ndarray], table: str, column: str):
    """Decoded value of one sampled inner-join tuple (None = NULL)."""
    col = schema.table(table).column(column)
    return col.decode([col.codes[rows[table][0]]])[0]


def _candidate_filters(query_tables: Sequence[str]) -> List[Tuple[str, str, bool]]:
    """(table, column, range_capable) filter slots available to a query."""
    out = []
    for table in query_tables:
        for col in RANGE_COLUMNS.get(table, ()):
            out.append((table, col, True))
        for col in EQUALITY_COLUMNS.get(table, ()):
            out.append((table, col, False))
    return out


class _Generator:
    def __init__(self, schema: JoinSchema, seed: int, counts: Optional[JoinCounts]):
        self.schema = schema
        self.rng = np.random.default_rng(seed)
        self.counts = counts if counts is not None else JoinCounts(schema)
        self.inner = InnerJoinSampler(schema, self.counts)

    def sample_tuple(self, tables: Sequence[str]) -> Dict[str, np.ndarray]:
        return self.inner.sample_row_ids(tables, 1, self.rng)

    def make_filters(
        self,
        tables: Sequence[str],
        rows: Dict[str, np.ndarray],
        n_filters: int,
        allow_in: bool,
    ) -> List[Predicate]:
        candidates = _candidate_filters(tables)
        self.rng.shuffle(candidates)
        predicates: List[Predicate] = []
        for table, column, range_capable in candidates:
            if len(predicates) >= n_filters:
                break
            value = _tuple_value(self.schema, rows, table, column)
            if value is None:
                continue
            if range_capable:
                op = str(self.rng.choice(["<=", ">=", "="]))
            else:
                op = "="
            if allow_in and op == "=" and self.rng.random() < 0.1:
                dictionary = self.schema.table(table).column(column).dictionary
                extra = self.rng.choice(
                    dictionary, size=min(2, len(dictionary)), replace=False
                )
                values = tuple({value, *[v.item() if hasattr(v, "item") else v for v in extra]})
                predicates.append(Predicate(table, column, "IN", values))
            else:
                predicates.append(Predicate(table, column, op, value))
        return predicates


def job_light_queries(
    schema: JoinSchema,
    n: int = 70,
    seed: int = 1,
    counts: Optional[JoinCounts] = None,
) -> List[Query]:
    """70 star-join queries: 2-5 tables, equality filters + year ranges."""
    gen = _Generator(schema, seed, counts)
    queries: List[Query] = []
    attempt = 0
    while len(queries) < n:
        attempt += 1
        if attempt > 50 * n:
            raise DataError("query generation failed to converge")
        k = int(gen.rng.integers(1, 5))
        children = list(
            gen.rng.choice(_JOB_LIGHT_CHILDREN, size=k, replace=False)
        )
        tables = ["title"] + children
        rows = gen.sample_tuple(tables)
        predicates: List[Predicate] = []
        year = _tuple_value(schema, rows, "title", "production_year")
        if year is not None:
            op = str(gen.rng.choice(["<=", ">=", "="]))
            predicates.append(Predicate("title", "production_year", op, year))
        for child in children:
            if gen.rng.random() < 0.75:
                col = EQUALITY_COLUMNS[child][0]
                value = _tuple_value(schema, rows, child, col)
                if value is not None:
                    predicates.append(Predicate(child, col, "=", value))
        if not predicates:
            continue
        queries.append(
            Query.make(tables, predicates, name=f"job-light-{len(queries):03d}")
        )
    return queries


def _job_light_join_graphs(rng: np.random.Generator) -> List[List[str]]:
    """The 18 join graphs of JOB-light: all 1- and 2-child subsets, plus
    three 3-child subsets (JOB-light uses 18 distinct graphs)."""
    graphs = [["title", c] for c in _JOB_LIGHT_CHILDREN]
    graphs += [["title", a, b] for a, b in combinations(_JOB_LIGHT_CHILDREN, 2)]
    triples = list(combinations(_JOB_LIGHT_CHILDREN, 3))
    picks = rng.choice(len(triples), size=3, replace=False)
    graphs += [["title", *triples[i]] for i in picks]
    return graphs


def job_light_ranges_queries(
    schema: JoinSchema,
    n: int = 1000,
    seed: int = 2,
    counts: Optional[JoinCounts] = None,
) -> List[Query]:
    """1000 queries over 18 JOB-light graphs with 3-6 mixed filters (§7.1)."""
    gen = _Generator(schema, seed, counts)
    graphs = _job_light_join_graphs(gen.rng)
    queries: List[Query] = []
    attempt = 0
    while len(queries) < n:
        attempt += 1
        if attempt > 50 * n:
            raise DataError("query generation failed to converge")
        tables = graphs[len(queries) % len(graphs)]
        rows = gen.sample_tuple(tables)
        n_filters = int(gen.rng.integers(3, 7))
        predicates = gen.make_filters(tables, rows, n_filters, allow_in=True)
        if len(predicates) < 2:
            continue
        queries.append(
            Query.make(tables, predicates, name=f"job-light-ranges-{len(queries):04d}")
        )
    return queries


def job_m_queries(
    schema: JoinSchema,
    n: int = 113,
    seed: int = 3,
    counts: Optional[JoinCounts] = None,
) -> List[Query]:
    """113 queries joining 2-11 of the 16 JOB-M tables on multiple keys."""
    gen = _Generator(schema, seed, counts)
    queries: List[Query] = []
    attempt = 0
    while len(queries) < n:
        attempt += 1
        if attempt > 100 * n:
            raise DataError("query generation failed to converge")
        target = int(gen.rng.integers(2, 12))
        tables = ["title"]
        while len(tables) < target:
            frontier = [
                e.other(t)
                for t in tables
                for e in schema.incident_edges(t)
                if e.other(t) not in tables
            ]
            if not frontier:
                break
            tables.append(str(gen.rng.choice(sorted(set(frontier)))))
        try:
            rows = gen.sample_tuple(tables)
        except DataError:
            continue  # this join graph's inner join is empty at our scale
        n_filters = int(gen.rng.integers(3, 7))
        predicates = gen.make_filters(tables, rows, n_filters, allow_in=False)
        if len(predicates) < 2:
            continue
        queries.append(Query.make(tables, predicates, name=f"job-m-{len(queries):03d}"))
    return queries
