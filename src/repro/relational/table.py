"""Columnar in-memory tables."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.errors import DataError
from repro.relational.column import Column


class Table:
    """An immutable, columnar, dictionary-encoded table.

    Columns are :class:`~repro.relational.column.Column` objects sharing one
    row count. Tables are the unit the join sampler, the executor, and all
    estimators operate on.
    """

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise DataError(f"table {name!r}: needs at least one column")
        n_rows = columns[0].n_rows
        for col in columns:
            if col.n_rows != n_rows:
                raise DataError(
                    f"table {name!r}: column {col.name!r} has {col.n_rows} rows, "
                    f"expected {n_rows}"
                )
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise DataError(f"table {name!r}: duplicate column names")
        self.name = name
        self.columns: Dict[str, Column] = {c.name: c for c in columns}
        self.n_rows = n_rows

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Iterable]) -> "Table":
        """Build a table from ``{column_name: values}`` (``None`` = NULL)."""
        return cls(name, [Column.from_values(k, v) for k, v in data.items()])

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        """Column names in definition order."""
        return list(self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise DataError(f"table {self.name!r} has no column {name!r}") from None

    def codes(self, name: str) -> np.ndarray:
        """Code array of one column."""
        return self.column(name).codes

    def key_codes(self, names: Sequence[str]) -> np.ndarray:
        """``(n_rows, len(names))`` matrix of codes for a composite key."""
        return np.stack([self.codes(n) for n in names], axis=1)

    def take(self, row_ids: np.ndarray) -> "Table":
        """New table restricted to the given rows (dictionaries shared)."""
        return Table(self.name, [c.take(row_ids) for c in self.columns.values()])

    def concat(self, other: "Table") -> "Table":
        """Append ``other``'s rows; dictionaries must match (same snapshot family).

        Used by the update pipeline (partition appends). Re-encodes ``other``
        against this table's dictionaries and extends dictionaries for new
        values, keeping code order consistent only when new values sort after
        existing ones (the partition generator guarantees this for keys).
        """
        cols = []
        for name, col in self.columns.items():
            ocol = other.column(name)
            if np.array_equal(col.dictionary, ocol.dictionary):
                merged = col.dictionary
                ocodes = ocol.codes
            else:
                merged = np.array(
                    sorted(set(col.dictionary.tolist()) | set(ocol.dictionary.tolist()))
                )
                lookup = {v: i + 1 for i, v in enumerate(merged.tolist())}
                remap_self = np.array(
                    [0] + [lookup[v] for v in col.dictionary.tolist()], dtype=np.int64
                )
                remap_other = np.array(
                    [0] + [lookup[v] for v in ocol.dictionary.tolist()], dtype=np.int64
                )
                cols.append(
                    Column(
                        name,
                        np.concatenate(
                            [remap_self[col.codes], remap_other[ocol.codes]]
                        ),
                        merged,
                    )
                )
                continue
            cols.append(Column(name, np.concatenate([col.codes, ocodes]), merged))
        return Table(self.name, cols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self.n_rows}, cols={self.column_names})"
