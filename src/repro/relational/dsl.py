"""JSON filter DSL: wire-format queries compiled onto Predicate/Query.

The HTTP estimation API (:mod:`repro.serving.http`) accepts queries as
plain JSON so callers never import this library. A query document is::

    {
      "tables": ["title", "cast_info"],
      "filters": [
        {"column": "title.production_year", "op": ">=", "value": 1990},
        {"table": "cast_info", "column": "role_id", "op": "in",
         "value": [1, 2]}
      ],
      "name": "optional-label"
    }

``tables`` is the connected join subset; each filter names its column
either dotted (``"table.column"``) or with an explicit ``"table"`` key.
Operators are the estimator's (``=``, ``<``, ``<=``, ``>``, ``>=``,
``IN``) plus lowercase/word aliases (``eq``, ``lt``, ``le``/``lte``,
``gt``, ``ge``/``gte``, ``in``); values are JSON scalars, or a list for
``IN``. Compilation is *structural* — it produces the exact
:class:`~repro.relational.predicate.Predicate` objects a Python caller
would hand-build, and every malformed shape raises
:class:`~repro.errors.QueryError` with a pointed message. Schema-level
validation (unknown tables/columns, connectivity) stays where it always
was: :meth:`Query.validate` / submit time.

:func:`query_to_dict` is the inverse, used by the HTTP client adapter to
put in-process :class:`Query` objects on the wire; ``query_from_dict(
query_to_dict(q))`` round-trips to an equal query (numpy scalar filter
values are coerced to their Python equivalents, which compare equal).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.errors import QueryError
from repro.relational.predicate import SUPPORTED_OPS, Predicate
from repro.relational.query import Query

#: Wire-format operator spellings accepted by :func:`predicate_from_dict`.
OP_ALIASES: Dict[str, str] = {
    "=": "=", "==": "=", "eq": "=",
    "<": "<", "lt": "<",
    "<=": "<=", "le": "<=", "lte": "<=",
    ">": ">", "gt": ">",
    ">=": ">=", "ge": ">=", "gte": ">=",
    "in": "IN", "IN": "IN",
}

_FILTER_KEYS = frozenset({"table", "column", "op", "value"})
_QUERY_KEYS = frozenset({"tables", "filters", "name"})


def _plain_value(value: Any) -> Any:
    """Coerce numpy scalars (and sequences of them) to JSON-native Python."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain_value(v) for v in value]
    return value


def predicate_from_dict(obj: Mapping[str, Any]) -> Predicate:
    """Compile one wire-format filter document into a :class:`Predicate`."""
    if not isinstance(obj, Mapping):
        raise QueryError(f"filter must be an object, got {type(obj).__name__}")
    unknown = sorted(set(obj) - _FILTER_KEYS)
    if unknown:
        raise QueryError(
            f"unknown filter key(s) {unknown}; known: {sorted(_FILTER_KEYS)}"
        )
    column = obj.get("column")
    if not isinstance(column, str) or not column:
        raise QueryError("filter requires a string 'column'")
    table = obj.get("table")
    if "." in column:
        dotted_table, _, column = column.partition(".")
        if table is not None and table != dotted_table:
            raise QueryError(
                f"filter table {table!r} contradicts dotted column "
                f"{dotted_table + '.' + column!r}"
            )
        table = dotted_table
    if not isinstance(table, str) or not table:
        raise QueryError(
            "filter requires a 'table' (explicit key or dotted 'table.column')"
        )
    op = obj.get("op")
    if not isinstance(op, str) or op not in OP_ALIASES:
        raise QueryError(
            f"unsupported filter op {op!r}; known: {sorted(set(OP_ALIASES))}"
        )
    op = OP_ALIASES[op]
    if "value" not in obj:
        raise QueryError("filter requires a 'value'")
    value = obj["value"]
    if op == "IN":
        if not isinstance(value, (list, tuple, set, frozenset)):
            raise QueryError("'in' filters require a list value")
        value = tuple(value)
    elif isinstance(value, (list, tuple, set, frozenset, dict)) or value is None:
        raise QueryError(
            f"comparison filter value must be a scalar, got {type(value).__name__}"
        )
    return Predicate(table, column, op, value)


def query_from_dict(obj: Mapping[str, Any]) -> Query:
    """Compile a wire-format query document into a :class:`Query`.

    Structural errors (wrong shapes, unknown keys/ops) raise
    :class:`QueryError`; so do the :class:`Query`/:class:`Predicate`
    constructors' own invariants (empty table list, duplicate tables,
    filters naming tables outside the join set).
    """
    if not isinstance(obj, Mapping):
        raise QueryError(f"query must be an object, got {type(obj).__name__}")
    unknown = sorted(set(obj) - _QUERY_KEYS)
    if unknown:
        raise QueryError(
            f"unknown query key(s) {unknown}; known: {sorted(_QUERY_KEYS)}"
        )
    tables = obj.get("tables")
    if (
        not isinstance(tables, (list, tuple))
        or not tables
        or not all(isinstance(t, str) for t in tables)
    ):
        raise QueryError("query requires 'tables': a non-empty list of table names")
    filters = obj.get("filters", [])
    if not isinstance(filters, (list, tuple)):
        raise QueryError("query 'filters' must be a list of filter objects")
    name = obj.get("name")
    if name is not None and not isinstance(name, str):
        raise QueryError("query 'name' must be a string")
    predicates = [predicate_from_dict(f) for f in filters]
    return Query.make(tables, predicates, name)


def predicate_to_dict(predicate: Predicate) -> Dict[str, Any]:
    """Wire-format document for one predicate (JSON-serializable)."""
    value = _plain_value(predicate.value)
    return {
        "table": predicate.table,
        "column": predicate.column,
        "op": predicate.op,
        "value": value,
    }


def query_to_dict(query: Query) -> Dict[str, Any]:
    """Wire-format document for a query; inverse of :func:`query_from_dict`."""
    doc: Dict[str, Any] = {
        "tables": list(query.tables),
        "filters": [predicate_to_dict(p) for p in query.predicates],
    }
    if query.name is not None:
        doc["name"] = query.name
    return doc


__all__: List[str] = [
    "OP_ALIASES",
    "predicate_from_dict",
    "predicate_to_dict",
    "query_from_dict",
    "query_to_dict",
]
