"""Tree-shaped join schemas with multi-key equi-join edges.

A :class:`JoinSchema` is the paper's "join schema": vertices are tables,
edges connect joinable tables (§2). We store edges oriented away from a root
table; the orientation only fixes the direction of the join-count dynamic
program (§4.1) and is semantically irrelevant. Schemas must be acyclic and
connected (the paper's assumption; §4.2 discusses relaxations we do not need
for any evaluated workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import ReproError, SchemaError
from repro.relational.table import Table


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge ``parent.pk_i = child.ck_i`` for each key pair.

    ``keys`` is a tuple of ``(parent_column, child_column)`` pairs; composite
    (multi-column) keys join on the conjunction of all pairs.
    """

    parent: str
    child: str
    keys: Tuple[Tuple[str, str], ...]

    @property
    def name(self) -> str:
        """Stable human-readable identifier, e.g. ``'title<-cast_info'``."""
        return f"{self.parent}<-{self.child}"

    @property
    def parent_columns(self) -> Tuple[str, ...]:
        return tuple(pk for pk, _ in self.keys)

    @property
    def child_columns(self) -> Tuple[str, ...]:
        return tuple(ck for _, ck in self.keys)

    def columns_of(self, table: str) -> Tuple[str, ...]:
        """This edge's key columns belonging to ``table``."""
        if table == self.parent:
            return self.parent_columns
        if table == self.child:
            return self.child_columns
        raise SchemaError(f"edge {self.name} is not incident to table {table!r}")

    def other(self, table: str) -> str:
        """The endpoint opposite to ``table``."""
        if table == self.parent:
            return self.child
        if table == self.child:
            return self.parent
        raise SchemaError(f"edge {self.name} is not incident to table {table!r}")


@dataclass
class JoinSchema:
    """A rooted tree of tables joined by :class:`JoinEdge` s."""

    tables: Dict[str, Table]
    edges: List[JoinEdge]
    root: str
    _children: Dict[str, List[JoinEdge]] = field(init=False, repr=False)
    _parent_edge: Dict[str, Optional[JoinEdge]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._validate()
        self._children = {name: [] for name in self.tables}
        self._parent_edge = {name: None for name in self.tables}
        for edge in self.edges:
            self._children[edge.parent].append(edge)
            self._parent_edge[edge.child] = edge

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.root not in self.tables:
            raise SchemaError(f"root table {self.root!r} not in schema")
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for edge in self.edges:
            for endpoint in (edge.parent, edge.child):
                if endpoint not in self.tables:
                    raise SchemaError(f"edge {edge.name}: unknown table {endpoint!r}")
            for pk, ck in edge.keys:
                try:
                    self.tables[edge.parent].column(pk)
                    self.tables[edge.child].column(ck)
                except ReproError as exc:
                    raise SchemaError(f"edge {edge.name}: {exc}") from None
            if graph.has_edge(edge.parent, edge.child):
                raise SchemaError(f"duplicate edge between {edge.parent} and {edge.child}")
            graph.add_edge(edge.parent, edge.child)
        if len(self.tables) > 1:
            if not nx.is_connected(graph):
                raise SchemaError("join schema must be connected")
            if len(self.edges) != len(self.tables) - 1:
                raise SchemaError("join schema must be acyclic (a tree)")
        seen = {self.root}
        frontier = [self.root]
        while frontier:
            table = frontier.pop()
            for edge in self.edges:
                if edge.parent == table and edge.child not in seen:
                    seen.add(edge.child)
                    frontier.append(edge.child)
        if seen != set(self.tables):
            raise SchemaError(
                "edge orientation does not form a tree rooted at "
                f"{self.root!r}; unreachable: {sorted(set(self.tables) - seen)}"
            )

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> List[str]:
        return list(self.tables)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"schema has no table {name!r}") from None

    def child_edges(self, table: str) -> List[JoinEdge]:
        """Edges from ``table`` to its children."""
        return self._children[table]

    def parent_edge(self, table: str) -> Optional[JoinEdge]:
        """Edge from ``table``'s parent, or ``None`` for the root."""
        return self._parent_edge[table]

    def incident_edges(self, table: str) -> List[JoinEdge]:
        """All edges touching ``table``."""
        edges = list(self._children[table])
        parent = self._parent_edge[table]
        if parent is not None:
            edges.append(parent)
        return edges

    def bfs_order(
        self, root: Optional[str] = None, within: Optional[Iterable[str]] = None
    ) -> List[str]:
        """Tables in breadth-first order from ``root``, optionally restricted
        to a connected subset ``within``."""
        root = root or self.root
        allowed = set(within) if within is not None else set(self.tables)
        if root not in allowed:
            raise SchemaError(f"bfs root {root!r} not in the allowed subset")
        order, frontier = [root], [root]
        seen = {root}
        while frontier:
            table = frontier.pop(0)
            order.append(table) if table not in order else None
            for edge in self.incident_edges(table):
                nxt = edge.other(table)
                if nxt in allowed and nxt not in seen:
                    seen.add(nxt)
                    order.append(nxt)
                    frontier.append(nxt)
        return order

    def is_connected_subset(self, subset: Sequence[str]) -> bool:
        """Whether ``subset`` induces a connected subtree of the schema."""
        subset = list(subset)
        if not subset:
            return False
        for name in subset:
            if name not in self.tables:
                raise SchemaError(f"unknown table {name!r}")
        reached = self.bfs_order(root=subset[0], within=subset)
        return set(reached) == set(subset)

    def query_root(self, subset: Sequence[str]) -> str:
        """The member of ``subset`` closest to the schema root."""
        depth = self._depths()
        return min(subset, key=lambda t: depth[t])

    def _depths(self) -> Dict[str, int]:
        depths = {self.root: 0}
        frontier = [self.root]
        while frontier:
            table = frontier.pop()
            for edge in self.child_edges(table):
                depths[edge.child] = depths[table] + 1
                frontier.append(edge.child)
        return depths

    def path(self, source: str, target: str) -> List[str]:
        """Unique path of tables from ``source`` to ``target``."""
        graph = nx.Graph()
        graph.add_nodes_from(self.tables)
        for edge in self.edges:
            graph.add_edge(edge.parent, edge.child)
        return nx.shortest_path(graph, source, target)

    def edge_between(self, a: str, b: str) -> JoinEdge:
        """The edge connecting adjacent tables ``a`` and ``b``."""
        for edge in self.edges:
            if {edge.parent, edge.child} == {a, b}:
                return edge
        raise SchemaError(f"no edge between {a!r} and {b!r}")

    def fanout_edges_for_omitted(self, query_tables: Sequence[str]) -> List[Tuple[str, JoinEdge]]:
        """Downscaling plan for schema subsetting (§6).

        For every table omitted by the query, returns ``(omitted_table,
        edge)`` where ``edge`` is the unique edge incident to the omitted
        table on its path toward the query subtree. The fanout virtual column
        of that (table, edge) pair divides the estimate (Eq. 9).
        """
        query = set(query_tables)
        if not self.is_connected_subset(query_tables):
            raise SchemaError("query tables must induce a connected subtree")
        plan = []
        anchor = next(iter(query))
        for omitted in self.tables:
            if omitted in query:
                continue
            path = self.path(omitted, anchor)
            neighbor = path[1]
            plan.append((omitted, self.edge_between(omitted, neighbor)))
        return plan

    def join_key_columns(self, table: str) -> List[str]:
        """All columns of ``table`` used as join keys on any incident edge."""
        cols: List[str] = []
        for edge in self.incident_edges(table):
            for col in edge.columns_of(table):
                if col not in cols:
                    cols.append(col)
        return cols

    def replace_table(self, table: Table) -> "JoinSchema":
        """New schema with one table swapped (used by the update pipeline)."""
        tables = dict(self.tables)
        if table.name not in tables:
            raise SchemaError(f"cannot replace unknown table {table.name!r}")
        tables[table.name] = table
        return JoinSchema(tables=tables, edges=list(self.edges), root=self.root)


def star_schema(
    fact: Table, dimensions: Mapping[Table, Tuple[str, str]] | Sequence[Tuple[Table, str, str]]
) -> JoinSchema:
    """Convenience constructor for a star schema rooted at ``fact``.

    ``dimensions`` maps each dimension table to ``(fact_column,
    dimension_column)`` or is a sequence of ``(table, fact_col, dim_col)``.
    """
    if isinstance(dimensions, Mapping):
        items = [(tbl, fc, dc) for tbl, (fc, dc) in dimensions.items()]
    else:
        items = list(dimensions)
    tables = {fact.name: fact}
    edges = []
    for tbl, fact_col, dim_col in items:
        tables[tbl.name] = tbl
        edges.append(JoinEdge(parent=fact.name, child=tbl.name, keys=((fact_col, dim_col),)))
    return JoinSchema(tables=tables, edges=edges, root=fact.name)
