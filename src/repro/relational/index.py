"""Hash indexes on (possibly composite) join keys.

The paper assumes each base table has an index per join key (§4, footnote 1);
the sampler uses them for "indexed lookup" of join partners and for fanout
bookkeeping. We index dictionary *codes*, which is sufficient because join
partners are matched on raw values and both sides translate through their own
dictionaries via :meth:`HashIndex.translate_key`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.relational.column import NULL_CODE
from repro.relational.table import Table

Key = Tuple[int, ...]


class HashIndex:
    """Maps a composite key (tuple of codes) to the row ids holding it.

    NULL keys (any component NULL) are indexed under their code tuple as
    well, but :meth:`lookup` of a key containing ``NULL_CODE`` returns no
    rows, matching SQL equi-join semantics (NULL joins nothing).
    """

    def __init__(self, table: Table, key_columns: Sequence[str]):
        self.table_name = table.name
        self.key_columns = tuple(key_columns)
        mat = table.key_codes(key_columns)
        order = np.lexsort(mat.T[::-1])
        sorted_mat = mat[order]
        boundaries = np.ones(len(order), dtype=bool)
        if len(order) > 1:
            boundaries[1:] = (sorted_mat[1:] != sorted_mat[:-1]).any(axis=1)
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], len(order))
        self._rows: Dict[Key, np.ndarray] = {}
        for s, e in zip(starts, ends):
            key = tuple(int(v) for v in sorted_mat[s])
            self._rows[key] = order[s:e]

    def lookup(self, key: Key) -> np.ndarray:
        """Row ids whose key equals ``key``; empty if any component is NULL."""
        if NULL_CODE in key:
            return np.empty(0, dtype=np.int64)
        return self._rows.get(tuple(key), np.empty(0, dtype=np.int64))

    def count(self, key: Key) -> int:
        """Number of rows holding ``key`` (the *fanout* of that key value)."""
        return int(self.lookup(key).size)

    def keys(self):
        """All distinct key tuples present (including NULL-containing ones)."""
        return self._rows.keys()

    def __len__(self) -> int:
        return len(self._rows)

    @staticmethod
    def translate_key(
        src_table: Table,
        src_columns: Sequence[str],
        key: Key,
        dst_table: Table,
        dst_columns: Sequence[str],
    ) -> Key:
        """Translate a code tuple from one table's dictionaries to another's.

        Returns a key containing ``-1`` components for values absent from the
        destination dictionary (such keys match no destination rows).
        """
        out = []
        for code, src_name, dst_name in zip(key, src_columns, dst_columns):
            if code == NULL_CODE:
                out.append(NULL_CODE)
                continue
            value = src_table.column(src_name).dictionary[code - 1]
            dst_code = dst_table.column(dst_name).code_for(value)
            out.append(-1 if dst_code is None else dst_code)
        return tuple(out)
