"""Relational substrate: columnar tables, indexes, join schemas, queries.

This subpackage implements the storage layer NeuroCard assumes: dictionary-
encoded columnar base tables (`Column`, `Table`), hash indexes on join keys
(`HashIndex`), tree-shaped join schemas with multi-key equi-join edges
(`JoinSchema`, `JoinEdge`), the query model (`Predicate`, `Query`), and
the JSON wire format the HTTP API compiles onto it
(`query_from_dict`/`query_to_dict`).
"""

from repro.relational.column import NULL_CODE, Column
from repro.relational.dsl import (
    predicate_from_dict,
    predicate_to_dict,
    query_from_dict,
    query_to_dict,
)
from repro.relational.index import HashIndex
from repro.relational.predicate import SUPPORTED_OPS, Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table

__all__ = [
    "NULL_CODE",
    "Column",
    "Table",
    "HashIndex",
    "JoinEdge",
    "JoinSchema",
    "Predicate",
    "Query",
    "SUPPORTED_OPS",
    "predicate_from_dict",
    "predicate_to_dict",
    "query_from_dict",
    "query_to_dict",
]
