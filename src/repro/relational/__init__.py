"""Relational substrate: columnar tables, indexes, join schemas, queries.

This subpackage implements the storage layer NeuroCard assumes: dictionary-
encoded columnar base tables (`Column`, `Table`), hash indexes on join keys
(`HashIndex`), tree-shaped join schemas with multi-key equi-join edges
(`JoinSchema`, `JoinEdge`), and the query model (`Predicate`, `Query`).
"""

from repro.relational.column import NULL_CODE, Column
from repro.relational.index import HashIndex
from repro.relational.predicate import SUPPORTED_OPS, Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinEdge, JoinSchema
from repro.relational.table import Table

__all__ = [
    "NULL_CODE",
    "Column",
    "Table",
    "HashIndex",
    "JoinEdge",
    "JoinSchema",
    "Predicate",
    "Query",
    "SUPPORTED_OPS",
]
