"""Join queries: a connected table subset plus conjunctive filters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.relational.predicate import Predicate
from repro.relational.schema import JoinSchema


@dataclass(frozen=True)
class Query:
    """An inner-join query over a subtree of the schema (§3.3).

    ``tables`` must induce a connected subtree; ``predicates`` is the
    conjunction of single-table filters. ``name`` is optional metadata used
    by workload reports.
    """

    tables: Tuple[str, ...]
    predicates: Tuple[Predicate, ...] = ()
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("a query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError("duplicate tables in query (self-joins unsupported)")
        table_set = set(self.tables)
        for pred in self.predicates:
            if pred.table not in table_set:
                raise QueryError(
                    f"predicate {pred} references table outside the query join graph"
                )

    @staticmethod
    def make(
        tables: Sequence[str],
        predicates: Sequence[Predicate] = (),
        name: Optional[str] = None,
    ) -> "Query":
        """Convenience constructor accepting plain sequences."""
        return Query(tuple(tables), tuple(predicates), name)

    def validate(self, schema: JoinSchema) -> None:
        """Raise :class:`QueryError` unless this query fits ``schema``."""
        for table in self.tables:
            if table not in schema.tables:
                raise QueryError(f"query references unknown table {table!r}")
        if not schema.is_connected_subset(self.tables):
            raise QueryError(
                f"query tables {self.tables} do not induce a connected subtree"
            )
        for pred in self.predicates:
            schema.table(pred.table).column(pred.column)

    @property
    def n_joins(self) -> int:
        """Number of join edges in the query graph."""
        return len(self.tables) - 1

    def predicates_by_table(self) -> Dict[str, List[Predicate]]:
        """Group predicates per table (tables with no filters are absent)."""
        grouped: Dict[str, List[Predicate]] = {}
        for pred in self.predicates:
            grouped.setdefault(pred.table, []).append(pred)
        return grouped

    def __str__(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        label = f"[{self.name}] " if self.name else ""
        return f"{label}SELECT COUNT(*) FROM {' JOIN '.join(self.tables)} WHERE {preds}"
