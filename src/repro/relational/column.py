"""Dictionary-encoded, NULL-aware columns.

A :class:`Column` stores values as integer *codes* into an order-preserving
dictionary: code 0 is reserved for NULL, and codes ``1..K`` index the sorted
array of distinct non-NULL values. Order preservation means a range filter on
values maps to a *contiguous* interval of codes, which both the ground-truth
executor and NeuroCard's factorized inference rely on.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import DataError

#: Reserved dictionary code for SQL NULL. Always present in every column's
#: domain, even when the data contains no NULLs, so that model vocabularies
#: are uniform across snapshots of the same schema.
NULL_CODE = 0


class Column:
    """A single dictionary-encoded column.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    codes:
        ``int64`` array of dictionary codes; ``NULL_CODE`` marks NULL.
    dictionary:
        Sorted array of distinct non-NULL values; ``codes[i] == k`` (k >= 1)
        means row ``i`` holds ``dictionary[k - 1]``.
    """

    __slots__ = ("name", "codes", "dictionary")

    def __init__(self, name: str, codes: np.ndarray, dictionary: np.ndarray):
        if codes.ndim != 1:
            raise DataError(f"column {name!r}: codes must be 1-D")
        if codes.size and (codes.min() < 0 or codes.max() > len(dictionary)):
            raise DataError(f"column {name!r}: codes out of dictionary range")
        self.name = name
        self.codes = np.ascontiguousarray(codes, dtype=np.int64)
        self.dictionary = dictionary

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, name: str, values: Iterable) -> "Column":
        """Build a column from raw Python/numpy values; ``None``/NaN are NULL."""
        raw = list(values)
        is_null = np.array(
            [v is None or (isinstance(v, float) and np.isnan(v)) for v in raw],
            dtype=bool,
        )
        non_null = [v for v, n in zip(raw, is_null) if not n]
        if non_null:
            dictionary = np.array(sorted(set(non_null)))
        else:
            dictionary = np.array([], dtype=np.int64)
        codes = np.zeros(len(raw), dtype=np.int64)
        if non_null:
            lookup = {v: i + 1 for i, v in enumerate(dictionary.tolist())}
            codes[~is_null] = np.array([lookup[v] for v in non_null], dtype=np.int64)
        return cls(name, codes, dictionary)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows stored."""
        return int(self.codes.size)

    @property
    def domain_size(self) -> int:
        """Size of the code domain *including* the NULL code (= ``K + 1``)."""
        return int(len(self.dictionary)) + 1

    @property
    def n_distinct(self) -> int:
        """Number of distinct non-NULL values."""
        return int(len(self.dictionary))

    @property
    def has_nulls(self) -> bool:
        """Whether any stored row is NULL."""
        return bool((self.codes == NULL_CODE).any())

    def decode(self, codes: Sequence[int]) -> list:
        """Map codes back to values (``None`` for NULL)."""
        out = []
        for code in codes:
            out.append(None if code == NULL_CODE else self.dictionary[code - 1])
        return out

    # ------------------------------------------------------------------
    # Value <-> code translation for filters
    # ------------------------------------------------------------------
    def code_for(self, value) -> Optional[int]:
        """Exact-match code for ``value``, or ``None`` if absent from the data."""
        idx = np.searchsorted(self.dictionary, value)
        if idx < len(self.dictionary) and self.dictionary[idx] == value:
            return int(idx) + 1
        return None

    def code_range(self, op: str, value) -> tuple[int, int]:
        """Inclusive code interval ``[lo, hi]`` matching ``<op> value``.

        Returns an empty interval (``lo > hi``) when nothing matches. NULLs
        never match, so intervals never include ``NULL_CODE``.
        """
        n = len(self.dictionary)
        if n == 0:
            return (1, 0)
        if op == "=":
            code = self.code_for(value)
            return (code, code) if code is not None else (1, 0)
        if op == "<":
            hi = int(np.searchsorted(self.dictionary, value, side="left"))
            return (1, hi)
        if op == "<=":
            hi = int(np.searchsorted(self.dictionary, value, side="right"))
            return (1, hi)
        if op == ">":
            lo = int(np.searchsorted(self.dictionary, value, side="right")) + 1
            return (lo, n)
        if op == ">=":
            lo = int(np.searchsorted(self.dictionary, value, side="left")) + 1
            return (lo, n)
        raise DataError(f"code_range does not support operator {op!r}")

    def codes_for_in(self, values: Iterable) -> np.ndarray:
        """Codes for an ``IN`` list; values absent from the data are dropped."""
        codes = [self.code_for(v) for v in values]
        return np.array(sorted(c for c in codes if c is not None), dtype=np.int64)

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def mask(self, op: str, value) -> np.ndarray:
        """Boolean mask of rows satisfying ``<op> value`` (NULLs never match)."""
        if op == "IN":
            valid = self.codes_for_in(value)
            return np.isin(self.codes, valid)
        lo, hi = self.code_range(op, value)
        return (self.codes >= lo) & (self.codes <= hi)

    def take(self, row_ids: np.ndarray) -> "Column":
        """New column restricted to ``row_ids`` (dictionary is shared)."""
        return Column(self.name, self.codes[row_ids], self.dictionary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Column({self.name!r}, rows={self.n_rows}, "
            f"distinct={self.n_distinct}, nulls={self.has_nulls})"
        )
