"""Single-table filter predicates.

The paper's workloads use conjunctions of single-table filters with operators
``<, >, <=, >=, =`` and ``IN`` (§3.3). A :class:`Predicate` evaluates against
a base table and also exposes its valid code region for model inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.errors import QueryError
from repro.relational.table import Table

#: Operators supported by the estimator and the workloads.
SUPPORTED_OPS = ("=", "<", "<=", ">", ">=", "IN")


@dataclass(frozen=True)
class Predicate:
    """A filter ``table.column <op> value`` (value is a collection for IN)."""

    table: str
    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in SUPPORTED_OPS:
            raise QueryError(f"unsupported operator {self.op!r}")
        if self.op == "IN" and not isinstance(self.value, (list, tuple, set, frozenset)):
            raise QueryError("IN predicates require a collection value")

    def mask(self, table: Table) -> np.ndarray:
        """Boolean row mask over ``table`` (NULLs never match)."""
        if table.name != self.table:
            raise QueryError(
                f"predicate on {self.table!r} evaluated against table {table.name!r}"
            )
        return table.column(self.column).mask(self.op, self.value)

    def code_region(self, table: Table) -> Tuple[str, Any]:
        """The predicate translated to code space.

        Returns ``("interval", (lo, hi))`` for comparison operators (inclusive
        code interval, possibly empty) or ``("set", codes)`` for IN.
        """
        column = table.column(self.column)
        if self.op == "IN":
            return ("set", column.codes_for_in(self.value))
        return ("interval", column.code_range(self.op, self.value))

    def __str__(self) -> str:
        if self.op == "IN":
            return f"{self.table}.{self.column} IN ({len(self.value)} values)"
        return f"{self.table}.{self.column} {self.op} {self.value!r}"
