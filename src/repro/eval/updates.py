"""Partition-append update pipeline (paper §7.6, Table 6).

``title`` is range-partitioned on production year into N partitions; child
tables follow their parent title's partition. Snapshot *k* contains the
first *k* partitions of every partitioned table, and — crucially — all
snapshots share dictionary code spaces (rows are subset via ``Table.take``),
so one model vocabulary covers every snapshot.

Three strategies are compared on each ingest:
* ``stale``  — never updated after the first snapshot;
* ``fast``   — incremental training on ~1% of the original tuple budget;
* ``retrain``— full retraining from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.errors import DataError
from repro.eval.harness import evaluate_estimator, true_cardinalities
from repro.joins.counts import JoinCounts
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.relational.table import Table


def partition_by_year(
    schema: JoinSchema,
    n_partitions: int = 5,
    year_table: str = "title",
    year_column: str = "production_year",
) -> List[JoinSchema]:
    """Cumulative snapshots 1..N of the database, partitioned on year.

    Only the fact table and its direct children (via the fact's edges) are
    partitioned; deeper dimension tables are reference data present in every
    snapshot.
    """
    if n_partitions < 2:
        raise DataError("need at least two partitions")
    fact = schema.table(year_table)
    order = np.argsort(fact.codes(year_column), kind="stable")
    chunks = np.array_split(order, n_partitions)

    # Assign each child row to its parent title's partition.
    fact_partition = np.empty(fact.n_rows, dtype=np.int64)
    for p, chunk in enumerate(chunks):
        fact_partition[chunk] = p

    snapshots: List[JoinSchema] = []
    for k in range(1, n_partitions + 1):
        keep_fact = np.sort(np.concatenate(chunks[:k]))
        tables: Dict[str, Table] = {year_table: fact.take(keep_fact)}
        kept_ids: Optional[np.ndarray] = None
        id_col = None
        for name, table in schema.tables.items():
            if name == year_table:
                continue
            edge = schema.parent_edge(name)
            if edge is None or edge.parent != year_table:
                tables[name] = table  # reference/dimension data
                continue
            if id_col is None:
                id_col = edge.parent_columns[0]
                kept_ids = np.unique(fact.codes(id_col)[keep_fact])
            child_cols = edge.child_columns
            child_key = table.codes(child_cols[0])
            # Translate child codes to parent codes by value.
            from repro.joins.keyops import translation_array

            trans = translation_array(
                table.column(child_cols[0]), fact.column(id_col)
            )
            translated = trans[child_key]
            keep = np.isin(translated, kept_ids) | (translated <= 0)
            tables[name] = table.take(np.flatnonzero(keep))
        snapshots.append(
            JoinSchema(tables=tables, edges=list(schema.edges), root=schema.root)
        )
    return snapshots


@dataclass
class UpdateCell:
    """One (strategy, partition) measurement of Table 6."""

    strategy: str
    partition: int
    p50: float
    p95: float
    update_seconds: float
    #: incremental-training throughput of this refresh (0 when no training
    #: happened); fed by the vectorized sampling pipeline's TrainResult.
    tuples_per_second: float = 0.0


@dataclass
class UpdateExperiment:
    cells: List[UpdateCell] = field(default_factory=list)

    def row(self, strategy: str) -> List[UpdateCell]:
        return sorted(
            (c for c in self.cells if c.strategy == strategy),
            key=lambda c: c.partition,
        )

    def format(self) -> str:
        lines = ["Strategy      Part   p50      p95     update-s   tuples/s"]
        for strategy in ("stale", "fast update", "retrain"):
            for cell in self.row(strategy):
                lines.append(
                    f"{strategy:<13} {cell.partition:>4} {cell.p50:>7.2f} "
                    f"{cell.p95:>8.2f} {cell.update_seconds:>8.2f} "
                    f"{cell.tuples_per_second:>10.0f}"
                )
        return "\n".join(lines)


def run_update_experiment(
    snapshots: Sequence[JoinSchema],
    queries: Sequence[Query],
    config: Optional[NeuroCardConfig] = None,
    fast_fraction: float = 0.01,
) -> UpdateExperiment:
    """Evaluate stale / fast-update / retrain across cumulative ingests."""
    config = config if config is not None else NeuroCardConfig()
    experiment = UpdateExperiment()

    def eval_on(estimator: NeuroCard, snapshot: JoinSchema, counts: JoinCounts):
        truths = true_cardinalities(snapshot, queries, counts)
        res = evaluate_estimator("nc", estimator, queries, truths)
        summary = res.summary()
        return summary.median, summary.p95

    counts_per_snapshot = [JoinCounts(s) for s in snapshots]

    # Strategy: stale — fit once, never update.
    stale = NeuroCard(snapshots[0], config).fit()
    for k, snapshot in enumerate(snapshots):
        p50, p95 = eval_on(stale, snapshot, counts_per_snapshot[k])
        experiment.cells.append(UpdateCell("stale", k + 1, p50, p95, 0.0))

    # Strategy: fast update — incremental training on 1% of the budget.
    fast = NeuroCard(snapshots[0], config).fit()
    p50, p95 = eval_on(fast, snapshots[0], counts_per_snapshot[0])
    experiment.cells.append(UpdateCell("fast update", 1, p50, p95, 0.0))
    for k in range(1, len(snapshots)):
        seen_before = fast.train_result.tuples_seen
        wall_before = fast.train_result.wall_seconds
        start = time.perf_counter()
        fast.update(
            snapshots[k],
            train_tuples=max(int(config.train_tuples * fast_fraction), 512),
        )
        elapsed = time.perf_counter() - start
        # Throughput of just the incremental refresh (batched sampler path).
        d_tuples = fast.train_result.tuples_seen - seen_before
        d_wall = max(fast.train_result.wall_seconds - wall_before, 1e-9)
        p50, p95 = eval_on(fast, snapshots[k], counts_per_snapshot[k])
        experiment.cells.append(
            UpdateCell("fast update", k + 1, p50, p95, elapsed, d_tuples / d_wall)
        )

    # Strategy: retrain — full refit on every ingest.
    for k, snapshot in enumerate(snapshots):
        start = time.perf_counter()
        fresh = NeuroCard(snapshot, config).fit()
        elapsed = time.perf_counter() - start
        p50, p95 = eval_on(fresh, snapshot, counts_per_snapshot[k])
        experiment.cells.append(
            UpdateCell("retrain", k + 1, p50, p95, 0.0 if k == 0 else elapsed)
        )
    return experiment
