"""Partition-append update pipeline (paper §7.6, Table 6).

``title`` is range-partitioned on production year into N partitions; child
tables follow their parent title's partition. Snapshot *k* contains the
first *k* partitions of every partitioned table, and — crucially — all
snapshots share dictionary code spaces (rows are subset via ``Table.take``),
so one model vocabulary covers every snapshot.

Three strategies are compared on each ingest:
* ``stale``  — never updated after the first snapshot;
* ``fast``   — incremental training on ~1% of the original tuple budget;
* ``retrain``— full retraining from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.core.refresh import (
    FAST_REFRESH_FRACTION,
    clone_estimator,
    fast_refresh,
    full_retrain,
)
from repro.errors import DataError
from repro.eval.harness import evaluate_estimator, true_cardinalities
from repro.joins.counts import JoinCounts
from repro.relational.query import Query
from repro.relational.schema import JoinSchema
from repro.relational.table import Table


def _partition_row_ids(
    schema: JoinSchema,
    n_partitions: int,
    year_table: str,
    year_column: str,
) -> List[Dict[str, np.ndarray]]:
    """Cumulative kept-row-id arrays per snapshot, per partitioned table.

    Only the fact table and its direct children (via the fact's edges) are
    partitioned; deeper dimension tables are reference data present in every
    snapshot (and absent from the returned dicts).
    """
    if n_partitions < 2:
        raise DataError("need at least two partitions")
    fact = schema.table(year_table)
    order = np.argsort(fact.codes(year_column), kind="stable")
    chunks = np.array_split(order, n_partitions)

    keep_per_snapshot: List[Dict[str, np.ndarray]] = []
    for k in range(1, n_partitions + 1):
        keep_fact = np.sort(np.concatenate(chunks[:k]))
        keeps: Dict[str, np.ndarray] = {year_table: keep_fact}
        kept_ids: Optional[np.ndarray] = None
        id_col = None
        for name, table in schema.tables.items():
            if name == year_table:
                continue
            edge = schema.parent_edge(name)
            if edge is None or edge.parent != year_table:
                continue  # reference/dimension data
            if id_col is None:
                id_col = edge.parent_columns[0]
                kept_ids = np.unique(fact.codes(id_col)[keep_fact])
            child_cols = edge.child_columns
            child_key = table.codes(child_cols[0])
            # Translate child codes to parent codes by value.
            from repro.joins.keyops import translation_array

            trans = translation_array(
                table.column(child_cols[0]), fact.column(id_col)
            )
            translated = trans[child_key]
            keep = np.isin(translated, kept_ids) | (translated <= 0)
            keeps[name] = np.flatnonzero(keep)
        keep_per_snapshot.append(keeps)
    return keep_per_snapshot


def _snapshot_from_keeps(
    schema: JoinSchema, keeps: Dict[str, np.ndarray]
) -> JoinSchema:
    tables = {
        name: (table.take(keeps[name]) if name in keeps else table)
        for name, table in schema.tables.items()
    }
    return JoinSchema(tables=tables, edges=list(schema.edges), root=schema.root)


def partition_by_year(
    schema: JoinSchema,
    n_partitions: int = 5,
    year_table: str = "title",
    year_column: str = "production_year",
) -> List[JoinSchema]:
    """Cumulative snapshots 1..N of the database, partitioned on year.

    Only the fact table and its direct children (via the fact's edges) are
    partitioned; deeper dimension tables are reference data present in every
    snapshot.
    """
    keep_per_snapshot = _partition_row_ids(
        schema, n_partitions, year_table, year_column
    )
    return [_snapshot_from_keeps(schema, keeps) for keeps in keep_per_snapshot]


def partition_stream(
    schema: JoinSchema,
    n_partitions: int = 5,
    year_table: str = "title",
    year_column: str = "production_year",
) -> Tuple[List[JoinSchema], List[Dict[str, Table]]]:
    """The §7.6 split as a *stream*: snapshots plus per-step delta tables.

    Returns ``(snapshots, deltas)`` where ``snapshots`` is exactly
    :func:`partition_by_year`'s output and ``deltas[k]`` holds, per
    partitioned table, the rows that arrive with ingest ``k`` (``deltas[0]``
    is empty: snapshot 1 is the initial load). Feeding ``deltas[1..]`` to a
    :class:`repro.serving.updates.StreamingIngestor` seeded with
    ``snapshots[0]`` reproduces each snapshot up to row order — appended
    rows land at the end of each table instead of year-sorted position, and
    every aggregate the estimator consumes (join counts, histograms,
    sampling weights) is row-order invariant.
    """
    keep_per_snapshot = _partition_row_ids(
        schema, n_partitions, year_table, year_column
    )
    snapshots = [_snapshot_from_keeps(schema, keeps) for keeps in keep_per_snapshot]
    deltas: List[Dict[str, Table]] = [{}]
    for prev, curr in zip(keep_per_snapshot, keep_per_snapshot[1:]):
        delta: Dict[str, Table] = {}
        for name, keep in curr.items():
            new_rows = np.setdiff1d(keep, prev[name], assume_unique=True)
            if len(new_rows):
                delta[name] = schema.table(name).take(new_rows)
        deltas.append(delta)
    return snapshots, deltas


@dataclass
class UpdateCell:
    """One (strategy, partition) measurement of Table 6."""

    strategy: str
    partition: int
    p50: float
    p95: float
    update_seconds: float
    #: incremental-training throughput of this refresh (0 when no training
    #: happened); fed by the vectorized sampling pipeline's TrainResult.
    tuples_per_second: float = 0.0


@dataclass
class UpdateExperiment:
    cells: List[UpdateCell] = field(default_factory=list)

    def row(self, strategy: str) -> List[UpdateCell]:
        return sorted(
            (c for c in self.cells if c.strategy == strategy),
            key=lambda c: c.partition,
        )

    def format(self) -> str:
        lines = ["Strategy      Part   p50      p95     update-s   tuples/s"]
        for strategy in ("stale", "fast update", "retrain"):
            for cell in self.row(strategy):
                lines.append(
                    f"{strategy:<13} {cell.partition:>4} {cell.p50:>7.2f} "
                    f"{cell.p95:>8.2f} {cell.update_seconds:>8.2f} "
                    f"{cell.tuples_per_second:>10.0f}"
                )
        return "\n".join(lines)


def run_update_experiment(
    snapshots: Sequence[JoinSchema],
    queries: Sequence[Query],
    config: Optional[NeuroCardConfig] = None,
    fast_fraction: float = FAST_REFRESH_FRACTION,
) -> UpdateExperiment:
    """Evaluate stale / fast-update / retrain across cumulative ingests.

    The strategies themselves live in :mod:`repro.core.refresh` (the serving
    layer's background refresher drives the same functions against live
    traffic); this pipeline applies them offline and scores each (strategy,
    partition) cell against exact truths.
    """
    config = config if config is not None else NeuroCardConfig()
    experiment = UpdateExperiment()

    def eval_on(estimator: NeuroCard, snapshot: JoinSchema, counts: JoinCounts):
        truths = true_cardinalities(snapshot, queries, counts)
        res = evaluate_estimator("nc", estimator, queries, truths)
        summary = res.summary()
        return summary.median, summary.p95

    counts_per_snapshot = [JoinCounts(s) for s in snapshots]

    # Strategy: stale — fit once, never update.
    stale = NeuroCard(snapshots[0], config).fit()
    for k, snapshot in enumerate(snapshots):
        p50, p95 = eval_on(stale, snapshot, counts_per_snapshot[k])
        experiment.cells.append(UpdateCell("stale", k + 1, p50, p95, 0.0))

    # Strategy: fast update — incremental training on ~1% of the budget.
    # The stale estimator doubles as the shared starting point (both
    # strategies begin from the same snapshot-1 fit, as in the paper).
    fast = clone_estimator(stale)
    p50, p95 = eval_on(fast, snapshots[0], counts_per_snapshot[0])
    experiment.cells.append(UpdateCell("fast update", 1, p50, p95, 0.0))
    for k in range(1, len(snapshots)):
        outcome = fast_refresh(
            fast, snapshots[k], fraction=fast_fraction, data_version=k
        )
        p50, p95 = eval_on(fast, snapshots[k], counts_per_snapshot[k])
        experiment.cells.append(
            UpdateCell(
                "fast update", k + 1, p50, p95,
                outcome.seconds, outcome.tuples_per_second,
            )
        )

    # Strategy: retrain — full refit on every ingest.
    for k, snapshot in enumerate(snapshots):
        outcome = full_retrain(snapshot, config, data_version=k)
        p50, p95 = eval_on(outcome.estimator, snapshot, counts_per_snapshot[k])
        experiment.cells.append(
            UpdateCell(
                "retrain", k + 1, p50, p95, 0.0 if k == 0 else outcome.seconds
            )
        )
    return experiment
