"""Held-out calibration workloads for the estimator cascade.

:meth:`repro.serving.cascade.EstimatorCascade.calibrate` needs a workload
that (a) is disjoint from the serving traffic, (b) covers every query
class the router buckets on (single-table vs join, equality vs range,
narrow vs wide — see :class:`~repro.serving.cascade.QueryFeatures`), and
(c) has non-trivial true cardinalities so per-class q-error bounds mean
something. :func:`calibration_workload` generates one for *any*
:class:`~repro.relational.schema.JoinSchema` — unlike the JOB-specific
generators in :mod:`repro.workloads.generators`, it discovers filterable
columns from the schema itself (every non-join-key column), drawing
literals from sampled tuples so results are non-empty by construction.

Pair with :func:`repro.eval.harness.true_cardinalities` for the truth
labels, then persist the calibration with
:meth:`~repro.serving.cascade.CascadeCalibration.save`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import DataError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import InnerJoinSampler
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


def join_key_columns(schema: JoinSchema) -> Set[Tuple[str, str]]:
    """Every (table, column) participating in a join edge.

    Join keys are excluded from generated filters: filtering on them
    changes join semantics, and served models commonly exclude them
    (``exclude_columns``), so a calibration predicate there would measure
    a query shape serving never sees.
    """
    keys: Set[Tuple[str, str]] = set()
    for edge in schema.edges:
        for side in (edge.parent, edge.child):
            for column in edge.columns_of(side):
                keys.add((side, column))
    return keys


def _filterable(schema: JoinSchema) -> Dict[str, List[str]]:
    keys = join_key_columns(schema)
    return {
        tname: [c for c in table.column_names if (tname, c) not in keys]
        for tname, table in schema.tables.items()
    }


def calibration_workload(
    schema: JoinSchema,
    n_queries: int = 200,
    easy_fraction: float = 0.5,
    seed: int = 0,
    counts: Optional[JoinCounts] = None,
) -> List[Query]:
    """Schema-agnostic held-out workload covering the router's query classes.

    ``easy_fraction`` of the queries are single-table conjunctions (the
    shapes cheap tiers should win); the rest join 2+ tables grown BFS
    from a random anchor. Both halves mix equality and range operators
    so the ``1t|eq``, ``1t|rng``, ``nt|eq`` and ``nt|rng`` classes all
    accumulate calibration mass. Deterministic in ``seed``.
    """
    if not 0.0 <= easy_fraction <= 1.0:
        raise DataError("easy_fraction must be within [0, 1]")
    if n_queries < 1:
        raise DataError("n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    counts = counts if counts is not None else JoinCounts(schema)
    inner = InnerJoinSampler(schema, counts)
    filterable = _filterable(schema)
    table_names = sorted(schema.tables)
    n_easy = int(round(n_queries * easy_fraction))

    queries: List[Query] = []
    attempt = 0
    while len(queries) < n_queries:
        attempt += 1
        if attempt > 100 * n_queries:
            raise DataError("calibration workload generation failed to converge")
        easy = len(queries) < n_easy
        if easy or len(table_names) == 1:
            tables = [str(rng.choice(table_names))]
            table = schema.table(tables[0])
            rows = {tables[0]: rng.integers(0, table.n_rows, size=1)}
        else:
            tables = _grow_join(schema, table_names, rng)
            if len(tables) < 2:
                continue
            try:
                rows = inner.sample_row_ids(tables, 1, rng)
            except DataError:
                continue  # empty inner join for this subgraph
        predicates = _make_predicates(schema, filterable, tables, rows, rng)
        if not predicates:
            continue
        kind = "easy" if easy else "hard"
        queries.append(
            Query.make(tables, predicates, name=f"calib-{kind}-{len(queries):04d}")
        )
    return queries


def _grow_join(
    schema: JoinSchema, table_names: List[str], rng: np.random.Generator
) -> List[str]:
    """BFS-grow a connected 2+-table subgraph from a random anchor."""
    target = int(rng.integers(2, min(len(table_names), 4) + 1))
    tables = [str(rng.choice(table_names))]
    while len(tables) < target:
        frontier = sorted(
            {
                e.other(t)
                for t in tables
                for e in schema.incident_edges(t)
                if e.other(t) not in tables
            }
        )
        if not frontier:
            break
        tables.append(str(rng.choice(frontier)))
    return tables


def _make_predicates(
    schema: JoinSchema,
    filterable: Dict[str, List[str]],
    tables: List[str],
    rows: Dict[str, np.ndarray],
    rng: np.random.Generator,
) -> List[Predicate]:
    """1-3 filters with literals from the sampled tuple (never NULL)."""
    slots = [(t, c) for t in tables for c in filterable[t]]
    if not slots:
        return []
    rng.shuffle(slots)
    n_filters = int(rng.integers(1, min(len(slots), 3) + 1))
    predicates: List[Predicate] = []
    for table, column in slots:
        if len(predicates) >= n_filters:
            break
        col = schema.table(table).column(column)
        value = col.decode([col.codes[rows[table][0]]])[0]
        if value is None:
            continue
        op = str(rng.choice(["=", "<=", ">="]))
        predicates.append(Predicate(table, column, op, value))
    return predicates


__all__ = ["calibration_workload", "join_key_columns"]
