"""Workload runner: evaluate estimators against exact ground truth.

Any object with an ``estimate(query) -> float`` method can be evaluated;
results carry per-query q-errors and latencies, plus the estimator's size
when it exposes ``size_bytes`` (the paper's Size column).

Estimators exposing ``estimate_batch(queries) -> array`` (NeuroCard's
batched serving engine) can additionally be evaluated in batches by passing
``batch_size``; per-query latency is then the amortized batch latency. The
sequential path remains the default and the correctness oracle.

Any :class:`repro.serving.EstimationClient` — a bare estimator, the
micro-batching scheduler/service, or a multiprocess worker pool — can be
evaluated under concurrent load with ``concurrency``: N closed-loop client
threads drive it and each query's latency is its own request-to-result
wall time, so the numbers reflect the serving path actually deployed.
Clients exposing ``submit(query) -> Future`` are driven through it;
otherwise the threads call blocking ``estimate``.

That includes remote services: a
:class:`repro.serving.http_client.HttpEstimationClient` pointed at a
:mod:`repro.serving.http` server conforms to the same protocol, so the
same harness call measures accuracy and latency *over the wire* — each
concurrent thread gets its own keep-alive connection.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.eval.metrics import ErrorSummary, q_error, summarize_errors
from repro.joins.counts import JoinCounts
from repro.joins.executor import query_cardinality
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


@dataclass
class EstimatorResult:
    """Per-estimator evaluation record over one workload."""

    name: str
    errors: List[float] = field(default_factory=list)
    latencies_ms: List[float] = field(default_factory=list)
    estimates: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)
    size_bytes: Optional[int] = None

    def summary(self) -> ErrorSummary:
        return summarize_errors(self.errors)

    @property
    def size_label(self) -> str:
        if self.size_bytes is None:
            return "-"
        if self.size_bytes >= 2**20:
            return f"{self.size_bytes / 2**20:.1f}MB"
        return f"{self.size_bytes / 2**10:.0f}KB"

    @property
    def median_latency_ms(self) -> float:
        return float(np.median(self.latencies_ms)) if self.latencies_ms else 0.0


def true_cardinalities(
    schema: JoinSchema, queries: Sequence[Query], counts: Optional[JoinCounts] = None
) -> List[float]:
    """Exact COUNT(*) per query via the linear-time executor."""
    counts = counts if counts is not None else JoinCounts(schema)
    return [query_cardinality(schema, q, counts=counts) for q in queries]


def evaluate_estimator(
    name: str,
    estimator,
    queries: Sequence[Query],
    truths: Sequence[float],
    batch_size: Optional[int] = None,
    concurrency: Optional[int] = None,
) -> EstimatorResult:
    """Run ``estimator`` over a workload; collect q-errors/latency.

    With ``batch_size`` > 1 and an estimator exposing ``estimate_batch``,
    queries run through the batched engine in chunks and each query's
    latency is its chunk's wall time divided by the chunk size (amortized
    serving latency). With ``concurrency`` > 1, that many closed-loop
    client threads drive the estimator — any
    :class:`repro.serving.EstimationClient` works, with ``submit``-capable
    front ends driven through their Future path — and each query's latency
    is its request-to-result wall time. Otherwise queries run one at a
    time through ``estimate``.
    """
    result = EstimatorResult(name=name)
    result.size_bytes = getattr(estimator, "size_bytes", None)
    if concurrency is not None and concurrency > 1:
        return _evaluate_concurrent(result, estimator, queries, truths, concurrency)
    batched = (
        batch_size is not None and batch_size > 1
        and hasattr(estimator, "estimate_batch")
    )
    if batched:
        for lo in range(0, len(queries), batch_size):
            chunk = list(queries[lo : lo + batch_size])
            start = time.perf_counter()
            estimates = estimator.estimate_batch(chunk)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            per_query_ms = elapsed_ms / len(chunk)
            for estimate, truth in zip(estimates, truths[lo : lo + batch_size]):
                result.errors.append(q_error(estimate, truth))
                result.latencies_ms.append(per_query_ms)
                result.estimates.append(float(estimate))
                result.truths.append(float(truth))
        return result
    for query, truth in zip(queries, truths):
        start = time.perf_counter()
        estimate = estimator.estimate(query)
        elapsed = (time.perf_counter() - start) * 1e3
        result.errors.append(q_error(estimate, truth))
        result.latencies_ms.append(elapsed)
        result.estimates.append(float(estimate))
        result.truths.append(float(truth))
    return result


def _evaluate_concurrent(
    result: EstimatorResult,
    service,
    queries: Sequence[Query],
    truths: Sequence[float],
    concurrency: int,
) -> EstimatorResult:
    """Closed-loop clients against any :class:`EstimationClient`."""
    n = len(queries)
    estimates = [0.0] * n
    latencies = [0.0] * n
    failures: List[tuple] = []  # (query_index, underlying exception)
    failures_lock = threading.Lock()
    # Future-based front ends pipeline through submit(); plain estimators
    # (and anything else satisfying EstimationClient) block on estimate().
    if hasattr(service, "submit"):
        def one(query) -> float:
            return float(service.submit(query).result())
    else:
        def one(query) -> float:
            return float(service.estimate(query))

    def client(cid: int) -> None:
        i = cid
        try:
            for i in range(cid, n, concurrency):
                start = time.perf_counter()
                estimates[i] = one(queries[i])
                latencies[i] = (time.perf_counter() - start) * 1e3
        except BaseException as exc:  # re-raised on the caller's thread
            with failures_lock:
                failures.append((i, exc))

    threads = [
        threading.Thread(target=client, args=(cid,)) for cid in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        # Never report fabricated zeros for queries a dead client skipped.
        # Surface the *first* underlying exception (lowest failing query
        # index — deterministic, unlike thread completion order) with its
        # original traceback, mirroring SamplerError's chaining contract:
        # callers see what actually broke, not a generic future error.
        failures.sort(key=lambda pair: pair[0])
        raise failures[0][1]
    for estimate, latency, truth in zip(estimates, latencies, truths):
        result.errors.append(q_error(estimate, truth))
        result.latencies_ms.append(latency)
        result.estimates.append(estimate)
        result.truths.append(float(truth))
    return result


def format_report(
    title: str,
    results: Sequence[EstimatorResult],
    paper_rows: Optional[Dict[str, str]] = None,
) -> str:
    """Render a paper-style table; optionally annotate the paper's numbers."""
    lines = [title, "=" * len(title)]
    header = f"{'Estimator':<18} {'Size':>8} {'Median':>8} {'95th':>10} {'99th':>10} {'Max':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        summary = res.summary()
        lines.append(f"{res.name:<18} {res.size_label:>8} {summary.row()}")
        if paper_rows and res.name in paper_rows:
            lines.append(f"{'  (paper)':<18} {'':>8} {paper_rows[res.name]}")
    return "\n".join(lines)
