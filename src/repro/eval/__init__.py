"""Evaluation harness: q-error metrics, workload runners, update pipeline."""

from repro.eval.metrics import ErrorSummary, q_error, summarize_errors
from repro.eval.harness import EstimatorResult, evaluate_estimator, format_report

__all__ = [
    "q_error",
    "summarize_errors",
    "ErrorSummary",
    "evaluate_estimator",
    "EstimatorResult",
    "format_report",
]
