"""Figure helpers: selectivity spectra (Fig. 6) and CDF rendering (Fig. 7d).

Plots are rendered as ASCII/CSV series so the benchmark harness can print
the same curves the paper draws, without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.joins.counts import JoinCounts
from repro.joins.executor import query_selectivity
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


def selectivity_spectrum(
    schema: JoinSchema,
    queries: Sequence[Query],
    counts: Optional[JoinCounts] = None,
) -> np.ndarray:
    """Per-query selectivity ``card_actual / card_inner`` (§7.1, Fig. 6)."""
    counts = counts if counts is not None else JoinCounts(schema)
    return np.array(
        [query_selectivity(schema, q, counts=counts) for q in queries]
    )


def cdf_series(values: Sequence[float], n_points: int = 11) -> Dict[float, float]:
    """``{quantile: value}`` pairs describing the CDF of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    qs = np.linspace(0, 1, n_points)
    return {float(q): float(np.quantile(arr, q)) for q in qs}


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    title: str,
    log10: bool = True,
    width: int = 50,
) -> str:
    """Multi-line ASCII rendering of one CDF per labeled series."""
    lines = [title]
    for label, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        arr = arr[arr > 0] if log10 else arr
        if len(arr) == 0:
            lines.append(f"  {label:<16} (empty)")
            continue
        data = np.log10(arr) if log10 else arr
        lo, hi = float(data.min()), float(data.max())
        lines.append(
            f"  {label:<16} min={arr.min():.3g} p50={np.quantile(arr, .5):.3g} "
            f"max={arr.max():.3g}"
        )
        hist, _ = np.histogram(data, bins=width, range=(lo, hi or lo + 1))
        cum = np.cumsum(hist) / max(hist.sum(), 1)
        bar = "".join("#" if c >= (i + 1) / width else "." for i, c in enumerate(cum))
        lines.append(f"  {'':<16} [{bar}]")
    return "\n".join(lines)
