"""Q-error metrics (paper §7.1).

Q-error of a query is the multiplicative deviation factor
``max(actual/estimate, estimate/actual)``; both cardinalities are lower
bounded by 1, so the best attainable value is 1.0. Following the paper we
report the median and the challenging tail quantiles (95th, 99th, max).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EstimationError


def q_error(estimate: float, actual: float) -> float:
    """Multiplicative error factor; both sides clamped to >= 1."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass(frozen=True)
class ErrorSummary:
    """Quantiles of a q-error distribution, in the paper's table layout."""

    count: int
    median: float
    p95: float
    p99: float
    maximum: float

    def row(self) -> str:
        return (
            f"{self.median:8.2f} {self.p95:10.1f} {self.p99:10.1f} "
            f"{self.maximum:10.1f}"
        )


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Quantile summary of q-errors (median / p95 / p99 / max)."""
    if len(errors) == 0:
        raise EstimationError("no errors to summarize")
    arr = np.asarray(errors, dtype=np.float64)
    return ErrorSummary(
        count=int(arr.size),
        median=float(np.quantile(arr, 0.5)),
        p95=float(np.quantile(arr, 0.95)),
        p99=float(np.quantile(arr, 0.99)),
        maximum=float(arr.max()),
    )
