"""Adam optimizer with optional warmup and gradient clipping."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.layers import Parameter


class Adam:
    """Standard Adam (Kingma & Ba) over a parameter list.

    ``warmup_steps`` linearly ramps the learning rate from 0, matching the
    short warmup used when streaming sampled tuples (fresh batches every
    step make early updates noisy). When ``total_steps`` is set, the rate
    follows a cosine decay from ``lr`` to ``lr * min_lr_ratio`` after the
    warmup, which markedly improves convergence of the streamed MLE loop.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 2e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: Optional[float] = 5.0,
        warmup_steps: int = 20,
        total_steps: Optional[int] = None,
        min_lr_ratio: float = 0.05,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr_ratio = min_lr_ratio
        self.t = 0
        self._segment_start = 0
        self._segment_warmup = warmup_steps
        self._m = [np.zeros_like(p.value, dtype=np.float64) for p in self.params]
        self._v = [np.zeros_like(p.value, dtype=np.float64) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def extend_schedule(self, extra_steps: int) -> None:
        """Re-anchor warmup+decay for ``extra_steps`` more steps.

        Incremental training (``NeuroCard.update``) reuses this optimizer
        past its original ``total_steps``; without re-anchoring, the cosine
        progress stays clamped at 1.0 and every extra step runs at the
        ``min_lr_ratio`` floor. This starts a fresh warmup-then-decay
        segment at the current step so the update budget gets a real
        schedule while preserving Adam's moment state. The segment's warmup
        is capped to a tenth of the extension so short update budgets spend
        their steps decaying instead of ramping.
        """
        if extra_steps <= 0:
            return
        self._segment_start = self.t
        self._segment_warmup = min(self.warmup_steps, extra_steps // 10)
        if self.total_steps is not None:
            self.total_steps = self.t + extra_steps

    def _clip(self) -> None:
        if self.clip_norm is None:
            return
        total = 0.0
        for p in self.params:
            g = p.grad.ravel()
            total += float(np.dot(g, g))
        norm = np.sqrt(total)
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for p in self.params:
                p.grad *= scale

    def lr_at(self, t: int) -> float:
        """Learning rate used at (1-based) step ``t`` of the current segment."""
        t_seg = t - self._segment_start
        warmup = self._segment_warmup
        if warmup and t_seg <= warmup:
            return self.lr * t_seg / warmup
        if self.total_steps:
            seg_total = self.total_steps - self._segment_start
            if seg_total > warmup:
                progress = (t_seg - warmup) / (seg_total - warmup)
                progress = min(max(progress, 0.0), 1.0)
                floor = self.lr * self.min_lr_ratio
                return floor + 0.5 * (self.lr - floor) * (1 + np.cos(np.pi * progress))
        return self.lr

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._clip()
        self.t += 1
        lr = self.lr_at(self.t)
        correction1 = 1.0 - self.beta1**self.t
        correction2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            update = (m / correction1) / (np.sqrt(v / correction2) + self.eps)
            p.value -= (lr * update).astype(p.value.dtype, copy=False)
