"""Neural layers with explicit forward/backward passes.

Each layer caches what its backward pass needs during ``forward`` and
accumulates parameter gradients into :class:`Parameter.grad` during
``backward`` (returning the gradient w.r.t. its input). Layers are stateful
per call — a layer instance participates in one forward/backward pair at a
time, which is all the training loops here require.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TrainingError


class Parameter:
    """A trainable tensor plus its gradient accumulator."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray):
        self.name = name
        self.value = value
        self.grad = np.zeros_like(value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def size_bytes(self) -> int:
        return self.value.nbytes


class Linear:
    """(Optionally masked) affine layer ``y = x @ (W ∘ M)^T + b``.

    ``mask`` (shape ``(d_out, d_in)``) zeroes connections; the MADE masks
    of :mod:`repro.nn.masks` enforce the autoregressive property.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        d_in: int,
        d_out: int,
        mask: Optional[np.ndarray] = None,
        name: str = "linear",
        dtype=np.float32,
    ):
        scale = np.sqrt(2.0 / max(d_in, 1))
        weight = (rng.standard_normal((d_out, d_in)) * scale).astype(dtype)
        self.W = Parameter(f"{name}.W", weight)
        self.b = Parameter(f"{name}.b", np.zeros(d_out, dtype=dtype))
        if mask is not None and mask.shape != (d_out, d_in):
            raise TrainingError(
                f"{name}: mask shape {mask.shape} != ({d_out}, {d_in})"
            )
        self.mask = None if mask is None else mask.astype(dtype)
        self._x: Optional[np.ndarray] = None

    def effective_weight(self) -> np.ndarray:
        return self.W.value if self.mask is None else self.W.value * self.mask

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.effective_weight().T + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise TrainingError("backward called before forward")
        dW = grad_out.T @ self._x
        if self.mask is not None:
            dW *= self.mask
        self.W.grad += dW
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.effective_weight()

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]


class Embedding:
    """Lookup table with scatter-add backward."""

    def __init__(
        self,
        rng: np.random.Generator,
        vocab: int,
        dim: int,
        name: str = "embed",
        dtype=np.float32,
    ):
        self.vocab = vocab
        weight = (rng.standard_normal((vocab, dim)) * 0.1).astype(dtype)
        self.W = Parameter(f"{name}.W", weight)
        self._ids: Optional[np.ndarray] = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab:
            raise TrainingError(
                f"{self.W.name}: token id outside vocabulary of size {self.vocab}"
            )
        self._ids = ids
        return self.W.value[ids]

    def backward(self, grad_out: np.ndarray) -> None:
        if self._ids is None:
            raise TrainingError("backward called before forward")
        # Sort + reduceat scatter-add: much faster than np.add.at.
        order = np.argsort(self._ids, kind="stable")
        sorted_ids = self._ids[order]
        boundaries = np.empty(len(order), dtype=bool)
        if len(order) == 0:
            return
        boundaries[0] = True
        boundaries[1:] = sorted_ids[1:] != sorted_ids[:-1]
        starts = np.flatnonzero(boundaries)
        sums = np.add.reduceat(grad_out[order], starts, axis=0)
        self.W.grad[sorted_ids[starts]] += sums

    def parameters(self) -> List[Parameter]:
        return [self.W]


class ReLU:
    """Elementwise max(x, 0)."""

    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Sigmoid:
    """Elementwise logistic function (used by the MSCN baseline's head)."""

    def __init__(self):
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray):
    """Mean NLL over the batch and its gradient w.r.t. the logits.

    Computed in the logits' own dtype with in-place buffers; float32 is
    numerically sufficient here (probabilities are clamped before the log).
    """
    batch = logits.shape[0]
    rows = np.arange(batch)
    shifted = logits - logits.max(axis=1, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=1, keepdims=True)
    picked = shifted[rows, targets]
    loss = float(-np.log(np.maximum(picked, 1e-30)).mean())
    shifted[rows, targets] -= 1.0
    shifted /= batch
    return loss, shifted
