"""ResMADE: the paper's autoregressive architecture (§3.4, Fig. 3).

Input tuples are dictionary-encoded token IDs, embedded per column; the
concatenated embedding passes through masked residual blocks; an output
masked-linear produces per-column logits ``log p(X_i | x_<i)``.

Wildcard skipping (Naru's marginalization tokens) is built in: every column
has an extra MASK token (id = domain size). During training random input
positions are replaced by MASK while targets stay intact, teaching the model
conditionals with marginalized-out inputs; at inference, wildcard columns
feed MASK and are never sampled.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import TrainingError
from repro.nn import masks as made_masks
from repro.nn.layers import Embedding, Linear, Parameter, ReLU, cross_entropy, softmax


class _ResidualBlock:
    """x + W2·relu(W1·relu(x)), both linears masked degree-consistently."""

    def __init__(self, rng, width: int, mask: np.ndarray, name: str, dtype):
        self.relu1 = ReLU()
        self.lin1 = Linear(rng, width, width, mask=mask, name=f"{name}.lin1", dtype=dtype)
        self.relu2 = ReLU()
        self.lin2 = Linear(rng, width, width, mask=mask, name=f"{name}.lin2", dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        h = self.relu1.forward(x)
        h = self.lin1.forward(h)
        h = self.relu2.forward(h)
        h = self.lin2.forward(h)
        return x + h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self.lin2.backward(grad)
        g = self.relu2.backward(g)
        g = self.lin1.backward(g)
        g = self.relu1.backward(g)
        return grad + g

    def parameters(self) -> List[Parameter]:
        return self.lin1.parameters() + self.lin2.parameters()


class ResMADE:
    """Masked residual MLP modeling ``p(X_0) Π p(X_i | X_<i)``.

    Parameters
    ----------
    domain_sizes:
        Vocabulary size of each column in autoregressive order (dictionary
        codes ``0..dom-1``; NULL is code 0 by convention upstream).
    d_emb / d_ff / n_blocks:
        Embedding width, hidden width, number of residual blocks — the
        paper's capacity knobs (Table 5 group C).
    """

    def __init__(
        self,
        domain_sizes: Sequence[int],
        d_emb: int = 16,
        d_ff: int = 128,
        n_blocks: int = 2,
        seed: int = 0,
        dtype=np.float32,
    ):
        if not domain_sizes:
            raise TrainingError("ResMADE needs at least one column")
        if any(d < 1 for d in domain_sizes):
            raise TrainingError("column domains must be >= 1")
        self.domains = [int(d) for d in domain_sizes]
        self.n_columns = len(self.domains)
        self.d_emb = d_emb
        self.d_ff = d_ff
        self.dtype = dtype
        rng = np.random.default_rng(seed)

        # Per-column embedding; one extra row is the MASK (wildcard) token.
        self.embeddings = [
            Embedding(rng, dom + 1, d_emb, name=f"embed{i}", dtype=dtype)
            for i, dom in enumerate(self.domains)
        ]

        degrees = made_masks.hidden_degrees(self.n_columns, d_ff)
        input_labels = np.repeat(np.arange(self.n_columns), d_emb)
        self.input_linear = Linear(
            rng,
            self.n_columns * d_emb,
            d_ff,
            mask=made_masks.input_mask(input_labels, degrees),
            name="input",
            dtype=dtype,
        )
        hidden = made_masks.hidden_mask(degrees)
        self.blocks = [
            _ResidualBlock(rng, d_ff, hidden, f"block{i}", dtype) for i in range(n_blocks)
        ]
        self.final_relu = ReLU()
        output_labels = np.repeat(np.arange(self.n_columns), self.domains)
        self.output_linear = Linear(
            rng,
            d_ff,
            int(sum(self.domains)),
            mask=made_masks.output_mask(output_labels, degrees),
            name="output",
            dtype=dtype,
        )
        self.offsets = np.concatenate([[0], np.cumsum(self.domains)])

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def _embed(self, tokens: np.ndarray, wildcard: Optional[np.ndarray]) -> np.ndarray:
        if tokens.ndim != 2 or tokens.shape[1] != self.n_columns:
            raise TrainingError(
                f"tokens must be (batch, {self.n_columns}), got {tokens.shape}"
            )
        pieces = []
        for i, emb in enumerate(self.embeddings):
            ids = tokens[:, i]
            if wildcard is not None:
                ids = np.where(wildcard[:, i], self.domains[i], ids)
            pieces.append(emb.forward(ids))
        return np.concatenate(pieces, axis=1)

    def forward_logits(
        self, tokens: np.ndarray, wildcard: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """All columns' logits, shape ``(batch, Σ domains)``."""
        x = self._embed(tokens, wildcard)
        h = self.input_linear.forward(x)
        for block in self.blocks:
            h = block.forward(h)
        h = self.final_relu.forward(h)
        return self.output_linear.forward(h)

    def column_logits(self, flat_logits: np.ndarray, col: int) -> np.ndarray:
        """Slice one column's logits out of the flat output."""
        return flat_logits[:, self.offsets[col] : self.offsets[col + 1]]

    def conditional(
        self, tokens: np.ndarray, col: int, wildcard: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``p(X_col | inputs)`` — depends only on columns ``< col`` by masking."""
        flat = self.forward_logits(tokens, wildcard)
        return softmax(self.column_logits(flat, col).astype(np.float64))

    def column_conditional(
        self, tokens: np.ndarray, col: int, wildcard: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``p(X_col | inputs)`` on the inference fast path.

        Mathematically identical to :meth:`conditional`, but computes only
        what column ``col`` depends on: embeddings and input-linear weights
        are sliced to columns ``< col`` (the MADE masks zero every other
        connection anyway) and only column ``col``'s slice of the output
        head is evaluated — instead of all ``Σ domains`` logits. Does not
        touch the layers' backward caches, so it is safe to interleave with
        training steps. The batched serving engine calls this per column.
        """
        if tokens.ndim != 2 or tokens.shape[1] < col:
            raise TrainingError(
                f"tokens must be (batch, >= {col}), got {tokens.shape}"
            )
        n = len(tokens)
        if col == 0:
            x = np.zeros((n, 0), dtype=self.dtype)
        else:
            pieces = []
            for i in range(col):
                ids = tokens[:, i]
                if wildcard is not None:
                    ids = np.where(wildcard[:, i], self.domains[i], ids)
                pieces.append(self.embeddings[i].W.value[ids])
            x = np.concatenate(pieces, axis=1)
        w_in = self.input_linear.effective_weight()[:, : col * self.d_emb]
        h = x @ w_in.T + self.input_linear.b.value
        for block in self.blocks:
            a = np.maximum(h, 0.0)
            a = a @ block.lin1.effective_weight().T + block.lin1.b.value
            np.maximum(a, 0.0, out=a)
            a = a @ block.lin2.effective_weight().T + block.lin2.b.value
            h = h + a
        np.maximum(h, 0.0, out=h)
        lo, hi = self.offsets[col], self.offsets[col + 1]
        w_out = self.output_linear.effective_weight()[lo:hi]
        logits = h @ w_out.T + self.output_linear.b.value[lo:hi]
        return softmax(logits.astype(np.float64))

    def loss_and_backward(
        self, tokens: np.ndarray, wildcard: Optional[np.ndarray] = None
    ) -> float:
        """Mean per-tuple NLL (nats) with gradients accumulated into params."""
        flat = self.forward_logits(tokens, wildcard)
        total_loss = 0.0
        grad_flat = np.zeros_like(flat)
        for i in range(self.n_columns):
            logits = self.column_logits(flat, i)
            loss, grad = cross_entropy(logits, tokens[:, i])
            total_loss += loss
            grad_flat[:, self.offsets[i] : self.offsets[i + 1]] = grad
        g = self.output_linear.backward(grad_flat)
        g = self.final_relu.backward(g)
        for block in reversed(self.blocks):
            g = block.backward(g)
        g = self.input_linear.backward(g)
        for i, emb in enumerate(self.embeddings):
            emb.backward(g[:, i * self.d_emb : (i + 1) * self.d_emb])
        return total_loss

    # ------------------------------------------------------------------
    def sample_wildcard_mask(
        self, batch: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Random wildcard-skipping mask: per tuple, mask a random fraction."""
        fraction = rng.random((batch, 1))
        return rng.random((batch, self.n_columns)) < fraction

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for emb in self.embeddings:
            params.extend(emb.parameters())
        params.extend(self.input_linear.parameters())
        for block in self.blocks:
            params.extend(block.parameters())
        params.extend(self.output_linear.parameters())
        return params

    @property
    def size_bytes(self) -> int:
        """Model size in bytes (the paper's reported estimator size)."""
        return int(sum(p.size_bytes for p in self.parameters()))

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 2**20
