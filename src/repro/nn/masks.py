"""MADE mask construction at column granularity (Germain et al. [6]).

Units are labeled with *degrees*: an input unit belonging to column ``j``
has degree ``j``; a hidden unit of degree ``m`` may only read inputs of
columns ``<= m``; the output group of column ``j`` may only read hidden
units of degree ``< j``. Composing these masks makes the network's logits
for column ``j`` a function of columns ``< j`` only — the autoregressive
property ``p(X_j | X_<j)`` that all of NeuroCard's inference relies on.

Column 0's logits depend on no hidden unit (bias only), which is exactly
the unconditional marginal ``p(X_0)``.

Residual connections require the degree *vector* to be identical across
hidden layers; we assign degrees once and reuse them for every block, so
skip connections are automatically mask-consistent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError


def hidden_degrees(n_columns: int, width: int) -> np.ndarray:
    """Degree per hidden unit, cycling uniformly over ``0..n_columns - 2``."""
    if n_columns < 1:
        raise TrainingError("need at least one column")
    if n_columns == 1:
        return np.zeros(width, dtype=np.int64)
    return np.arange(width, dtype=np.int64) % (n_columns - 1)


def input_mask(input_labels: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    """``(H, D_in)`` mask: hidden unit ``h`` reads column ``j`` iff ``j <= deg_h``."""
    return (input_labels[None, :] <= degrees[:, None]).astype(np.float64)


def hidden_mask(degrees: np.ndarray) -> np.ndarray:
    """``(H, H)`` mask: unit ``h2`` reads unit ``h1`` iff ``deg_1 <= deg_2``."""
    return (degrees[None, :] <= degrees[:, None]).astype(np.float64)


def output_mask(output_labels: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    """``(D_out, H)`` mask: column ``j``'s logits read hidden iff ``deg_h < j``."""
    return (degrees[None, :] < output_labels[:, None]).astype(np.float64)
