"""Plain multi-layer perceptron (used by the MSCN baseline)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.layers import Linear, Parameter, ReLU


class MLP:
    """ReLU MLP with a linear head; MSE loss helper included."""

    def __init__(
        self,
        rng: np.random.Generator,
        layer_sizes: Sequence[int],
        name: str = "mlp",
        dtype=np.float32,
    ):
        self.layers: List[object] = []
        for i in range(len(layer_sizes) - 1):
            self.layers.append(
                Linear(
                    rng,
                    layer_sizes[i],
                    layer_sizes[i + 1],
                    name=f"{name}.l{i}",
                    dtype=dtype,
                )
            )
            if i < len(layer_sizes) - 2:
                self.layers.append(ReLU())

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def mse_loss_and_backward(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean squared error against targets ``y``; backprops through."""
        pred = self.forward(x).ravel()
        diff = pred - y
        loss = float((diff**2).mean())
        grad = (2.0 * diff / len(y)).reshape(-1, 1).astype(pred.dtype)
        self.backward(grad)
        return loss

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            if isinstance(layer, Linear):
                params.extend(layer.parameters())
        return params
