"""Plan-specialized compiled inference kernels for ResMADE.

Training wants one graph with gradients; serving wants the cheapest possible
per-column conditional. :class:`CompiledResMADE` is the serving side: it
takes a trained :class:`~repro.nn.resmade.ResMADE` and lowers its forward
pass into inference-only kernels that exploit everything that is constant
per query plan:

* **Embedding folding** — each column's embedding table is multiplied
  through the input masked-linear offline, so the input layer becomes one
  per-column LUT gather + add per constrained column. No embedding concat,
  no input matmul at inference.
* **Wildcard-constant caching** — wildcard columns always feed the fixed
  MASK embedding, so their total contribution to the hidden activation is a
  constant vector per wildcard pattern. Patterns are keyed by their packed
  bit signature over the columns before the target column and cached across
  calls (and across queries sharing a plan shape), so unconstrained columns
  cost one cached vector instead of per-sample gathers.
* **Degree-sorted prefix slicing** — hidden units are permuted so MADE
  degrees are non-decreasing. Column ``c``'s logits depend only on hidden
  units of degree ``< c``, which after the permutation is a contiguous
  prefix; every residual-block matmul for step ``c`` runs on the
  ``cut[c] × cut[c]`` top-left corner (specialized contiguous weight copies
  are materialized lazily per distinct prefix width).
* **Sliced output heads** — only the next-needed column's logit rows are
  evaluated, via per-column ``(cut, dom)`` weight views prepared at the
  first use of each autoregressive step.
* **float32 scratch reuse** — all kernels run in fp32 out-of-place into
  thread-local scratch buffers that are reused across steps and calls
  (no per-call allocation on the hot path).

Modes
-----
``mode="fp32"`` is the compiled fast path; conditionals match the reference
forward to fp32 round-off (the estimator-level contract is ≤1e-4 relative
drift on estimates, gated by ``benchmarks/bench_compiled_inference.py``).
``mode="fp64"`` is the *oracle* mode: it routes every conditional through
the wrapped model's reference implementation unchanged (with fp64 softmax,
exactly as :meth:`ResMADE.column_conditional` does), so its results are
bitwise-equal to the uncompiled path by construction. The oracle mode pins
down that all the surrounding wiring (batch-of-1 routing, registry
hot-swap, scheduler coalescing) is drift-free; the fp32 mode buys the
speed.

Quantization
------------
``quantization="int16"`` / ``"int8"`` (fp32 mode only) store the folded
weights at reduced precision with per-channel symmetric scales:

* **LUTs in a shared integer domain** — every embedding LUT (and the input
  bias / MASK machinery) is quantized per *hidden channel* with one scale
  vector sized so the worst-case accumulated pre-activation fits the
  integer range. Because all columns share each channel's scale, the fold
  buffer, pattern constants, and per-column gathers run in exact integer
  arithmetic (int16 accumulation; int8 mode stores LUT entries as int8 and
  promotes on subtract) at half/quarter the memory traffic of fp32 — this
  is where the quantized path's latency win comes from, since the residual
  GEMMs are BLAS-bound and NumPy has no integer GEMM worth using.
* **GEMM weights with fp32 accumulate** — block and output-head weights are
  stored int16/int8 with per-output-channel scales and dequantized once
  into the existing per-prefix-width corner caches, so every matmul still
  accumulates in fp32. Only the *stored* (and shared-memory exported)
  buffers shrink.

The fp64 oracle stays unquantized, which makes it the drift reference:
:meth:`record_drift` keeps the latest per-query relative-error measurement
against the oracle and :meth:`stats` surfaces it for ``/metrics``.

The wrapper is **lazy**: nothing is folded until the first conditional is
requested, so loading weights into an already-constructed model (see
``persistence.load_model``) never captures stale parameters — callers that
mutate weights must still :meth:`invalidate`.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.nn import masks as made_masks
from repro.nn.layers import softmax

#: Wildcard-pattern constants cached per compiled model before reset.
PATTERN_CACHE_LIMIT = 4096

_REQUIRED_ATTRS = (
    "embeddings",
    "input_linear",
    "blocks",
    "output_linear",
    "domains",
    "offsets",
    "d_emb",
    "d_ff",
    "n_columns",
)


def supports_compilation(model) -> bool:
    """True when ``model`` exposes the ResMADE surface the compiler folds."""
    return all(hasattr(model, attr) for attr in _REQUIRED_ATTRS)


# ----------------------------------------------------------------------
# Flat-blob layout for publishing array maps through shared memory
# ----------------------------------------------------------------------
def pack_layout(arrays: Dict[str, np.ndarray]) -> Tuple[list, int]:
    """``(manifest, total_bytes)`` laying ``arrays`` into one flat buffer.

    The manifest is a picklable list of ``(name, offset, shape, dtype)``
    entries; offsets are 64-byte aligned so attached views keep cache-line
    (and BLAS) friendly alignment. ``total_bytes`` is always >= 1 so the
    result can size a ``multiprocessing.shared_memory`` segment directly.
    """
    manifest = []
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        manifest.append((name, offset, tuple(array.shape), str(array.dtype)))
        offset += array.nbytes
        offset = (offset + 63) & ~63
    return manifest, max(offset, 1)


def write_blob(arrays: Dict[str, np.ndarray], manifest: list, buf) -> None:
    """Copy each manifest entry's array into ``buf`` (one writable buffer)."""
    for name, offset, shape, dtype in manifest:
        view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
        view[...] = np.ascontiguousarray(arrays[name])


def read_blob(manifest: list, buf) -> Dict[str, np.ndarray]:
    """Zero-copy read-only views over a buffer written by :func:`write_blob`.

    The returned arrays alias ``buf`` — the caller must keep the owning
    segment open for as long as any view is reachable.
    """
    out: Dict[str, np.ndarray] = {}
    for name, offset, shape, dtype in manifest:
        view = np.ndarray(shape, dtype=dtype, buffer=buf, offset=offset)
        view.flags.writeable = False
        out[name] = view
    return out


class CompiledResMADE:
    """Inference-only compiled view over a trained ResMADE.

    Exposes the same ``conditional`` / ``column_conditional`` surface the
    progressive sampler consumes, so it drops in as the engine's model.
    The wrapped model stays the single source of truth for weights (and the
    correctness oracle); compiled state is derived, lazily built, and never
    persisted.
    """

    def __init__(self, model, mode: str = "fp32", quantization: str = "off"):
        if mode not in ("fp32", "fp64"):
            raise EstimationError(
                f"unknown compile mode {mode!r} (expected 'fp32' or 'fp64')"
            )
        if quantization not in ("off", "int16", "int8"):
            raise EstimationError(
                f"unknown quantization {quantization!r} "
                "(expected 'off', 'int16', or 'int8')"
            )
        if quantization != "off" and mode != "fp32":
            raise EstimationError(
                "quantized kernels require mode='fp32'; the fp64 oracle "
                "stays full-precision so it can serve as the drift reference"
            )
        if not supports_compilation(model):
            raise EstimationError(
                f"cannot compile {type(model).__name__}: not a ResMADE-like model"
            )
        self.model = model
        self.mode = mode
        self.quantization = quantization
        self._lock = threading.Lock()
        self._local = threading.local()
        self._reset_state()

    def _reset_state(self) -> None:
        self._compiled = False
        self._attached = False
        self._luts: List[np.ndarray] = []
        self._mask_stack: Optional[np.ndarray] = None
        self._b_in: Optional[np.ndarray] = None
        self._block_weights: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._w_out: Optional[np.ndarray] = None
        self._b_out: Optional[np.ndarray] = None
        self._cuts: Optional[np.ndarray] = None
        self._pattern_cache: Dict[object, np.ndarray] = {}
        self._block_cut_cache: Dict[int, list] = {}
        self._out_head_cache: Dict[int, np.ndarray] = {}
        self._multi_head_cache: Dict[tuple, Tuple[np.ndarray, list]] = {}
        self._scratch_bytes = 0
        # Quantized-mode state: the shared per-channel LUT scale (None in
        # full-precision mode — every quantized branch keys off it), the
        # quantized GEMM weights with their per-output-channel scales, and
        # the latest measured drift vs the fp64 oracle.
        self._q_scale: Optional[np.ndarray] = None
        self._block_weights_q: List[tuple] = []
        self._w_out_q: Optional[np.ndarray] = None
        self._w_out_scale: Optional[np.ndarray] = None
        self._drift: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Delegated model surface
    # ------------------------------------------------------------------
    @property
    def domains(self):
        return self.model.domains

    @property
    def n_columns(self) -> int:
        return self.model.n_columns

    @property
    def offsets(self):
        return self.model.offsets

    @property
    def reference(self):
        """The wrapped (uncompiled) model — the correctness oracle."""
        return self.model

    @property
    def is_compiled(self) -> bool:
        return self._compiled

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledResMADE":
        """Fold the current weights into inference kernels (idempotent)."""
        if self.mode == "fp64" or self._compiled:
            return self
        with self._lock:
            if self._compiled:
                return self
            self._compile_locked()
            self._compiled = True
        return self

    def _compile_locked(self) -> None:
        model = self.model
        degrees = made_masks.hidden_degrees(model.n_columns, model.d_ff)
        perm = np.argsort(degrees, kind="stable")
        self._perm = perm
        sorted_degrees = degrees[perm]
        self._cuts = np.searchsorted(
            sorted_degrees, np.arange(model.n_columns), side="left"
        ).astype(np.int64)

        # Fold every embedding table through the (permuted) input linear in
        # fp64, then round once: each LUT row is the column's exact
        # contribution to the hidden pre-activation for one token id.
        w_in = model.input_linear.effective_weight()[perm].astype(np.float64)
        d_emb = model.d_emb
        luts64 = []
        for i, emb in enumerate(model.embeddings):
            block = w_in[:, i * d_emb : (i + 1) * d_emb]
            luts64.append(emb.W.value.astype(np.float64) @ block.T)
        b_in64 = model.input_linear.b.value[perm].astype(np.float64)

        if self.quantization == "off":
            self._luts = [lut.astype(np.float32) for lut in luts64]
            # MASK rows stacked for fast wildcard-constant assembly.
            self._mask_stack = np.stack(
                [self._luts[i][dom] for i, dom in enumerate(model.domains)]
            )
            self._b_in = b_in64.astype(np.float32)
            # The all-wildcard pre-activation: bias + every column's MASK
            # row. A column's contribution is exactly zero on hidden units
            # of lower degree, so pre-adding *future* columns' MASK rows is
            # invisible to every conditional until the column is folded
            # (replaced) — which lets fold sessions start here and touch
            # only non-wildcard rows.
            self._mask_base = self._b_in + self._mask_stack.sum(axis=0)
        else:
            self._quantize_luts(luts64, b_in64)

        ix = np.ix_(perm, perm)
        if self.quantization == "off":
            self._block_weights = []
            for block in model.blocks:
                self._block_weights.append((
                    np.ascontiguousarray(block.lin1.effective_weight()[ix].T, dtype=np.float32),
                    block.lin1.b.value[perm].astype(np.float32).copy(),
                    np.ascontiguousarray(block.lin2.effective_weight()[ix].T, dtype=np.float32),
                    block.lin2.b.value[perm].astype(np.float32).copy(),
                ))
            self._w_out = np.ascontiguousarray(
                model.output_linear.effective_weight()[:, perm], dtype=np.float32
            )
        else:
            self._block_weights_q = []
            for block in model.blocks:
                w1q, s1 = self._quantize_gemm(block.lin1.effective_weight()[ix].T)
                w2q, s2 = self._quantize_gemm(block.lin2.effective_weight()[ix].T)
                self._block_weights_q.append((
                    w1q, s1, block.lin1.b.value[perm].astype(np.float32).copy(),
                    w2q, s2, block.lin2.b.value[perm].astype(np.float32).copy(),
                ))
            self._w_out_q, self._w_out_scale = self._quantize_gemm(
                model.output_linear.effective_weight()[:, perm].T
            )
            self._w_out_q = np.ascontiguousarray(self._w_out_q.T)
        self._b_out = model.output_linear.b.value.astype(np.float32).copy()

    # ------------------------------------------------------------------
    # Quantization (compile-time folding into integer domains)
    # ------------------------------------------------------------------
    @property
    def _q_dtype(self):
        return np.int8 if self.quantization == "int8" else np.int16

    def _quantize_luts(self, luts64, b_in64) -> None:
        """Per-channel quantization of the LUT / MASK / bias machinery.

        One scale per hidden channel, shared by *every* column's LUT, sized
        so the worst-case accumulated pre-activation (bias + one row from
        each column, rounding included) fits the accumulator: the fold
        buffer and pattern constants then run exact int16 arithmetic. int8
        mode stores LUT entries as int8 (they are bounded by the same
        budget) and promotes to int16 on the fold subtract.
        """
        model = self.model
        n_terms = model.n_columns + 1  # every column's row + the bias
        margin = (n_terms + 1) // 2 + 1  # each term rounds by <= 0.5
        qmax = 127 - margin if self.quantization == "int8" else 32767 - margin
        if qmax < 16:
            raise EstimationError(
                f"{self.quantization} quantization cannot hold "
                f"{model.n_columns} columns without overflow"
            )
        col_max = np.stack([np.abs(lut).max(axis=0) for lut in luts64])
        amax = np.abs(b_in64) + col_max.sum(axis=0)
        scale = amax / qmax
        # int16 LUTs also bound each fold *delta* (token row - MASK row,
        # <= 2x one column's budget) so the pre-add temporary cannot wrap;
        # int8 deltas are promoted to int16 and need no extra headroom.
        if self.quantization == "int16":
            scale = np.maximum(scale, 2.0 * col_max.max(axis=0) / 32700.0)
        scale[amax == 0.0] = 1.0
        self._q_scale = scale.astype(np.float32)
        dtype = self._q_dtype
        self._luts = [np.rint(lut / scale).astype(dtype) for lut in luts64]
        self._mask_stack = np.stack(
            [self._luts[i][dom] for i, dom in enumerate(model.domains)]
        ).astype(np.int16)
        self._b_in = np.rint(b_in64 / scale).astype(np.int16)
        self._mask_base = (
            self._b_in.astype(np.int32) + self._mask_stack.sum(axis=0, dtype=np.int32)
        ).astype(np.int16)

    def _quantize_gemm(self, weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Symmetric per-output-channel quantization of one ``(in, out)`` matrix.

        Returns ``(w_q, scale)`` with ``scale`` per column. The quantized
        copy is what gets stored and exported; :meth:`_block_slices` /
        :meth:`_out_head` dequantize into the per-width corner caches, so
        the GEMMs themselves accumulate in fp32.
        """
        weight = np.asarray(weight, dtype=np.float64)
        qmax = 127 if self.quantization == "int8" else 32767
        scale = np.abs(weight).max(axis=0) / qmax
        scale[scale == 0.0] = 1.0
        w_q = np.ascontiguousarray(np.rint(weight / scale), dtype=self._q_dtype)
        return w_q, scale.astype(np.float32)

    def invalidate(self) -> None:
        """Drop all compiled state; the next call refolds current weights."""
        with self._lock:
            self._reset_state()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Deterministic-buffer export / attach (zero-copy worker serving)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, np.ndarray]:
        """Every deterministic compiled buffer, as a flat ``name -> array`` map.

        Compiles first if needed. The map covers the folded LUTs, the
        degree-permuted GEMM weights, the wildcard MASK machinery, and the
        warmed integer-keyed wildcard-pattern constants — exactly the
        state :meth:`attach_state` needs to reconstruct this kernel without
        refolding, so a serving worker pool can publish one copy in shared
        memory and attach it in every process. Dynamic per-width caches
        (block corners, output heads, scratch) are derived from these
        buffers and rebuilt lazily per process. fp64 mode holds no
        compiled buffers and cannot be exported.
        """
        if self.mode == "fp64":
            raise EstimationError("fp64 oracle mode has no compiled state to export")
        self.compile()
        with self._lock:
            arrays: Dict[str, np.ndarray] = {
                "perm": self._perm.astype(np.int64),
                "cuts": self._cuts,
                "mask_stack": self._mask_stack,
                "b_in": self._b_in,
                "mask_base": self._mask_base,
                "b_out": self._b_out,
            }
            for i, lut in enumerate(self._luts):
                arrays[f"lut::{i}"] = lut
            if self.quantization == "off":
                arrays["w_out"] = self._w_out
                for j, (w1t, b1, w2t, b2) in enumerate(self._block_weights):
                    arrays[f"block::{j}::w1t"] = w1t
                    arrays[f"block::{j}::b1"] = b1
                    arrays[f"block::{j}::w2t"] = w2t
                    arrays[f"block::{j}::b2"] = b2
            else:
                # Quantized buffers ship quantized (plus their scales): the
                # shared segment shrinks to roughly the storage dtype's
                # fraction of the fp32 footprint, and attaching workers
                # dequantize into per-process corner caches lazily.
                arrays["q_scale"] = self._q_scale
                arrays["w_out_q"] = self._w_out_q
                arrays["w_out_scale"] = self._w_out_scale
                for j, (w1q, s1, b1, w2q, s2, b2) in enumerate(self._block_weights_q):
                    arrays[f"block::{j}::w1q"] = w1q
                    arrays[f"block::{j}::s1"] = s1
                    arrays[f"block::{j}::b1"] = b1
                    arrays[f"block::{j}::w2q"] = w2q
                    arrays[f"block::{j}::s2"] = s2
                    arrays[f"block::{j}::b2"] = b2
            # Integer pattern keys fit one uint64 each (<= 64 model columns);
            # wider bytes-keyed patterns refold lazily on the attaching side.
            int_keys = [
                k for k in self._pattern_cache if isinstance(k, (int, np.integer))
            ]
            arrays["pattern_keys"] = np.array(sorted(int_keys), dtype=np.uint64)
            const_dtype = np.float32 if self.quantization == "off" else np.int16
            arrays["pattern_consts"] = (
                np.stack([self._pattern_cache[int(k)] for k in sorted(int_keys)])
                if int_keys
                else np.zeros((0, self.model.d_ff), dtype=const_dtype)
            )
        return arrays

    def attach_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Adopt buffers produced by :meth:`export_state` without refolding.

        ``arrays`` values are typically read-only views over one shared
        memory segment: the kernels never write into the deterministic
        buffers (all hot-path writes land in thread-local scratch), so N
        worker processes can attach the same physical pages. Marks the
        kernel compiled; dynamic caches start empty and grow per process.
        """
        if self.mode == "fp64":
            raise EstimationError("fp64 oracle mode cannot attach compiled state")
        n_cols = self.model.n_columns
        n_blocks = len(self.model.blocks)
        with self._lock:
            self._reset_state()
            self._perm = arrays["perm"]
            self._cuts = arrays["cuts"]
            self._mask_stack = arrays["mask_stack"]
            self._b_in = arrays["b_in"]
            self._mask_base = arrays["mask_base"]
            self._b_out = arrays["b_out"]
            self._luts = [arrays[f"lut::{i}"] for i in range(n_cols)]
            if self.quantization == "off":
                self._w_out = arrays["w_out"]
                self._block_weights = [
                    (
                        arrays[f"block::{j}::w1t"],
                        arrays[f"block::{j}::b1"],
                        arrays[f"block::{j}::w2t"],
                        arrays[f"block::{j}::b2"],
                    )
                    for j in range(n_blocks)
                ]
            else:
                self._q_scale = arrays["q_scale"]
                self._w_out_q = arrays["w_out_q"]
                self._w_out_scale = arrays["w_out_scale"]
                self._block_weights_q = [
                    (
                        arrays[f"block::{j}::w1q"],
                        arrays[f"block::{j}::s1"],
                        arrays[f"block::{j}::b1"],
                        arrays[f"block::{j}::w2q"],
                        arrays[f"block::{j}::s2"],
                        arrays[f"block::{j}::b2"],
                    )
                    for j in range(n_blocks)
                ]
            keys = arrays["pattern_keys"]
            consts = arrays["pattern_consts"]
            self._pattern_cache = {
                int(key): consts[i] for i, key in enumerate(keys)
            }
            self._compiled = True
            self._attached = True
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Deterministic compiled-buffer footprint (0 until compiled).

        Counts the folded LUTs and permuted weight copies materialized by
        :meth:`compile`. Lazily-grown per-step specializations, pattern
        constants, and thread-local scratch are bounded but workload- and
        thread-dependent, so they are reported via :meth:`stats` instead —
        keeping serving-layer memory accounting (registry eviction budgets)
        stable across identical models.
        """
        if not self._compiled:
            return 0
        total = sum(lut.nbytes for lut in self._luts)
        total += self._mask_stack.nbytes + self._b_in.nbytes + self._mask_base.nbytes
        if self.quantization == "off":
            for w1t, b1, w2t, b2 in self._block_weights:
                total += w1t.nbytes + b1.nbytes + w2t.nbytes + b2.nbytes
            total += self._w_out.nbytes
        else:
            for parts in self._block_weights_q:
                total += sum(a.nbytes for a in parts)
            total += self._w_out_q.nbytes + self._w_out_scale.nbytes
            total += self._q_scale.nbytes
        total += self._b_out.nbytes + self._cuts.nbytes
        return int(total)

    def stats(self) -> Dict[str, float]:
        """Compiled-state telemetry, including the dynamic caches."""
        dynamic = sum(c.nbytes for c in self._pattern_cache.values())
        for entry in self._block_cut_cache.values():
            dynamic += sum(a.nbytes for part in entry for a in part)
        for head in self._out_head_cache.values():
            dynamic += head.nbytes
        for head, _spans in self._multi_head_cache.values():
            dynamic += head.nbytes
        out: Dict[str, float] = {
            "compiled": int(self._compiled),
            "attached": int(self._attached),
            "size_bytes": self.size_bytes,
            "pattern_entries": len(self._pattern_cache),
            "specialized_cuts": len(self._block_cut_cache),
            "out_heads": len(self._out_head_cache),
            "dynamic_cache_bytes": int(dynamic),
            "scratch_bytes": int(self._scratch_bytes),
            "quantization_bits": {"off": 0, "int16": 16, "int8": 8}[self.quantization],
        }
        if self._drift is not None:
            out.update(self._drift)
        return out

    def record_drift(self, rel_errors) -> Dict[str, float]:
        """Record per-query relative drift vs the fp64 oracle (quantized modes).

        ``rel_errors`` holds one ``|est_q - est_oracle| / est_oracle`` per
        query (see ``inference.measure_quantization_drift``). The summary
        rides :meth:`stats` — and from there the scheduler's stats and the
        HTTP ``/metrics`` gauges — until the next measurement or
        :meth:`invalidate`.
        """
        rel = np.asarray(rel_errors, dtype=np.float64)
        if rel.size == 0:
            raise EstimationError("record_drift needs at least one per-query error")
        self._drift = {
            "quantization_drift_queries": int(rel.size),
            "quantization_drift_rel_mean": float(rel.mean()),
            "quantization_drift_rel_p50": float(np.median(rel)),
            "quantization_drift_rel_p90": float(np.quantile(rel, 0.9)),
            "quantization_drift_rel_max": float(rel.max()),
        }
        return dict(self._drift)

    # ------------------------------------------------------------------
    # Conditionals (the ProgressiveSampler surface)
    # ------------------------------------------------------------------
    def conditional(
        self, tokens: np.ndarray, col: int, wildcard: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``p(X_col | inputs)`` — same contract as the reference model."""
        if self.mode == "fp64":
            return self.model.conditional(tokens, col, wildcard)
        return self._probs(tokens, col, wildcard)

    def column_conditional(
        self, tokens: np.ndarray, col: int, wildcard: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self.mode == "fp64":
            return self.model.column_conditional(tokens, col, wildcard)
        return self._probs(tokens, col, wildcard)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _probs(self, tokens, col, wildcard) -> np.ndarray:
        self.compile()
        model = self.model
        n = len(tokens)
        lo, hi = model.offsets[col], model.offsets[col + 1]
        cut = int(self._cuts[col])
        if cut == 0:
            # Column 0 (and any column no hidden unit feeds): bias only.
            logits = np.broadcast_to(self._b_out[lo:hi], (n, hi - lo))
            return softmax(np.array(logits, dtype=np.float32))

        h = self._scratch(n, cut)[0]
        wc = None if wildcard is None else np.ascontiguousarray(wildcard[:, :col])
        quantized = self._q_scale is not None
        for rows, wc_row, key in self._pattern_groups(wc, n, col):
            const = self._pattern_const(key, wc_row, col)
            if quantized:
                # Accumulate in the exact integer domain, dequantize once.
                target = np.empty(
                    (n if isinstance(rows, slice) else len(rows), cut),
                    dtype=np.int16,
                )
                target[:] = const[:cut]
            elif isinstance(rows, slice):
                h[:, :cut] = const[:cut]
                target = h[:, :cut]
            else:
                target = np.empty((len(rows), cut), dtype=np.float32)
                target[:] = const[:cut]
            constrained = (
                np.arange(col) if wc_row is None else np.flatnonzero(~wc_row)
            )
            for i in constrained:
                target += self._luts[i][tokens[rows, i], :cut]
            if quantized:
                if isinstance(rows, slice):
                    np.multiply(target, self._q_scale[:cut], out=h[:, :cut])
                else:
                    h[rows, :cut] = target * self._q_scale[:cut]
            elif not isinstance(rows, slice):
                h[rows, :cut] = target
        return self._finish(h, col, cut)

    def _finish(self, h, col: int, cut: int) -> np.ndarray:
        """Blocks + sliced output head + softmax over a pre-activation ``h``.

        ``h`` is an augmented ``(n, cut + 1)`` buffer whose last column is a
        constant 1: every weight matrix carries its bias as an extra input
        row (and propagates the ones column through itself), so the whole
        residual stack runs as bare ``relu``/``matmul``/``add`` passes with
        no separate bias traversals over the batch.
        """
        h[:, cut] = 1.0
        _, r, a, t = self._scratch(len(h), cut)
        for w1a, w2a in self._block_slices(cut):
            np.maximum(h, 0.0, out=r)
            np.matmul(r, w1a, out=a)
            np.maximum(a, 0.0, out=a)
            np.matmul(a, w2a, out=t)
            h += t
        np.maximum(h, 0.0, out=r)
        logits = r @ self._out_head(col, cut)
        # In-place fp32 softmax (shifted exps are <= 1, well inside range);
        # downstream Monte Carlo draws work in the probs' own dtype.
        logits -= logits.max(axis=1, keepdims=True)
        np.exp(logits, out=logits)
        logits /= logits.sum(axis=1, keepdims=True)
        return logits

    def _scratch(self, n: int, cut: int):
        """Four contiguous ``(n, cut + 1)`` fp32 views over thread-local buffers.

        The extra column carries the constant-1 bias input (see
        :meth:`_finish`); buffers are reused across steps and calls.
        """
        loc = self._local
        need = n * (cut + 1)
        if getattr(loc, "capacity", 0) < need:
            capacity = max(need, 2 * getattr(loc, "capacity", 0))
            loc.h = np.empty(capacity, dtype=np.float32)
            loc.r = np.empty(capacity, dtype=np.float32)
            loc.a = np.empty(capacity, dtype=np.float32)
            loc.t = np.empty(capacity, dtype=np.float32)
            self._scratch_bytes += 4 * (capacity - getattr(loc, "capacity", 0)) * 4
            loc.capacity = capacity
        shape = (n, cut + 1)
        return (
            loc.h[:need].reshape(shape),
            loc.r[:need].reshape(shape),
            loc.a[:need].reshape(shape),
            loc.t[:need].reshape(shape),
        )

    def _session_buffer(self, n: int) -> np.ndarray:
        """A reusable ``(n, d_ff)`` fold buffer (thread-local pool).

        fp32 in full-precision mode; int16 in quantized modes, where the
        fold arithmetic is exact in the shared integer domain and the
        buffer's memory traffic halves (the main quantized latency win).
        """
        loc = self._local
        need = n * self.model.d_ff
        dtype = np.float32 if self._q_scale is None else np.int16
        if getattr(loc, "fold_capacity", 0) < need:
            loc.fold = np.empty(need, dtype=dtype)
            self._scratch_bytes += (
                need - getattr(loc, "fold_capacity", 0)
            ) * loc.fold.itemsize
            loc.fold_capacity = need
        return loc.fold[:need].reshape(n, self.model.d_ff)

    def begin_session(self, tokens: np.ndarray, wildcard: np.ndarray) -> "FoldSession":
        """Open an incremental-fold session over a batched sampling walk.

        The batched engine fixes model columns monotonically; once every
        query has passed column ``c``, row ``r``'s contribution from ``c``
        (drawn token or MASK) never changes again. The session exploits
        that: it keeps one running ``(n, d_ff)`` pre-activation buffer and
        folds each column in exactly once — later steps gather their
        prefix straight from the buffer instead of re-gathering every
        earlier column per forward pass.
        """
        self.compile()
        return FoldSession(self, tokens, wildcard)

    def _block_slices(self, cut: int):
        """Bias-augmented ``(cut+1)²`` block-weight corners per prefix width.

        Row ``cut`` holds the bias, so ``x_aug @ W`` fuses the affine map
        into one GEMM; the first matrix's last column regenerates the
        constant-1 input for the second, whose last column is zero so the
        residual add leaves the caller's ones column untouched.
        """
        entry = self._block_cut_cache.get(cut)
        if entry is None:
            entry = []
            for parts in self._block_weights_q or self._block_weights:
                if self._q_scale is None:
                    w1t, b1, w2t, b2 = parts
                    w1c, w2c = w1t[:cut, :cut], w2t[:cut, :cut]
                else:
                    # Dequantize once per prefix width into the cached fp32
                    # corner; the GEMMs accumulate in fp32 as usual.
                    w1q, s1, b1, w2q, s2, b2 = parts
                    w1c = w1q[:cut, :cut] * s1[:cut]
                    w2c = w2q[:cut, :cut] * s2[:cut]
                w1a = np.zeros((cut + 1, cut + 1), dtype=np.float32)
                w1a[:cut, :cut] = w1c
                w1a[cut, :cut] = b1[:cut]
                w1a[cut, cut] = 1.0
                w2a = np.zeros((cut + 1, cut + 1), dtype=np.float32)
                w2a[:cut, :cut] = w2c
                w2a[cut, :cut] = b2[:cut]
                entry.append((w1a, w2a))
            self._block_cut_cache[cut] = entry
        return entry

    def _out_head(self, col: int, cut: int) -> np.ndarray:
        """Bias-augmented ``(cut+1, dom)`` output head for one sampling step."""
        entry = self._out_head_cache.get(col)
        if entry is None:
            lo, hi = self.model.offsets[col], self.model.offsets[col + 1]
            entry = np.empty((cut + 1, hi - lo), dtype=np.float32)
            entry[:cut] = self._head_rows(lo, hi, cut)
            entry[cut] = self._b_out[lo:hi]
            self._out_head_cache[col] = entry
        return entry

    def _head_rows(self, lo: int, hi: int, cut: int) -> np.ndarray:
        """``(cut, hi-lo)`` output-head slice, dequantized when quantized."""
        if self._q_scale is None:
            return self._w_out[lo:hi, :cut].T
        return (self._w_out_q[lo:hi, :cut] * self._w_out_scale[lo:hi, None]).T

    def _multi_head(self, cols: tuple, cut: int):
        """Concatenated bias-augmented heads for a multi-column pass.

        Rows ``cut_c..cut`` of column ``c``'s span are exactly zero (the
        MADE output mask forbids those units), so evaluating every head at
        the shared width ``cut`` reproduces each per-column head.
        """
        entry = self._multi_head_cache.get(cols)
        if entry is None:
            offsets = self.model.offsets
            spans, off = [], 0
            total = int(sum(offsets[c + 1] - offsets[c] for c in cols))
            head = np.zeros((cut + 1, total), dtype=np.float32)
            for c in cols:
                lo, hi = offsets[c], offsets[c + 1]
                cut_c = int(self._cuts[c])
                head[:cut_c, off : off + (hi - lo)] = self._head_rows(lo, hi, cut_c)
                head[cut, off : off + (hi - lo)] = self._b_out[lo:hi]
                spans.append((off, off + (hi - lo)))
                off += hi - lo
            entry = (head, spans)
            self._multi_head_cache[cols] = entry
        return entry

    # ------------------------------------------------------------------
    # Wildcard-pattern bookkeeping
    # ------------------------------------------------------------------
    def _pattern_const(self, key, wc_row: Optional[np.ndarray], col: int) -> np.ndarray:
        """Cached wildcard-constant vector for one pattern (bounded cache)."""
        const = self._pattern_cache.get(key)
        if const is None:
            const = self._b_in.copy()
            if wc_row is not None and wc_row.any():
                const = const + self._mask_stack[:col][wc_row].sum(axis=0)
            if self._q_scale is not None:
                # Integer domain: the sum promoted to a wide dtype, but the
                # scale budget guarantees the value fits the accumulator.
                const = const.astype(np.int16)
            if len(self._pattern_cache) >= PATTERN_CACHE_LIMIT:
                self._pattern_cache.clear()
            self._pattern_cache[key] = const
        return const
    def _pattern_groups(self, wc: Optional[np.ndarray], n: int, col: int):
        """Group rows by wildcard signature over columns ``< col``.

        Yields ``(rows, wc_row, key)``: ``rows`` is a slice or index array,
        ``wc_row`` the group's boolean wildcard prefix (None = fully
        constrained), ``key`` the hashable cache key. Padding a pattern with
        trailing non-wildcard columns does not change its key — which is
        exactly right, because trailing constrained columns contribute via
        gathers, not via the cached constant.
        """
        if wc is None or col == 0 or not wc.any():
            return [(slice(None), None, 0)]
        packed = np.packbits(wc, axis=1)
        if packed.shape[1] <= 8:
            if packed.shape[1] < 8:
                pad = np.zeros((n, 8 - packed.shape[1]), dtype=np.uint8)
                packed = np.ascontiguousarray(np.hstack([packed, pad]))
            ids = packed.view(np.uint64).ravel()
            if n == 1 or (ids == ids[0]).all():
                return [(slice(None), wc[0], int(ids[0]))]
            uniq, inverse = np.unique(ids, return_inverse=True)
            groups = []
            for g, key in enumerate(uniq):
                rows = np.flatnonzero(inverse == g)
                groups.append((rows, wc[rows[0]], int(key)))
            return groups
        # > 64 model columns: fall back to row-wise unique on the raw bytes.
        uniq, inverse = np.unique(packed, axis=0, return_inverse=True)
        groups = []
        for g in range(len(uniq)):
            rows = np.flatnonzero(inverse == g)
            groups.append((rows, wc[rows[0]], uniq[g].tobytes()))
        return groups

    def warm_pattern(self, wc_row: np.ndarray, col: int) -> int:
        """Seed the wildcard constant for one ``(pattern, step)``; 1 if new.

        ``wc_row`` is the full wildcard row; only columns ``< col`` matter.
        Used by plan pre-compilation so a registered query plan pays its
        pattern-assembly cost before traffic arrives.
        """
        if self.mode == "fp64" or col == 0:
            return 0
        self.compile()
        wc = np.ascontiguousarray(wc_row[None, :col], dtype=bool)
        ((_, row, key),) = self._pattern_groups(wc, 1, col)
        if key in self._pattern_cache:
            return 0
        self._pattern_const(key, row, col)
        return 1


class FoldSession:
    """Incremental pre-activation state for one batched sampling walk.

    Holds a running ``(n, d_ff)`` buffer initialized with the *all-wildcard*
    pre-activation (bias + every column's MASK row, see ``_mask_base``);
    :meth:`probs` lazily folds every finalized column ``< col`` into it by
    replacing the column's MASK contribution with its token contribution on
    the non-wildcard rows only — one small delta gather per column per
    *walk* instead of a full-width gather per forward pass, and wildcard
    rows cost nothing at all. A column's LUT rows are exactly zero on
    hidden units of lower degree, so each fold only touches the buffer's
    ``cut[col]:`` suffix.
    """

    __slots__ = ("compiled", "tokens", "wildcard", "buffer", "folded")

    def __init__(self, compiled: CompiledResMADE, tokens, wildcard):
        self.compiled = compiled
        self.tokens = tokens
        self.wildcard = wildcard
        self.buffer = compiled._session_buffer(len(tokens))
        self.buffer[:] = compiled._mask_base
        self.folded = 0

    def _fold(self, col: int) -> None:
        rows = np.flatnonzero(~self.wildcard[:, col])
        if len(rows):
            self.fold_rows(col, rows, self.tokens[rows, col])
        self.folded = max(self.folded, col + 1)

    def fold_rows(self, col: int, rows: np.ndarray, ids) -> None:
        """Replace ``col``'s MASK contribution with token ids on ``rows``.

        ``ids`` may be an array (one token per row) or a scalar shared by
        every row (deterministic columns). Used directly by the engine for
        columns whose post-draw tokens are known up front.
        """
        c = self.compiled
        cut = int(c._cuts[col])
        mask_row = c._mask_stack[col][cut:]
        if np.ndim(ids) == 0:
            delta = c._luts[col][int(ids), cut:] - mask_row
        elif c._luts[col].dtype == self.buffer.dtype:
            delta = c._luts[col][ids, cut:]
            delta -= mask_row
        else:
            # int8 LUT rows promote to the int16 buffer domain on subtract
            # (the delta can exceed the int8 range even though the folded
            # buffer value cannot).
            delta = c._luts[col][ids, cut:] - mask_row
        self.buffer[rows, cut:] += delta
        self.folded = max(self.folded, col + 1)

    def fold_slices(self, col: int, slcs, token: int) -> None:
        """Fold a shared token into contiguous row slices (indicator runs).

        The delta is one constant row, so each participating query's slice
        takes a contiguous broadcast add — no index arrays, no gathers.
        """
        c = self.compiled
        cut = int(c._cuts[col])
        delta = c._luts[col][int(token), cut:] - c._mask_stack[col][cut:]
        for sl in slcs:
            self.buffer[sl, cut:] += delta
        self.folded = max(self.folded, col + 1)

    def ensure_folded(self, col: int) -> None:
        """Fold every finalized column ``< col`` from the live matrices."""
        for prev in range(self.folded, col):
            self._fold(prev)
        self.folded = max(self.folded, col)

    def probs(self, rows: np.ndarray, col: int) -> np.ndarray:
        """``p(X_col | finalized prefix)`` for the given global row ids."""
        c = self.compiled
        self.ensure_folded(col)
        cut = int(c._cuts[col])
        lo, hi = c.model.offsets[col], c.model.offsets[col + 1]
        if cut == 0:
            logits = np.broadcast_to(c._b_out[lo:hi], (len(rows), hi - lo))
            return softmax(np.array(logits, dtype=np.float32))
        h = c._scratch(len(rows), cut)[0]
        if c._q_scale is None:
            h[:, :cut] = self.buffer[rows, :cut]
        else:
            np.multiply(self.buffer[rows, :cut], c._q_scale[:cut], out=h[:, :cut])
        return c._finish(h, col, cut)

    def probs_multi(self, rows: np.ndarray, cols) -> list:
        """Conditionals for several columns from one shared blocks pass.

        Valid when every column in ``cols`` already has its predecessors
        folded (``folded >= cols[-1]``): the blocks run once at the widest
        column's prefix, and each column reads its own (zero-padded) output
        head. Hidden units of degree ``>= c`` carry exactly-zero output
        weights for column ``c``, so the wider pass computes the same
        logits the per-column kernel would.
        """
        c = self.compiled
        cut = int(c._cuts[cols[-1]])
        if cut == 0:
            return [self.probs(rows, col) for col in cols]
        h = c._scratch(len(rows), cut)[0]
        if c._q_scale is None:
            h[:, :cut] = self.buffer[rows, :cut]
        else:
            np.multiply(self.buffer[rows, :cut], c._q_scale[:cut], out=h[:, :cut])
        head, spans = c._multi_head(tuple(cols), cut)
        h[:, cut] = 1.0
        _, r, a, t = c._scratch(len(rows), cut)
        for w1a, w2a in c._block_slices(cut):
            np.maximum(h, 0.0, out=r)
            np.matmul(r, w1a, out=a)
            np.maximum(a, 0.0, out=a)
            np.matmul(a, w2a, out=t)
            h += t
        np.maximum(h, 0.0, out=r)
        logits = r @ head
        out = []
        for lo, hi in spans:
            piece = logits[:, lo:hi]
            piece -= piece.max(axis=1, keepdims=True)
            np.exp(piece, out=piece)
            piece /= piece.sum(axis=1, keepdims=True)
            out.append(piece)
        return out
