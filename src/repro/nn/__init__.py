"""Numpy deep-learning substrate.

The paper trains its autoregressive model in PyTorch on a GPU; this
environment has neither, so the entire stack — embeddings, masked linear
layers, residual blocks, cross-entropy, Adam — is implemented from scratch
over numpy with hand-derived gradients. The same layers power both
NeuroCard's ResMADE density model and the MSCN baseline's regressor.
"""

from repro.nn.compiled import CompiledResMADE
from repro.nn.layers import Embedding, Linear, Parameter, ReLU, Sigmoid
from repro.nn.masks import hidden_degrees, hidden_mask, input_mask, output_mask
from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.nn.resmade import ResMADE

__all__ = [
    "Parameter",
    "Linear",
    "Embedding",
    "ReLU",
    "Sigmoid",
    "MLP",
    "Adam",
    "ResMADE",
    "CompiledResMADE",
    "input_mask",
    "hidden_mask",
    "output_mask",
    "hidden_degrees",
]
