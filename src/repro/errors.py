"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """The join schema is malformed (cyclic, disconnected, unknown table/column)."""


class QueryError(ReproError):
    """A query references unknown tables/columns or uses an unsupported shape."""


class TrainingError(ReproError):
    """Model training failed or was configured inconsistently."""


class EstimationError(ReproError):
    """Cardinality estimation failed (e.g. estimator not fitted)."""


class PersistenceError(EstimationError):
    """A saved model artifact is incompatible with the schema/config at hand.

    Subclasses :class:`EstimationError` so pre-existing callers that catch
    the broader class keep working; raised *before* weight loading so a
    mismatched snapshot fails with a schema-level message instead of a deep
    shape error.
    """


class ServingError(ReproError):
    """The serving layer failed (scheduler closed, unknown model, registry misuse)."""


class DeadlineError(ServingError):
    """A request's deadline expired before its work was dispatched/completed.

    Deliberate cancellation, not a serving failure: the circuit breaker
    ignores it and the HTTP layer maps it to 504 without falling back.
    """


class InjectedFaultError(ServingError):
    """A deterministic fault fired at a named injection site (chaos testing).

    Raised only when a :class:`repro.serving.faults.FaultPlan` is installed;
    production serving never constructs one. Subclasses
    :class:`ServingError` so every fail-fast path treats it exactly like a
    real infrastructure failure.
    """


class DataError(ReproError):
    """Base-table data is malformed (length mismatch, bad dtype, bad NULLs)."""


class SamplerError(ReproError):
    """The background sampling pool failed (worker died, drained, timed out)."""
