"""NeuroCard reproduction: one cardinality estimator for all tables.

Public API re-exports the pieces a downstream user needs:

* data & schema: ``Table``, ``JoinSchema``, ``JoinEdge``, ``Query``,
  ``Predicate``
* the estimator: ``NeuroCard``, ``NeuroCardConfig`` (and
  ``repro.core.persistence`` for save/load)
* ground truth / evaluation: ``query_cardinality``, ``q_error``

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.eval.metrics import q_error
from repro.joins.executor import query_cardinality
from repro.relational import JoinEdge, JoinSchema, Predicate, Query, Table

__version__ = "1.0.0"

__all__ = [
    "NeuroCard",
    "NeuroCardConfig",
    "Table",
    "JoinSchema",
    "JoinEdge",
    "Query",
    "Predicate",
    "query_cardinality",
    "q_error",
    "__version__",
]
