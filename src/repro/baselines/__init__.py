"""Baseline estimators the paper compares against (§7.2).

* :class:`PostgresEstimator` — 1D histograms + MCVs + independence and
  System-R join heuristics (the "real DBMS" baseline).
* :class:`IBJSEstimator` — Index-Based Join Sampling [20].
* :class:`BiasedJoinSampler` — IBJS-style biased *training* sampler
  (ablation A in Table 5).
* :class:`JoinSampleEstimator` — uniform join samples as a standalone
  estimator (ablation E).
* :class:`PerTableAREstimator` — one autoregressive model per table combined
  via independence (ablation D).
* :class:`MSCNEstimator` — supervised query-driven regressor with set
  featurization and sample bitmaps [15].
* :class:`DeepDBEstimator` — sum-product network ensemble over table
  subsets with conditional independence across subsets [12].
"""

from repro.baselines.ibjs import BiasedJoinSampler, IBJSEstimator
from repro.baselines.mscn import MSCNEstimator
from repro.baselines.per_table import PerTableAREstimator
from repro.baselines.postgres import PostgresEstimator
from repro.baselines.sampling import JoinSampleEstimator
from repro.baselines.spn import SPN, DeepDBEstimator

__all__ = [
    "PostgresEstimator",
    "IBJSEstimator",
    "BiasedJoinSampler",
    "JoinSampleEstimator",
    "PerTableAREstimator",
    "MSCNEstimator",
    "DeepDBEstimator",
    "SPN",
]
