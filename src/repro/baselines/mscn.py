"""MSCN: supervised query-driven estimator (Kipf et al. [15]).

Re-implementation on the numpy NN substrate: queries are featurized as
(table set, join-edge set, per-column predicate regions) plus per-table
*sample bitmaps* — which base-table sample rows satisfy the query's filters
— and a ReLU MLP regresses the log-cardinality. Trained on generated queries
labeled with true cardinalities (the paper's setup; label collection is the
expensive phase Figure 7c charges MSCN for).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regions import Region
from repro.errors import TrainingError
from repro.nn.mlp import MLP
from repro.nn.optim import Adam
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class MSCNEstimator:
    """Featurized-query MLP regressor with sample bitmaps."""

    name = "MSCN"

    def __init__(
        self,
        schema: JoinSchema,
        train_queries: Sequence[Query],
        train_cards: Sequence[float],
        bitmap_size: int = 64,
        hidden: Tuple[int, int] = (256, 128),
        epochs: int = 60,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ):
        if len(train_queries) != len(train_cards):
            raise TrainingError("training queries and labels must align")
        self.schema = schema
        self.bitmap_size = bitmap_size
        rng = np.random.default_rng(seed)
        self._tables = list(schema.tables)
        self._edges = [e.name for e in schema.edges]
        self._columns: List[Tuple[str, str]] = [
            (t, c) for t in self._tables for c in schema.table(t).column_names
        ]
        self._bitmap_rows: Dict[str, np.ndarray] = {
            t: rng.choice(
                schema.table(t).n_rows,
                size=min(bitmap_size, schema.table(t).n_rows),
                replace=False,
            )
            for t in self._tables
        }
        dim = (
            len(self._tables)
            + len(self._edges)
            + 3 * len(self._columns)
            + bitmap_size * len(self._tables)
        )
        self.mlp = MLP(rng, [dim, *hidden, 1])
        self._train(train_queries, train_cards, epochs, batch_size, learning_rate, rng)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return sum(p.value.nbytes for p in self.mlp.parameters())

    def featurize(self, query: Query) -> np.ndarray:
        """Fixed-length feature vector of one query."""
        parts = []
        in_query = set(query.tables)
        parts.append(np.array([t in in_query for t in self._tables], dtype=np.float32))
        edge_feat = [
            e.parent in in_query and e.child in in_query for e in self.schema.edges
        ]
        parts.append(np.array(edge_feat, dtype=np.float32))

        regions: Dict[Tuple[str, str], Region] = {}
        for pred in query.predicates:
            key = (pred.table, pred.column)
            region = Region.from_predicate(
                pred.code_region(self.schema.table(pred.table))
            )
            regions[key] = regions[key].intersect(region) if key in regions else region
        col_feats = np.zeros((len(self._columns), 3), dtype=np.float32)
        for i, key in enumerate(self._columns):
            if key not in regions:
                continue
            region = regions[key]
            domain = self.schema.table(key[0]).column(key[1]).domain_size
            codes = region.to_codes()
            lo = float(codes[0]) if len(codes) else 0.0
            hi = float(codes[-1]) if len(codes) else 0.0
            col_feats[i] = [1.0, lo / domain, hi / domain]
        parts.append(col_feats.ravel())

        bitmaps = np.zeros((len(self._tables), self.bitmap_size), dtype=np.float32)
        preds_by_table = query.predicates_by_table()
        for ti, tname in enumerate(self._tables):
            if tname not in in_query:
                continue
            rows = self._bitmap_rows[tname]
            bits = np.ones(len(rows), dtype=bool)
            for pred in preds_by_table.get(tname, []):
                bits &= pred.mask(self.schema.table(tname))[rows]
            bitmaps[ti, : len(rows)] = bits
        parts.append(bitmaps.ravel())
        return np.concatenate(parts)

    # ------------------------------------------------------------------
    def _train(self, queries, cards, epochs, batch_size, lr, rng):
        feats = np.stack([self.featurize(q) for q in queries])
        labels = np.log1p(np.maximum(np.asarray(cards, dtype=np.float64), 0.0))
        self._label_mean = float(labels.mean())
        self._label_std = float(labels.std() + 1e-9)
        targets = ((labels - self._label_mean) / self._label_std).astype(np.float32)
        optimizer = Adam(self.mlp.parameters(), lr=lr, warmup_steps=10)
        n = len(queries)
        for _ in range(epochs):
            order = rng.permutation(n)
            for i in range(0, n, batch_size):
                idx = order[i : i + batch_size]
                optimizer.zero_grad()
                self.mlp.mse_loss_and_backward(feats[idx], targets[idx])
                optimizer.step()

    def estimate(self, query: Query) -> float:
        query.validate(self.schema)
        feat = self.featurize(query).reshape(1, -1).astype(np.float32)
        pred = float(self.mlp.forward(feat)[0, 0])
        log_card = pred * self._label_std + self._label_mean
        return float(max(np.expm1(min(log_card, 50.0)), 0.0))
