"""Uniform join samples as a standalone estimator (Table 5, ablation E).

Draws simple random samples from the *query graph's* inner join using the
Exact-Weight sampler and evaluates the filters on them: the estimate is
``|inner join| × pass fraction``. Unbiased, but with no density model the
variance explodes for low-selectivity queries — many queries get zero sample
hits, which is exactly the paper's point in row (E).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count
from repro.joins.sampler import InnerJoinSampler
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class JoinSampleEstimator:
    """``|J_query| * fraction-of-uniform-samples-passing-filters``."""

    name = "JoinSamples"
    size_bytes = None

    #: samples are drawn lazily from the live schema; always servable
    is_fitted = True

    def __init__(
        self,
        schema: JoinSchema,
        counts: Optional[JoinCounts] = None,
        n_samples: int = 10_000,
        seed: int = 0,
    ):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        self.inner = InnerJoinSampler(schema, self.counts)
        self.n_samples = n_samples
        self._rng = np.random.default_rng(seed)
        self._size_cache: Dict[Tuple[str, ...], float] = {}

    def _graph_size(self, tables: Tuple[str, ...]) -> float:
        if tables not in self._size_cache:
            self._size_cache[tables] = inner_join_count(
                self.schema, list(tables), counts=self.counts
            )
        return self._size_cache[tables]

    def estimate(self, query: Query, **_ignored) -> float:
        query.validate(self.schema)
        size = self._graph_size(tuple(sorted(query.tables)))
        if size <= 0:
            return 0.0
        rows = self.inner.sample_row_ids(list(query.tables), self.n_samples, self._rng)
        passing = np.ones(self.n_samples, dtype=bool)
        for pred in query.predicates:
            mask = pred.mask(self.schema.table(pred.table))
            passing &= mask[rows[pred.table]]
        return size * float(passing.sum()) / self.n_samples

    def estimate_batch(self, queries, **_ignored) -> np.ndarray:
        """Sequential-equivalent batch estimates (shared generator, in order)."""
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)
