"""Postgres-style estimator: per-column stats + independence heuristics.

Mirrors the mechanisms the paper attributes to Postgres v12 (§7.2): each
column keeps a null fraction, an n_distinct estimate, a most-common-values
list, and an equi-depth histogram. Predicate selectivities multiply under
the attribute-value-independence assumption; equi-join selectivity uses the
System-R ``1 / max(ndv_left, ndv_right)`` rule scaled by key null fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.joins import keyops
from repro.relational.column import NULL_CODE, Column
from repro.relational.predicate import Predicate
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


@dataclass
class _ColumnStats:
    null_frac: float
    n_distinct: int
    mcv_codes: np.ndarray
    mcv_freqs: np.ndarray  # fraction of *all* rows
    hist_bounds: np.ndarray  # equi-depth bounds over non-MCV, non-NULL codes
    hist_frac: float  # fraction of all rows covered by the histogram

    @property
    def size_bytes(self) -> int:
        return 8 * (len(self.mcv_codes) * 2 + len(self.hist_bounds) + 3)


def _build_stats(column: Column, n_bins: int, n_mcv: int) -> _ColumnStats:
    n = max(column.n_rows, 1)
    codes = column.codes
    null_frac = float((codes == NULL_CODE).sum()) / n
    non_null = codes[codes != NULL_CODE]
    if len(non_null) == 0:
        return _ColumnStats(null_frac, 0, np.empty(0, dtype=np.int64),
                            np.empty(0), np.empty(0, dtype=np.int64), 0.0)
    values, counts = np.unique(non_null, return_counts=True)
    order = np.argsort(counts)[::-1]
    take = min(n_mcv, len(values))
    mcv_codes = values[order[:take]]
    mcv_freqs = counts[order[:take]] / n
    rest_mask = ~np.isin(non_null, mcv_codes)
    rest = np.sort(non_null[rest_mask])
    if len(rest):
        qs = np.linspace(0, 1, min(n_bins, len(rest)) + 1)
        bounds = np.quantile(rest, qs, method="nearest").astype(np.int64)
    else:
        bounds = np.empty(0, dtype=np.int64)
    return _ColumnStats(
        null_frac=null_frac,
        n_distinct=int(len(values)),
        mcv_codes=mcv_codes,
        mcv_freqs=mcv_freqs,
        hist_bounds=bounds,
        hist_frac=float(len(rest)) / n,
    )


def _hist_mass(stats: _ColumnStats, lo: int, hi: int) -> float:
    """Fraction of histogram-covered rows with code in [lo, hi]."""
    bounds = stats.hist_bounds
    if len(bounds) < 2 or stats.hist_frac <= 0:
        return 0.0
    n_bins = len(bounds) - 1

    def cdf(code: float) -> float:
        if code < bounds[0]:
            return 0.0
        if code >= bounds[-1]:
            return 1.0
        b = int(np.searchsorted(bounds, code, side="right")) - 1
        b = min(max(b, 0), n_bins - 1)
        width = bounds[b + 1] - bounds[b]
        inside = (code - bounds[b]) / width if width > 0 else 1.0
        return (b + min(inside, 1.0)) / n_bins

    return max(cdf(hi) - cdf(lo - 1e-9), 0.0)


class PostgresEstimator:
    """Classical DBMS cardinality estimation (System-R lineage)."""

    name = "Postgres"

    def __init__(self, schema: JoinSchema, n_bins: int = 100, n_mcv: int = 20):
        self.schema = schema
        self.stats: Dict[Tuple[str, str], _ColumnStats] = {}
        for tname, table in schema.tables.items():
            for cname, column in table.columns.items():
                self.stats[(tname, cname)] = _build_stats(column, n_bins, n_mcv)
        # Per (table, edge) distinct non-NULL key counts for eqjoinsel.
        self._key_ndv: Dict[Tuple[str, str], Tuple[int, float]] = {}
        for edge in schema.edges:
            for side in (edge.parent, edge.child):
                cols = [schema.table(side).column(c) for c in edge.columns_of(side)]
                mat = np.stack([c.codes for c in cols], axis=1)
                packed = keyops.pack_codes(
                    mat, [c.domain_size for c in cols], null_is_invalid=True
                )
                valid = packed[packed >= 0]
                ndv = int(len(np.unique(valid))) if len(valid) else 0
                null_frac = 1.0 - len(valid) / max(len(packed), 1)
                self._key_ndv[(side, edge.name)] = (max(ndv, 1), null_frac)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self.stats.values()) + 16 * len(self._key_ndv)

    # ------------------------------------------------------------------
    def _eq_selectivity(self, stats: _ColumnStats, code: int | None) -> float:
        if code is None:
            return 0.0
        hit = np.flatnonzero(stats.mcv_codes == code)
        if len(hit):
            return float(stats.mcv_freqs[hit[0]])
        rest_distinct = max(stats.n_distinct - len(stats.mcv_codes), 1)
        return stats.hist_frac / rest_distinct

    def _pred_selectivity(self, pred: Predicate) -> float:
        table = self.schema.table(pred.table)
        column = table.column(pred.column)
        stats = self.stats[(pred.table, pred.column)]
        if pred.op == "=":
            return self._eq_selectivity(stats, column.code_for(pred.value))
        if pred.op == "IN":
            return min(
                sum(self._eq_selectivity(stats, column.code_for(v)) for v in pred.value),
                1.0,
            )
        lo, hi = column.code_range(pred.op, pred.value)
        if lo > hi:
            return 0.0
        in_mcv = float(
            stats.mcv_freqs[(stats.mcv_codes >= lo) & (stats.mcv_codes <= hi)].sum()
        )
        return min(in_mcv + stats.hist_frac * _hist_mass(stats, lo, hi), 1.0)

    # ------------------------------------------------------------------
    def estimate(self, query: Query) -> float:
        """Π |T_i| · Π sel(pred) · Π_edges eqjoinsel."""
        query.validate(self.schema)
        card = 1.0
        for tname in query.tables:
            card *= self.schema.table(tname).n_rows
        for pred in query.predicates:
            card *= self._pred_selectivity(pred)
        in_query = set(query.tables)
        for edge in self.schema.edges:
            if edge.parent in in_query and edge.child in in_query:
                ndv_p, null_p = self._key_ndv[(edge.parent, edge.name)]
                ndv_c, null_c = self._key_ndv[(edge.child, edge.name)]
                card *= (1.0 - null_p) * (1.0 - null_c) / max(ndv_p, ndv_c)
        return max(card, 0.0)
