"""One autoregressive model per table, joined via independence (Table 5, D).

Each table gets its own single-table NeuroCard (same architecture as the
Base configuration). A join query is estimated as
``|inner join of query graph| × Π_t (card_t / |T_t|)`` — i.e. exact join
sizes but *inter-table independence* between filters. Comparing this row
against the Base configuration isolates the value of learning cross-table
correlations in one model, which the paper finds is the single most
important design choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class PerTableAREstimator:
    """Per-table AR density models combined under independence."""

    name = "PerTableAR"

    def __init__(
        self,
        schema: JoinSchema,
        config: Optional[NeuroCardConfig] = None,
        counts: Optional[JoinCounts] = None,
    ):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        base = config if config is not None else NeuroCardConfig()
        self.models: Dict[str, NeuroCard] = {}
        for tname, table in schema.tables.items():
            single = JoinSchema(tables={tname: table}, edges=[], root=tname)
            cfg = NeuroCardConfig(
                d_emb=base.d_emb,
                d_ff=base.d_ff,
                n_blocks=base.n_blocks,
                factorization_bits=base.factorization_bits,
                batch_size=base.batch_size,
                train_tuples=max(base.train_tuples // max(len(schema.tables), 1), 2048),
                learning_rate=base.learning_rate,
                progressive_samples=base.progressive_samples,
                sampler_threads=1,
                wildcard_skipping=base.wildcard_skipping,
                exclude_columns=tuple(
                    c for c in base.exclude_columns if c.startswith(f"{tname}.")
                ),
                seed=base.seed,
            )
            self.models[tname] = NeuroCard(single, cfg).fit()
        self._size_cache: Dict[Tuple[str, ...], float] = {}

    @property
    def size_bytes(self) -> int:
        return sum(m.size_bytes for m in self.models.values())

    def _graph_size(self, tables: Tuple[str, ...]) -> float:
        if tables not in self._size_cache:
            self._size_cache[tables] = inner_join_count(
                self.schema, list(tables), counts=self.counts
            )
        return self._size_cache[tables]

    def estimate(self, query: Query) -> float:
        query.validate(self.schema)
        card = self._graph_size(tuple(sorted(query.tables)))
        by_table = query.predicates_by_table()
        for tname, preds in by_table.items():
            single = Query.make([tname], preds)
            table_card = self.models[tname].estimate(single)
            card *= max(table_card, 0.0) / max(self.schema.table(tname).n_rows, 1)
        return card
