"""One autoregressive model per table, joined via independence (Table 5, D).

Each table gets its own single-table NeuroCard (same architecture as the
Base configuration). A join query is estimated as
``|inner join of query graph| × Π_t (card_t / |T_t|)`` — i.e. exact join
sizes but *inter-table independence* between filters. Comparing this row
against the Base configuration isolates the value of learning cross-table
correlations in one model, which the paper finds is the single most
important design choice.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import NeuroCardConfig
from repro.core.estimator import NeuroCard
from repro.joins.counts import JoinCounts
from repro.joins.executor import inner_join_count
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class PerTableAREstimator:
    """Per-table AR density models combined under independence."""

    name = "PerTableAR"

    def __init__(
        self,
        schema: JoinSchema,
        config: Optional[NeuroCardConfig] = None,
        counts: Optional[JoinCounts] = None,
    ):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        base = config if config is not None else NeuroCardConfig()
        self.models: Dict[str, NeuroCard] = {}
        for tname, table in schema.tables.items():
            single = JoinSchema(tables={tname: table}, edges=[], root=tname)
            cfg = NeuroCardConfig(
                d_emb=base.d_emb,
                d_ff=base.d_ff,
                n_blocks=base.n_blocks,
                factorization_bits=base.factorization_bits,
                batch_size=base.batch_size,
                train_tuples=max(base.train_tuples // max(len(schema.tables), 1), 2048),
                learning_rate=base.learning_rate,
                progressive_samples=base.progressive_samples,
                sampler_threads=1,
                wildcard_skipping=base.wildcard_skipping,
                exclude_columns=tuple(
                    c for c in base.exclude_columns if c.startswith(f"{tname}.")
                ),
                seed=base.seed,
            )
            self.models[tname] = NeuroCard(single, cfg).fit()
        self._size_cache: Dict[Tuple[str, ...], float] = {}

    @property
    def size_bytes(self) -> int:
        return sum(m.size_bytes for m in self.models.values())

    @property
    def is_fitted(self) -> bool:
        return all(m.is_fitted for m in self.models.values())

    def _graph_size(self, tables: Tuple[str, ...]) -> float:
        if tables not in self._size_cache:
            self._size_cache[tables] = inner_join_count(
                self.schema, list(tables), counts=self.counts
            )
        return self._size_cache[tables]

    def estimate(self, query: Query, **_ignored) -> float:
        query.validate(self.schema)
        card = self._graph_size(tuple(sorted(query.tables)))
        by_table = query.predicates_by_table()
        for tname, preds in by_table.items():
            single = Query.make([tname], preds)
            table_card = self.models[tname].estimate(single)
            card *= max(table_card, 0.0) / max(self.schema.table(tname).n_rows, 1)
        return card

    def estimate_batch(self, queries, **_ignored) -> np.ndarray:
        """Sequential-equivalent batch estimates (deterministic per-table models)."""
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)


class PerTableStatsEstimator:
    """Training-free degraded-mode fallback: exact per-table selectivities.

    The same structural assumption as :class:`PerTableAREstimator` (exact
    join sizes, inter-table independence between filters), but each
    table's conjunction selectivity is computed *exactly* by evaluating
    the predicate masks against the base table — no learned model at all,
    so it can be built in milliseconds and can never be stale, crashed,
    or corrupted. The serving layer's circuit breaker routes to it when a
    model cannot answer (see :mod:`repro.serving.resilience`); its only
    error source is the independence assumption across tables, so
    single-table queries are exact and multi-table q-error is bounded by
    the filters' cross-table correlation (documented in
    ``docs/resilience.md``).
    """

    name = "PerTableStats"
    is_fitted = True

    def __init__(self, schema: JoinSchema, counts: Optional[JoinCounts] = None):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        self._size_cache: Dict[Tuple[str, ...], float] = {}
        self._sel_cache: Dict[tuple, float] = {}

    @property
    def size_bytes(self) -> int:
        return 0  # references the live schema; no owned state

    def _graph_size(self, tables: Tuple[str, ...]) -> float:
        if tables not in self._size_cache:
            self._size_cache[tables] = inner_join_count(
                self.schema, list(tables), counts=self.counts
            )
        return self._size_cache[tables]

    def _selectivity(self, tname: str, preds) -> float:
        key = None
        try:
            key = (tname, tuple(preds))
            hash(key)
        except TypeError:  # unhashable predicate values: compute uncached
            key = None
        if key is not None and key in self._sel_cache:
            return self._sel_cache[key]
        table = self.schema.table(tname)
        if table.n_rows == 0:
            return 0.0
        mask = np.ones(table.n_rows, dtype=bool)
        for pred in preds:
            mask &= pred.mask(table)
        selectivity = float(mask.mean())
        if key is not None:
            self._sel_cache[key] = selectivity
        return selectivity

    def estimate(self, query: Query, **_ignored) -> float:
        """COUNT(*) = exact join size x Π_t exact filter selectivity of t."""
        query.validate(self.schema)
        card = self._graph_size(tuple(sorted(query.tables)))
        for tname, preds in query.predicates_by_table().items():
            card *= self._selectivity(tname, preds)
        return card

    def estimate_batch(self, queries, **_ignored) -> np.ndarray:
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)
