"""Sum-product networks and the DeepDB-style ensemble (Hilprecht et al. [12]).

:class:`SPN` is a from-scratch sum-product network over dictionary codes:
structure learning recursively splits *columns* into independent groups
(product nodes; pairwise Spearman dependence below a threshold) and *rows*
into clusters (sum nodes; k-means via scipy), bottoming out in histogram
leaves. Probability queries evaluate conjunctive per-column regions.

:class:`DeepDBEstimator` mirrors DeepDB's recommended JOB-light setup: one
single-table model on the fact table plus one 2-table model per (fact,
dimension) pair, each trained on samples of the pair's full outer join with
an indicator column; across pairs, *conditional independence given the fact
table's filters* is assumed — precisely the modeling assumption NeuroCard
removes, and the source of DeepDB's tail errors in Tables 2-3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.cluster.vq import kmeans2
from scipy.stats import spearmanr

from repro.core.regions import Region
from repro.errors import EstimationError, QueryError
from repro.joins.counts import JoinCounts
from repro.joins.sampler import ColumnSpec, FullJoinSampler
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class _Leaf:
    def __init__(self, codes: np.ndarray, domain: int):
        counts = np.bincount(codes, minlength=domain).astype(np.float64)
        self.probs = counts / max(counts.sum(), 1.0)

    def prob(self, region: Optional[Region]) -> float:
        if region is None:
            return 1.0
        if region.kind == "interval":
            if region.is_empty:
                return 0.0
            hi = min(region.hi, len(self.probs) - 1)
            return float(self.probs[region.lo : hi + 1].sum())
        codes = region.codes[region.codes < len(self.probs)]
        return float(self.probs[codes].sum())

    @property
    def size_bytes(self) -> int:
        return self.probs.nbytes


class _Product:
    def __init__(self, children: List[Tuple[object, List[int]]]):
        self.children = children  # (node, column ids it covers)

    def prob(self, regions: Dict[int, Region]) -> float:
        out = 1.0
        for node, cols in self.children:
            sub = {c: r for c, r in regions.items() if c in cols}
            out *= node.prob(sub) if not isinstance(node, _Leaf) else node.prob(
                sub.get(cols[0])
            )
        return out

    @property
    def size_bytes(self) -> int:
        return sum(n.size_bytes for n, _ in self.children)


class _Sum:
    def __init__(self, weights: np.ndarray, children: List[object]):
        self.weights = weights
        self.children = children

    def prob(self, regions: Dict[int, Region]) -> float:
        return float(
            sum(w * c.prob(regions) for w, c in zip(self.weights, self.children))
        )

    @property
    def size_bytes(self) -> int:
        return self.weights.nbytes + sum(c.size_bytes for c in self.children)


def _dependent_components(data: np.ndarray, threshold: float) -> List[List[int]]:
    """Column groups connected by |Spearman rho| >= threshold."""
    k = data.shape[1]
    adjacency = np.zeros((k, k), dtype=bool)
    for i in range(k):
        for j in range(i + 1, k):
            if data[:, i].std() == 0 or data[:, j].std() == 0:
                continue
            rho = spearmanr(data[:, i], data[:, j]).statistic
            if np.isfinite(rho) and abs(rho) >= threshold:
                adjacency[i, j] = adjacency[j, i] = True
    seen, comps = set(), []
    for i in range(k):
        if i in seen:
            continue
        comp, stack = [], [i]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            comp.append(v)
            stack.extend(np.flatnonzero(adjacency[v]).tolist())
        comps.append(sorted(comp))
    return comps


class SPN:
    """A sum-product network over dictionary-coded columns."""

    def __init__(
        self,
        data: np.ndarray,
        domains: Sequence[int],
        column_names: Sequence[str],
        min_rows: int = 400,
        corr_threshold: float = 0.3,
        max_depth: int = 8,
        seed: int = 0,
    ):
        if data.ndim != 2 or data.shape[1] != len(domains):
            raise EstimationError("SPN data/domain mismatch")
        self.column_names = list(column_names)
        self.domains = list(domains)
        self._col_index = {n: i for i, n in enumerate(self.column_names)}
        self._rng = np.random.default_rng(seed)
        self._min_rows = min_rows
        self._threshold = corr_threshold
        self.root = self._build(data, list(range(len(domains))), max_depth)

    # ------------------------------------------------------------------
    def _leaf_product(self, data: np.ndarray, cols: List[int]) -> object:
        children = [
            (_Leaf(data[:, i], self.domains[c]), [c]) for i, c in enumerate(cols)
        ]
        return _Product(children)

    def _build(self, data: np.ndarray, cols: List[int], depth: int) -> object:
        if len(cols) == 1:
            return _Product([(_Leaf(data[:, 0], self.domains[cols[0]]), cols)])
        if len(data) < self._min_rows or depth <= 0:
            return self._leaf_product(data, cols)
        comps = _dependent_components(data, self._threshold)
        if len(comps) > 1:
            children = []
            for comp in comps:
                node = self._build(data[:, comp], [cols[i] for i in comp], depth - 1)
                children.append((node, [cols[i] for i in comp]))
            return _Product(children)
        # Row split: k-means into two clusters on standardized codes.
        std = data.std(axis=0)
        std[std == 0] = 1.0
        normalized = (data - data.mean(axis=0)) / std
        _, labels = kmeans2(normalized, 2, minit="++", seed=self._rng.integers(2**31))
        sizes = np.bincount(labels, minlength=2)
        if sizes.min() == 0:
            return self._leaf_product(data, cols)
        weights = sizes / sizes.sum()
        children = [
            self._build(data[labels == c], cols, depth - 1) for c in (0, 1)
        ]
        return _Sum(weights, children)

    # ------------------------------------------------------------------
    def prob(self, regions_by_name: Dict[str, Region]) -> float:
        """P(∧ column ∈ region) under the learned distribution."""
        regions = {}
        for name, region in regions_by_name.items():
            if name not in self._col_index:
                raise QueryError(f"SPN has no column {name!r}")
            regions[self._col_index[name]] = region
        return max(self.root.prob(regions), 0.0)

    @property
    def size_bytes(self) -> int:
        return self.root.size_bytes


class DeepDBEstimator:
    """DeepDB-style SPN ensemble for star schemas.

    ``large=True`` mirrors DeepDB-large: finer structure learning and more
    training samples (bigger, slower, slightly better at the median).

    Serving-protocol conformant (``is_fitted`` / ``size_bytes`` /
    ``estimate_batch``): registrable in a
    :class:`~repro.serving.registry.ModelRegistry` and usable as a
    mid-cascade tier (``docs/estimators.md``). Deterministic at query
    time — the SPNs are frozen after construction — so batch and
    sequential estimates are identical.
    """

    #: SPNs are fitted in the constructor; an instance is always servable.
    is_fitted = True

    def __init__(
        self,
        schema: JoinSchema,
        counts: Optional[JoinCounts] = None,
        n_samples: int = 40_000,
        exclude_columns: Sequence[str] = (),
        large: bool = False,
        seed: int = 0,
    ):
        self.name = "DeepDB-large" if large else "DeepDB"
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        root = schema.root
        for edge in schema.edges:
            if edge.parent != root:
                raise EstimationError(
                    "DeepDBEstimator supports star schemas (all edges at the root); "
                    f"edge {edge.name} is nested"
                )
        excluded = set(exclude_columns)
        rng = np.random.default_rng(seed)
        min_rows = 150 if large else 400
        threshold = 0.25 if large else 0.35
        n_samples = n_samples * 2 if large else n_samples

        def content_specs(tname: str) -> List[ColumnSpec]:
            return [
                ColumnSpec("content", tname, f"{tname}.{c}", column=c)
                for c in schema.table(tname).column_names
                if f"{tname}.{c}" not in excluded
            ]

        # Single-table SPN on the fact table (its rows, not join samples).
        root_specs = content_specs(root)
        root_table = schema.table(root)
        root_data = np.stack(
            [root_table.codes(s.column) for s in root_specs], axis=1
        )
        self.root_spn = SPN(
            root_data,
            [root_table.column(s.column).domain_size for s in root_specs],
            [s.name for s in root_specs],
            min_rows=min_rows,
            corr_threshold=threshold,
            seed=seed,
        )

        # One 2-table SPN per (root, child) pair over the pair's full join.
        self.pair_spns: Dict[str, SPN] = {}
        self.pair_sizes: Dict[str, float] = {}
        for edge in schema.edges:
            child = edge.child
            pair_schema = JoinSchema(
                tables={root: schema.table(root), child: schema.table(child)},
                edges=[edge],
                root=root,
            )
            pair_counts = JoinCounts(pair_schema)
            specs = (
                content_specs(root)
                + content_specs(child)
                + [ColumnSpec("indicator", child, f"__in_{child}")]
            )
            sampler = FullJoinSampler(pair_schema, pair_counts, specs=specs)
            batch = sampler.sample_batch(n_samples, rng)
            data = np.stack([batch[s.name] for s in specs], axis=1)
            domains = []
            for s in specs:
                if s.kind == "indicator":
                    domains.append(2)
                else:
                    domains.append(
                        pair_schema.table(s.table).column(s.column).domain_size
                    )
            self.pair_spns[child] = SPN(
                data,
                domains,
                [s.name for s in specs],
                min_rows=min_rows,
                corr_threshold=threshold,
                seed=seed + 1,
            )
            self.pair_sizes[child] = pair_counts.full_join_size

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.root_spn.size_bytes + sum(
            s.size_bytes for s in self.pair_spns.values()
        )

    def _regions(self, query: Query, tables: Sequence[str]) -> Dict[str, Region]:
        regions: Dict[str, Region] = {}
        for pred in query.predicates:
            if pred.table not in tables:
                continue
            name = f"{pred.table}.{pred.column}"
            region = Region.from_predicate(
                pred.code_region(self.schema.table(pred.table))
            )
            regions[name] = regions[name].intersect(region) if name in regions else region
        return regions

    def estimate(self, query: Query, **_ignored) -> float:
        query.validate(self.schema)
        root = self.schema.root
        in_query = set(query.tables)
        children = [t for t in query.tables if t != root]
        if root not in in_query:
            if len(children) != 1:
                raise QueryError(
                    "DeepDBEstimator handles fact-anchored queries or single "
                    "dimension tables only"
                )
            child = children[0]
            regions = self._regions(query, [child])
            regions[f"__in_{child}"] = Region.interval(1, 1)
            return self.pair_sizes[child] * self.pair_spns[child].prob(regions)

        root_regions = self._regions(query, [root])
        p_root = self.root_spn.prob(root_regions)
        card_root = self.schema.table(root).n_rows * p_root
        if not children:
            return card_root
        if card_root <= 0:
            return 0.0
        out = card_root
        for child in children:
            regions = self._regions(query, [root, child])
            regions[f"__in_{child}"] = Region.interval(1, 1)
            joint = self.pair_sizes[child] * self.pair_spns[child].prob(regions)
            out *= joint / card_root
        return max(out, 0.0)

    def estimate_batch(self, queries: Sequence[Query], **_ignored) -> np.ndarray:
        """Sequential-equivalent batch estimates (the model is deterministic)."""
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)
