"""Index-Based Join Sampling (Leis et al. [20]).

Two roles, as in the paper:

* :class:`IBJSEstimator` — the baseline cardinality estimator: walk the
  query's join tree from a base-table sample, looking up join partners via
  indexes and executing filters on the fly; intermediate samples are capped,
  scaling the estimate multiplicatively. Its samples are neither uniform nor
  independent w.r.t. the join distribution (§4.2), which is why it collapses
  at the tail for low-selectivity queries (empty intermediate samples).
* :class:`BiasedJoinSampler` — the same uniform-partner walk exposed as a
  *training* sampler for the ablation (Table 5 row A): it produces
  full-join-shaped tuples from a biased distribution.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.joins.counts import JoinCounts
from repro.joins.sampler import FullJoinSampler
from repro.relational.query import Query
from repro.relational.schema import JoinSchema


class IBJSEstimator:
    """Online join-sampling estimator with capped intermediate samples.

    Maintains a sample of the intermediate join result; every sample row
    represents ``weight`` real intermediate rows. Expanding along an edge
    materializes all index matches of the sampled rows (weight preserved),
    filters drop rows (weight preserved), and capping subsamples (weight
    scaled up). The estimate is ``weight * |final sample|``.
    """

    name = "IBJS"

    #: no persistent model is materialized (paper shows Size "-")
    size_bytes = None

    #: sampling needs only the live schema + indexes; always servable
    is_fitted = True

    def __init__(
        self,
        schema: JoinSchema,
        counts: Optional[JoinCounts] = None,
        max_samples: int = 2000,
        seed: int = 0,
    ):
        self.schema = schema
        self.counts = counts if counts is not None else JoinCounts(schema)
        self.max_samples = max_samples
        self._rng = np.random.default_rng(seed)

    def estimate(self, query: Query, **_ignored) -> float:
        query.validate(self.schema)
        rng = self._rng
        masks = {
            t: np.ones(self.schema.table(t).n_rows, dtype=bool) for t in query.tables
        }
        for pred in query.predicates:
            masks[pred.table] &= pred.mask(self.schema.table(pred.table))

        root = self.schema.query_root(query.tables)
        in_query = set(query.tables)
        order = self.schema.bfs_order(root=root, within=query.tables)

        n_root = self.schema.table(root).n_rows
        m = min(self.max_samples, max(n_root, 1))
        weight = n_root / m
        start = rng.choice(n_root, size=m, replace=False)
        inter: Dict[str, np.ndarray] = {root: start[masks[root][start]]}

        for tname in order:
            for edge in self.schema.child_edges(tname):
                if edge.child not in in_query:
                    continue
                parent_rows = inter[tname]
                k = len(parent_rows)
                if k == 0:
                    return 0.0
                ops = self.counts.edge_ops[edge.name]
                groups = ops.parent_group_idx[parent_rows]
                matched = [
                    ops.child_groups.rows_of_group(g) if g >= 0 else None
                    for g in groups
                ]
                counts = np.array(
                    [0 if m_ is None else len(m_) for m_ in matched], dtype=np.int64
                )
                total = int(counts.sum())
                if total == 0:
                    return 0.0
                child_rows = np.concatenate([m_ for m_ in matched if m_ is not None])
                parent_idx = np.repeat(np.arange(k), counts)
                keep = masks[edge.child][child_rows]
                child_rows, parent_idx = child_rows[keep], parent_idx[keep]
                if len(child_rows) > self.max_samples:
                    weight *= len(child_rows) / self.max_samples
                    pick = rng.choice(len(child_rows), self.max_samples, replace=False)
                    child_rows, parent_idx = child_rows[pick], parent_idx[pick]
                inter = {t: arr[parent_idx] for t, arr in inter.items()}
                inter[edge.child] = child_rows
        final = len(next(iter(inter.values())))
        return weight * final

    def estimate_batch(self, queries, **_ignored) -> np.ndarray:
        """Per-query walks, in order, off the shared generator stream.

        Equivalent to calling :meth:`estimate` sequentially on the same
        instance (the walks consume ``self._rng`` in query order), which
        is the strongest equivalence a stochastic sampler can offer.
        """
        return np.array([self.estimate(q) for q in queries], dtype=np.float64)


class BiasedJoinSampler(FullJoinSampler):
    """IBJS-style biased sampler with the FullJoinSampler interface.

    Samples the root uniformly over its rows and each child uniformly among
    the parent's join partners, ignoring join counts entirely; parents with
    no partner take the virtual NULL tuple, and orphan fragments are never
    produced. Relative to the true full-join distribution this under-weights
    high-fanout subtrees — the systematic bias ablated in Table 5 (A).
    """

    def _fill_matrix(self, matrix, rng):
        m = len(matrix)
        n_root = self.schema.table(self.schema.root).n_rows
        matrix[:, self._tindex[self.schema.root]] = rng.integers(0, n_root, size=m)
        for edge in self._edges_topdown:
            ops = self.counts.edge_ops[edge.name]
            parents = matrix[:, self._tindex[edge.parent]]
            child = np.full(m, -1, dtype=np.int64)
            real = parents >= 0
            groups = np.where(real, ops.parent_group_idx[np.maximum(parents, 0)], -1)
            hit = groups >= 0
            if hit.any():
                starts = ops.child_groups.offsets[:-1][groups[hit]]
                ends = ops.child_groups.offsets[1:][groups[hit]]
                pick = starts + (rng.random(int(hit.sum())) * (ends - starts)).astype(
                    np.int64
                )
                child[hit] = ops.child_groups.row_ids[np.minimum(pick, ends - 1)]
            matrix[:, self._tindex[edge.child]] = child
