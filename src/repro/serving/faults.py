"""Deterministic fault injection for the serving stack (chaos harness).

The PR 3-8 stack promises a lot under failure — dead workers respawn and
fail their shards fast, failed refreshes park and the old model keeps
serving, flusher death chains a typed error into every stranded future.
Nothing *proved* those contracts compose under concurrent faults. This
module injects failures at named seams, deterministically, so chaos tests
and ``bench_chaos_resilience.py`` can replay the exact same fault storm
from one seed.

Design:

* a :class:`FaultPlan` is a picklable value object: one seed plus a
  tuple of :class:`FaultSpec` (site name, probability or explicit hit
  schedule, fire cap, kind);
* a :class:`FaultInjector` executes a plan. Each site gets its own
  counter and its own ``np.random.default_rng`` stream derived from
  ``(seed, site, scope)``, so whether the k-th hit of a site fires is a
  pure function of the plan — independent of how hits at *other* sites
  interleave across threads;
* production code never imports a plan. Seams guard with
  ``inj = faults.get_active()`` / ``if inj is not None`` — a plain module
  global read when no plan is installed, so the default hot path pays one
  attribute load and a ``None`` check, nothing else;
* worker processes inherit the parent's plan: :class:`WorkerPool` ships
  the plan inside each model payload and ``_worker_main`` installs it
  with a per-slot scope, so a plan's worker-site streams are deterministic
  per worker slot across respawns.

Sites threaded through the stack (see ``docs/resilience.md``):

==========================  ================================================
site                        seam
==========================  ================================================
``scheduler.flush``         inside the flusher's per-group try (fails the
                            batch futures, not the flusher thread)
``worker.dispatch``         parent side, before shards are assigned
``worker.attach``           worker side, before a model payload installs
``worker.batch``            worker side, before a batch executes
``worker.crash``            worker side; ``kind="crash"`` kills the process
``registry.load``           before a lazy artifact load
``registry.swap``           at the top of ``ModelRegistry.swap``
``refresher.train``         inside ``BackgroundRefresher._apply``'s try
``persistence.save``        after the temp file is written, before the
                            atomic replace (proves torn saves leave the
                            previous artifact intact)
``persistence.load``        at the top of ``load_model``
``http.connection``         per request; ``kind="disconnect"`` makes the
                            server abort the connection mid-request
==========================  ================================================
"""

from __future__ import annotations

import os
import signal
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import InjectedFaultError, ServingError

#: Spec kinds: "error" raises InjectedFaultError at the seam, "crash"
#: kills the current process (worker sites only; SIGKILL where available),
#: "disconnect" returns the fired spec for the seam to interpret (the HTTP
#: server aborts the connection).
_KINDS = ("error", "crash", "disconnect")


@dataclass(frozen=True)
class FaultSpec:
    """One site's failure behavior inside a :class:`FaultPlan`.

    Exactly one of ``probability`` / ``at`` selects hits: ``probability``
    draws the site's k-th hit from its seeded uniform stream; ``at`` fires
    on the exact (0-based) hit indices listed. ``after`` skips the first N
    hits entirely (warmup), and ``max_fires`` caps total fires.
    """

    site: str
    probability: Optional[float] = None
    at: Tuple[int, ...] = ()
    max_fires: Optional[int] = None
    after: int = 0
    kind: str = "error"
    message: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "at", tuple(self.at))
        if not self.site:
            raise ServingError("FaultSpec.site must be non-empty")
        if (self.probability is None) == (not self.at):
            raise ServingError(
                f"FaultSpec({self.site!r}) needs exactly one of probability= or at="
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ServingError(
                f"FaultSpec({self.site!r}) probability must be within [0, 1]"
            )
        if any(i < 0 for i in self.at):
            raise ServingError(f"FaultSpec({self.site!r}) at= indices must be >= 0")
        if self.max_fires is not None and self.max_fires < 1:
            raise ServingError(f"FaultSpec({self.site!r}) max_fires must be >= 1")
        if self.after < 0:
            raise ServingError(f"FaultSpec({self.site!r}) after must be >= 0")
        if self.kind not in _KINDS:
            raise ServingError(
                f"FaultSpec({self.site!r}) kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """Seed + specs: everything needed to replay a fault storm exactly.

    Picklable by construction (tuples of frozen dataclasses), so the
    worker pool can ship it to spawned processes inside model payloads.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen = set()
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ServingError(
                    f"FaultPlan specs must be FaultSpec, got {type(spec).__name__}"
                )
            if spec.site in seen:
                raise ServingError(f"duplicate FaultSpec for site {spec.site!r}")
            seen.add(spec.site)

    def spec(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def schedule(self, site: str, n: int, scope: str = "") -> List[int]:
        """The hit indices (0-based) at which ``site`` fires among its first
        ``n`` hits — a pure function of (plan, site, scope), used to assert
        that one seed reproduces the identical fault schedule twice."""
        return FaultInjector(self, scope=scope).preview(site, n)


def _site_stream(seed: int, site: str, scope: str) -> np.random.Generator:
    """One uniform stream per (plan seed, site, scope) — interleaving-proof."""
    return np.random.default_rng(
        [seed, zlib.crc32(site.encode("utf-8")), zlib.crc32(scope.encode("utf-8"))]
    )


@dataclass
class _SiteState:
    spec: FaultSpec
    rng: np.random.Generator
    hits: int = 0
    fires: int = 0
    uniforms: List[float] = field(default_factory=list)


class FaultInjector:
    """Executes a :class:`FaultPlan`; thread-safe; one per process.

    ``scope`` namespaces the per-site random streams (the parent process
    uses ``""``, worker slot ``i`` uses ``"worker-{i}"``), so the same plan
    yields independent — but individually deterministic — schedules per
    process.
    """

    def __init__(self, plan: FaultPlan, *, scope: str = ""):
        self.plan = plan
        self.scope = scope
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {
            spec.site: _SiteState(spec, _site_stream(plan.seed, spec.site, scope))
            for spec in plan.specs
        }
        #: (site, hit_index) per fire, in fire order (telemetry only; the
        #: deterministic schedule contract is per-site, via preview()).
        self.log: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    def check(self, site: str) -> Optional[FaultSpec]:
        """Count one hit at ``site``; fire its spec if due.

        Returns None when the site is not in the plan or did not fire.
        ``kind="error"`` raises :class:`InjectedFaultError`; ``"crash"``
        kills the process; ``"disconnect"`` returns the spec for the seam
        to interpret.
        """
        state = self._sites.get(site)
        if state is None:
            return None
        with self._lock:
            k = state.hits
            state.hits += 1
            fired = self._decide(state, k)
            if fired:
                state.fires += 1
                self.log.append((site, k))
        if not fired:
            return None
        spec = state.spec
        if spec.kind == "crash":
            self._crash()
        if spec.kind == "error":
            raise InjectedFaultError(
                spec.message
                or f"injected fault at {site!r} (hit {k}, seed {self.plan.seed})"
            )
        return spec

    def _decide(self, state: _SiteState, k: int) -> bool:
        spec = state.spec
        # Draw the k-th uniform even for scheduled/warmup hits so the
        # stream position stays a pure function of the hit index.
        while len(state.uniforms) <= k:
            state.uniforms.append(float(state.rng.random()))
        if k < spec.after:
            return False
        if spec.max_fires is not None and state.fires >= spec.max_fires:
            return False
        if spec.at:
            return k in spec.at
        return state.uniforms[k] < spec.probability

    @staticmethod
    def _crash() -> None:  # pragma: no cover - the worker dies here
        try:
            os.kill(os.getpid(), signal.SIGKILL)
        except (AttributeError, OSError):
            os._exit(137)

    # ------------------------------------------------------------------
    def preview(self, site: str, n: int) -> List[int]:
        """Fire indices among the first ``n`` hits of ``site``, without
        counting hits or firing — a fresh replay of the site's stream."""
        spec = self.plan.spec(site)
        if spec is None:
            return []
        rng = _site_stream(self.plan.seed, site, self.scope)
        uniforms = rng.random(n) if n else np.zeros(0)
        out: List[int] = []
        for k in range(n):
            if k < spec.after:
                continue
            if spec.max_fires is not None and len(out) >= spec.max_fires:
                break
            if spec.at:
                if k in spec.at:
                    out.append(k)
            elif uniforms[k] < spec.probability:
                out.append(k)
        return out

    def stats(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {
                site: {"hits": s.hits, "fires": s.fires}
                for site, s in self._sites.items()
            }


# ----------------------------------------------------------------------
# Process-global installation (the seams' single lookup point)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None


def install(plan: Optional[FaultPlan], *, scope: str = "") -> Optional[FaultInjector]:
    """Install ``plan`` process-wide (None uninstalls); returns the injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan, scope=scope) if plan is not None else None
    return _ACTIVE


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def get_active() -> Optional[FaultInjector]:
    """The installed injector, or None (the zero-cost default)."""
    return _ACTIVE


@contextmanager
def injected(plan: FaultPlan, *, scope: str = ""):
    """Context manager: install a plan, yield its injector, uninstall."""
    injector = install(plan, scope=scope)
    try:
        yield injector
    finally:
        uninstall()


__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "install",
    "uninstall",
    "get_active",
    "injected",
]
