"""Degraded-mode serving: per-model circuit breaker + fallback routing.

The paper's setting is a DBMS component: the optimizer must always get
*some* cardinality estimate. A model that cannot serve at all — poisoned
swap, crashed pool, corrupted artifact — should degrade to cheap
per-table statistics (``baselines.per_table.PerTableStatsEstimator``)
rather than surface errors to every caller.

:class:`CircuitBreaker` implements the classic three-state machine,
per served model:

* **closed** — traffic flows to the primary (scheduler/pool). Each
  infrastructure failure increments a consecutive-failure counter; each
  success resets it. At ``failures`` consecutive failures the breaker
  opens.
* **open** — the primary is skipped entirely: requests are answered by
  the registered fallback (marked ``degraded``), so a hard-down model
  costs the fallback's microseconds instead of a scheduler timeout per
  request. After ``cooldown_s`` the breaker lets exactly one probe
  through.
* **half-open** — one in-flight probe hits the primary; success closes
  the breaker, failure re-opens it and restarts the cooldown.

The breaker only *counts* by default: routing to a fallback happens in
:class:`~repro.serving.service.EstimationService` and only when one is
registered, so services without fallbacks keep their exact pre-existing
error semantics. :class:`~repro.errors.DeadlineError` (deliberate
cancellation) and :class:`~repro.errors.QueryError` (caller bug) never
count as failures and are never answered by the fallback.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro.errors import ServingError

#: allow() routing decisions.
PRIMARY = "primary"
PROBE = "probe"
FALLBACK = "fallback"

_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker with monotonic cooldown.

    ``clock`` is injectable (tests pin time); it must be monotonic.
    """

    def __init__(
        self,
        *,
        failures: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failures < 1:
            raise ServingError("failures must be >= 1")
        if cooldown_s < 0:
            raise ServingError("cooldown_s must be >= 0")
        self.failures = failures
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Telemetry (guarded writes, approximate reads).
        self.n_opens = 0
        self.n_probes = 0
        self.n_fallback_routes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self) -> str:
        """Route one request: ``"primary"``, ``"probe"``, or ``"fallback"``.

        Callers routed to the primary or a probe must report the outcome
        via :meth:`record_success` / :meth:`record_failure` with the same
        ``probe`` flag.
        """
        with self._lock:
            if self._state == "closed":
                return PRIMARY
            if (
                self._state == "open"
                and self._clock() - self._opened_at >= self.cooldown_s
            ):
                self._state = "half_open"
            if self._state == "half_open" and not self._probe_in_flight:
                self._probe_in_flight = True
                self.n_probes += 1
                return PROBE
            self.n_fallback_routes += 1
            return FALLBACK

    def record_success(self, *, probe: bool = False) -> None:
        with self._lock:
            if probe:
                self._probe_in_flight = False
            self._consecutive = 0
            self._state = "closed"

    def record_failure(self, *, probe: bool = False) -> None:
        with self._lock:
            if probe:
                self._probe_in_flight = False
            if probe or self._state == "half_open":
                self._reopen_locked()
                return
            if self._state == "open":
                return
            self._consecutive += 1
            if self._consecutive >= self.failures:
                self._reopen_locked()

    def _reopen_locked(self) -> None:
        self._state = "open"
        self._consecutive = 0
        self._opened_at = self._clock()
        self.n_opens += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "state": float(_STATE_CODES[self._state]),
                "consecutive_failures": float(self._consecutive),
                "opens": float(self.n_opens),
                "probes": float(self.n_probes),
                "fallback_routes": float(self.n_fallback_routes),
            }


__all__ = ["CircuitBreaker", "PRIMARY", "PROBE", "FALLBACK"]
