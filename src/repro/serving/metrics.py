"""Tiny Prometheus-text-format metrics registry (stdlib only).

The HTTP front end (:mod:`repro.serving.http`) exposes ``GET /metrics``;
this module provides the three instrument kinds it needs — monotonic
:class:`Counter`, :class:`Gauge`, cumulative-bucket :class:`Histogram` —
rendered in the Prometheus text exposition format 0.0.4. No external
client library (the container pins its dependency set), no background
threads, and exact integer-preserving rendering so the closed-loop load
generator can reconcile its accepted/shed/error tallies against the
scraped counters *exactly*, not approximately.

All instruments are label-aware: ``counter.inc(tenant="a", code="200")``
keeps one monotonic series per label combination. Mutation is lock-guarded
(requests resolve on scheduler/pool threads while the asyncio loop serves
scrapes), and :meth:`MetricsRegistry.render` snapshots under the same lock
so a scrape never observes a half-applied update.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ServingError

#: Default latency buckets (seconds): 1ms .. 10s, roughly log-spaced.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(key) + ([extra] if extra is not None else [])
    if not items:
        return ""
    body = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Integers render as integers so counter reconciliation is exact."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared bookkeeping: name, help text, per-labelset storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        self.name = name
        self.help_text = help_text
        self._lock = lock
        self._series: Dict[_LabelKey, float] = {}

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Instrument):
    """Monotonically increasing per-labelset counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ServingError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_format_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Gauge(_Instrument):
    """Set/add instantaneous per-labelset value."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{_format_labels(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ServingError(f"histogram {self.name} needs at least one bucket")
        # Per labelset: (per-bucket counts + +Inf slot, sum).
        self._hist: Dict[_LabelKey, Tuple[List[int], float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            counts, total = self._hist.get(key, (None, 0.0))
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1  # +Inf
            self._hist[key] = (counts, total + float(value))

    def count(self, **labels: str) -> int:
        with self._lock:
            entry = self._hist.get(_label_key(labels))
            return entry[0][-1] if entry else 0

    def quantile(self, q: float, **labels: str) -> float:
        """Upper-bound estimate of the q-quantile from bucket boundaries."""
        with self._lock:
            entry = self._hist.get(_label_key(labels))
            if entry is None or entry[0][-1] == 0:
                return 0.0
            counts, _ = entry
            rank = q * counts[-1]
            for i, bound in enumerate(self.buckets):
                if counts[i] >= rank:
                    return bound
            return math.inf

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            for key in sorted(self._hist):
                counts, total = self._hist[key]
                for bound, count in zip(self.buckets, counts):
                    lines.append(
                        f"{self.name}_bucket"
                        f"{_format_labels(key, ('le', _format_value(bound)))} "
                        f"{count}"
                    )
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, ('le', '+Inf'))} "
                    f"{counts[-1]}"
                )
                lines.append(
                    f"{self.name}_sum{_format_labels(key)} {_format_value(total)}"
                )
                lines.append(f"{self.name}_count{_format_labels(key)} {counts[-1]}")
        return lines


class MetricsRegistry:
    """Named instruments + one-shot text rendering.

    Instrument getters are idempotent (same name returns the same object)
    so request handlers can look instruments up by name without plumbing
    references around; re-registering a name as a different kind is an
    error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}
        self._order: List[str] = []

    def _get(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ServingError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            instrument = cls(name, help_text, threading.Lock(), **kwargs)
            self._instruments[name] = instrument
            self._order.append(name)
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(Gauge, name, help_text)

    def histogram(
        self, name: str, help_text: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help_text, buckets=buckets)

    def render(self) -> str:
        with self._lock:
            instruments = [self._instruments[name] for name in self._order]
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


def parse_samples(text: str) -> Dict[str, float]:
    """Parse Prometheus text back to ``{name{labels}: value}`` (tests/bench).

    Inverse of :meth:`MetricsRegistry.render` for reconciliation checks;
    label order inside ``{}`` is preserved as rendered (sorted by name).
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        value = math.inf if value_part == "+Inf" else float(value_part)
        samples[name_part] = value
    return samples


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_samples",
]
