"""Streaming updates: incremental ingest, drift monitoring, background refresh.

PR 3/4 built a serving layer over a *frozen* model; this module converts the
paper's offline §7.6 update experiments into a live subsystem so the
estimator stays accurate while the data changes under load:

* :class:`StreamingIngestor` — accepts row-batch appends against a live
  :class:`~repro.relational.schema.JoinSchema`. Every append produces a new
  immutable, versioned snapshot sharing dictionary code spaces with the
  seed schema (the §7.6 contract), so one model vocabulary covers the whole
  stream and the vectorized
  :meth:`~repro.joins.sampler.FullJoinSampler.for_snapshot` fragment
  routing applies to each snapshot.
* :class:`DriftMonitor` — compares per-column code-frequency histograms of
  the current snapshot against the snapshot the serving model was trained
  on (total-variation divergence), tracks the ingested-row fraction, and
  optionally a rolling served-estimate q-error staleness signal.
* :class:`RefreshPolicy` — thresholds mapping a :class:`DriftReport` to a
  strategy: ``none``, ``fast`` (the paper's ~1%-budget incremental
  retrain), or ``retrain`` (from scratch), reusing the
  :mod:`repro.core.refresh` strategy functions the offline Table 6
  pipeline runs.
* :class:`BackgroundRefresher` — a daemon thread polling the ingestor,
  asking the policy, and driving
  :meth:`~repro.serving.registry.ModelRegistry.refresh` /
  :meth:`~repro.serving.registry.ModelRegistry.swap` without ever blocking
  in-flight :class:`~repro.serving.scheduler.MicroBatchScheduler` traffic:
  training happens on a clone, the swap is one reference assignment, the
  version bump invalidates the plan-keyed result cache, and the clone's
  rebuilt engine discards compiled kernels folded from pre-refresh weights
  (fresh ones fold on swap via ``precompile``). A failed refresh leaves
  the old model serving and is retried only when new data arrives.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.refresh import FAST_REFRESH_FRACTION, full_retrain
from repro.errors import DataError, ServingError
from repro.relational.schema import JoinSchema
from repro.relational.table import Table
from repro.serving import faults


class StreamingIngestor:
    """Versioned append-only ingest against a live join schema.

    Appends arrive per table (a :class:`Table` of new rows, or a plain
    ``{column: values}`` mapping) and are re-encoded against the live
    dictionaries via :meth:`Table.concat`. With ``strict_dictionaries``
    (default), a batch introducing values outside the seed dictionaries is
    rejected — the §7.6 setup fixes code spaces upfront so fast incremental
    refreshes stay valid; pass ``False`` to let dictionaries grow, which
    the refresh policy then treats as forced full retrains (the model
    vocabulary no longer matches).

    Thread-safe: readers get immutable ``(schema, version)`` pairs via
    :meth:`snapshot` while writers append; the serving layer never sees a
    half-applied batch because each ingest installs a fully built schema
    under one reference assignment.
    """

    def __init__(self, schema: JoinSchema, *, strict_dictionaries: bool = True):
        self.strict_dictionaries = strict_dictionaries
        self._schema = schema
        self._version = 0
        self._lock = threading.Lock()
        self.baseline_rows = {n: t.n_rows for n, t in schema.tables.items()}
        self.rows_ingested = 0
        self.batches_ingested = 0

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[JoinSchema, int]:
        """The current immutable ``(schema, data_version)`` pair."""
        with self._lock:
            return self._schema, self._version

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    # ------------------------------------------------------------------
    def ingest(self, table: Table) -> int:
        """Append one table's row batch; returns the new data version."""
        return self.ingest_many([table])

    def ingest_rows(self, table_name: str, rows: Mapping[str, Iterable]) -> int:
        """Append raw ``{column: values}`` rows to ``table_name``."""
        return self.ingest(Table.from_dict(table_name, rows))

    def ingest_many(
        self, tables: Iterable[Table] | Mapping[str, Table]
    ) -> int:
        """Append row batches to several tables as ONE versioned ingest.

        A multi-table delta (e.g. a §7.6 partition: new ``title`` rows plus
        their ``cast_info``/``movie_info`` children) lands atomically: no
        snapshot ever contains the parent rows without their children.
        """
        batch = list(tables.values()) if isinstance(tables, Mapping) else list(tables)
        if not batch:
            raise DataError("ingest batch is empty")
        with self._lock:
            schema = self._schema
            appended = 0
            for delta in batch:
                live = schema.table(delta.name)
                merged = live.concat(delta)
                if self.strict_dictionaries:
                    for col in live.column_names:
                        if (
                            merged.column(col).domain_size
                            != live.column(col).domain_size
                        ):
                            raise DataError(
                                f"ingest batch for {delta.name!r} introduces new "
                                f"values in column {col!r}; snapshots must share "
                                "dictionaries (strict_dictionaries=True)"
                            )
                schema = schema.replace_table(merged)
                appended += delta.n_rows
            self._schema = schema
            self._version += 1
            self.rows_ingested += appended
            self.batches_ingested += 1
            return self._version

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "version": self._version,
                "batches_ingested": self.batches_ingested,
                "rows_ingested": self.rows_ingested,
                "ingested_fraction": self.rows_ingested
                / max(sum(self.baseline_rows.values()), 1),
            }


# ----------------------------------------------------------------------
# Drift monitoring
# ----------------------------------------------------------------------
@dataclass
class DriftReport:
    """One comparison of the live snapshot against the served model's data."""

    data_version: int
    baseline_version: int
    ingested_rows: int
    baseline_rows: int
    #: Per-column total-variation distance between normalized
    #: code-frequency histograms, keyed by ``"table.column"``.
    column_divergence: Dict[str, float] = field(default_factory=dict)
    #: Rolling median q-error of served estimates against reported truths
    #: (1.0 until feedback is recorded).
    staleness_qerror: float = 1.0
    #: Whether the snapshot grew any column dictionary past the baseline's
    #: (only possible with ``strict_dictionaries=False`` ingest).
    domains_changed: bool = False

    @property
    def ingested_fraction(self) -> float:
        return self.ingested_rows / max(self.baseline_rows, 1)

    @property
    def max_divergence(self) -> float:
        return max(self.column_divergence.values(), default=0.0)

    @property
    def worst_column(self) -> Optional[str]:
        if not self.column_divergence:
            return None
        return max(self.column_divergence, key=self.column_divergence.get)

    @property
    def is_stale(self) -> bool:
        """Any data movement at all since the baseline snapshot."""
        return self.data_version != self.baseline_version


class DriftMonitor:
    """Tracks distribution drift between the served and live snapshots.

    The *baseline* is the snapshot the serving model was last (re)trained
    on; :meth:`rebase` moves it after each successful refresh. Divergence is
    the total-variation distance ``0.5 * Σ|p - q|`` between per-column code
    histograms — 0 for identical distributions, 1 for disjoint support —
    computed over dictionary codes (NULL included), so it is row-order
    invariant and cheap (one ``bincount`` per tracked column).
    """

    def __init__(
        self,
        baseline: JoinSchema,
        *,
        columns: Optional[Sequence[str]] = None,
        baseline_version: int = 0,
        qerror_window: int = 64,
    ):
        if columns is None:
            columns = [
                f"{tname}.{cname}"
                for tname, table in baseline.tables.items()
                for cname in table.column_names
            ]
        self.columns = list(columns)
        self._qerrors: deque = deque(maxlen=qerror_window)
        self._lock = threading.Lock()
        self.rebase(baseline, baseline_version)

    # ------------------------------------------------------------------
    @staticmethod
    def _histogram(schema: JoinSchema, full_name: str) -> np.ndarray:
        tname, _, cname = full_name.partition(".")
        column = schema.table(tname).column(cname)
        counts = np.bincount(column.codes, minlength=column.domain_size)
        total = counts.sum()
        return counts / total if total else counts.astype(np.float64)

    def rebase(self, baseline: JoinSchema, version: int) -> None:
        """Adopt a new baseline (after a successful model refresh)."""
        histograms = {c: self._histogram(baseline, c) for c in self.columns}
        rows = sum(t.n_rows for t in baseline.tables.values())
        with self._lock:
            self._baseline_histograms = histograms
            self._baseline_rows = rows
            self._baseline_version = version
            self._divergence_cache = None
            self._qerrors.clear()

    @property
    def baseline_version(self) -> int:
        with self._lock:
            return self._baseline_version

    # ------------------------------------------------------------------
    def record_qerror(self, qerror: float) -> None:
        """Feed one served-estimate staleness observation (q-error >= 1)."""
        with self._lock:
            self._qerrors.append(float(qerror))

    def observe(self, schema: JoinSchema, version: int) -> DriftReport:
        """Compare the live snapshot against the baseline.

        Histograms are recomputed only when the snapshot version moved
        (snapshots are immutable per version, so the poll loop's repeated
        observes between ingests cost O(1), not a full data scan); the
        rolling staleness q-error is always read fresh.
        """
        with self._lock:
            baseline_histograms = self._baseline_histograms
            baseline_rows = self._baseline_rows
            baseline_version = self._baseline_version
            staleness = (
                float(np.median(self._qerrors)) if self._qerrors else 1.0
            )
            cached = self._divergence_cache
        if cached is not None and cached[0] == version:
            _, divergence, domains_changed, rows = cached
        else:
            divergence = {}
            domains_changed = False
            for name, base_hist in baseline_histograms.items():
                hist = self._histogram(schema, name)
                if len(hist) != len(base_hist):
                    domains_changed = True
                    width = max(len(hist), len(base_hist))
                    base_hist = np.pad(base_hist, (0, width - len(base_hist)))
                    hist = np.pad(hist, (0, width - len(hist)))
                divergence[name] = 0.5 * float(np.abs(hist - base_hist).sum())
            rows = sum(t.n_rows for t in schema.tables.values())
            with self._lock:
                # Drop stale cache entries from a concurrent rebase: only
                # publish when the baseline we diffed against is current.
                if self._baseline_version == baseline_version:
                    self._divergence_cache = (
                        version, divergence, domains_changed, rows
                    )
        return DriftReport(
            data_version=version,
            baseline_version=baseline_version,
            ingested_rows=max(rows - baseline_rows, 0),
            baseline_rows=baseline_rows,
            column_divergence=divergence,
            staleness_qerror=staleness,
            domains_changed=domains_changed,
        )


# ----------------------------------------------------------------------
# Refresh policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RefreshPolicy:
    """Thresholds mapping a :class:`DriftReport` to a refresh strategy.

    A refresh triggers when ANY enabled signal reaches its threshold
    (inclusive — a report sitting *exactly at* a threshold triggers):
    per-column divergence, ingested-row fraction, or the rolling staleness
    q-error. Triggered refreshes run the paper's ``fast`` strategy unless
    the drift is severe (``retrain_drift_threshold``) or dictionaries grew,
    which force a full retrain.
    """

    #: Max per-column TV divergence before refreshing (None disables).
    drift_threshold: Optional[float] = 0.05
    #: Fraction of baseline rows ingested before refreshing (None disables).
    ingest_threshold: Optional[float] = 0.10
    #: Rolling served q-error median before refreshing (None disables).
    qerror_threshold: Optional[float] = None
    #: Divergence at which incremental training is hopeless: retrain.
    retrain_drift_threshold: float = 0.5
    #: Incremental budget, as a fraction of the config's training tuples.
    fast_fraction: float = FAST_REFRESH_FRACTION
    #: Duty cycle for background gradient steps (0 < duty <= 1): the fast
    #: refresh's trainer sleeps ``(1-duty)/duty`` of its busy time so
    #: serving threads keep the GIL. Pacing only — with a single-threaded
    #: sampler the refreshed weights are bitwise those of an unthrottled
    #: run. None/1.0 = full speed.
    train_duty: Optional[float] = 0.3
    #: Floor between consecutive refreshes (seconds): back-pressure against
    #: refresh storms when every poll crosses a threshold.
    min_interval_seconds: float = 0.0

    def decide(self, report: DriftReport) -> str:
        """``"none"``, ``"fast"``, or ``"retrain"`` for this report."""
        if report.domains_changed:
            return "retrain"
        triggered = False
        if report.is_stale:
            if (
                self.drift_threshold is not None
                and report.max_divergence >= self.drift_threshold
            ):
                triggered = True
            if (
                self.ingest_threshold is not None
                and report.ingested_fraction >= self.ingest_threshold
            ):
                triggered = True
        # The staleness q-error triggers on its own, even with no new data:
        # degraded serving quality warrants extra gradient steps on the
        # current snapshot (rebase clears the rolling window afterwards,
        # and min_interval_seconds bounds any storm).
        if (
            self.qerror_threshold is not None
            and report.staleness_qerror >= self.qerror_threshold
        ):
            triggered = True
        if not triggered:
            return "none"
        if report.max_divergence >= self.retrain_drift_threshold:
            return "retrain"
        return "fast"


# ----------------------------------------------------------------------
# Background refresher
# ----------------------------------------------------------------------
@dataclass
class RefreshEvent:
    """One attempted refresh (successful or failed)."""

    strategy: str
    data_version: int
    model_version: Optional[int] = None
    seconds: float = 0.0
    report: Optional[DriftReport] = None
    error: Optional[BaseException] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


class BackgroundRefresher:
    """Drives registry refreshes off a drift monitor, never blocking serving.

    ``serving`` is an :class:`~repro.serving.service.EstimationService` or a
    bare :class:`~repro.serving.registry.ModelRegistry`; ``name`` is the
    model to keep fresh. The poll loop reads the ingestor's latest
    snapshot, asks the policy, and applies ``fast`` via
    ``registry.refresh`` (clone → incremental train → atomic swap) or
    ``retrain`` via :func:`repro.core.refresh.full_retrain` + ``swap``. The
    registry's version bump makes every scheduler's plan-keyed result cache
    invalidate itself, and the swapped-in estimator carries freshly folded
    compiled kernels — in-flight batches finish on the old model object
    untouched, so no request ever observes a torn model.

    Failure containment: an exception inside a refresh is recorded as a
    failed :class:`RefreshEvent` (see :attr:`history` / :attr:`last_error`)
    and the old model keeps serving; the same data version is not retried
    until new data arrives, so a poisoned snapshot cannot cause a retry
    storm.
    """

    def __init__(
        self,
        serving,
        name: str,
        ingestor: StreamingIngestor,
        *,
        policy: Optional[RefreshPolicy] = None,
        monitor: Optional[DriftMonitor] = None,
        poll_interval: float = 0.05,
        on_event: Optional[Callable[[RefreshEvent], None]] = None,
    ):
        registry = getattr(serving, "registry", serving)
        if name not in registry:
            raise ServingError(f"unknown model {name!r}; register it first")
        self.registry = registry
        self.name = name
        self.ingestor = ingestor
        self.policy = policy if policy is not None else RefreshPolicy()
        if monitor is None:
            schema, version = ingestor.snapshot()
            monitor = DriftMonitor(schema, baseline_version=version)
        self.monitor = monitor
        self.poll_interval = poll_interval
        self.on_event = on_event
        self.history: List[RefreshEvent] = []
        self.last_error: Optional[BaseException] = None
        self._refresh_lock = threading.Lock()
        self._history_lock = threading.Lock()
        self._failed_version: Optional[int] = None
        self._last_finish = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundRefresher":
        """Spawn the daemon poll loop; idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name=f"refresher-{self.name}", daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the poll loop; a refresh already in flight completes."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "BackgroundRefresher":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.poll_once()
            except Exception as exc:  # defensive: the loop must survive
                self.last_error = exc
            self._stop.wait(self.poll_interval)

    # ------------------------------------------------------------------
    def poll_once(self) -> Optional[RefreshEvent]:
        """One monitor/policy/refresh cycle; the unit tests drive this directly.

        Returns the refresh event if one was attempted, else None.
        """
        schema, version = self.ingestor.snapshot()
        if version == self._failed_version:
            return None  # wait for new data before retrying a failed version
        if (
            version == self.monitor.baseline_version
            and self.policy.qerror_threshold is None
        ):
            return None  # nothing ingested and no staleness signal to check
        if (
            self.policy.min_interval_seconds > 0
            and time.monotonic() - self._last_finish < self.policy.min_interval_seconds
        ):
            return None
        report = self.monitor.observe(schema, version)
        strategy = self.policy.decide(report)
        if strategy == "none":
            return None
        return self._apply(strategy, schema, version, report)

    def refresh_now(self, strategy: str = "fast") -> RefreshEvent:
        """Force a refresh onto the current snapshot, bypassing the policy."""
        schema, version = self.ingestor.snapshot()
        report = self.monitor.observe(schema, version)
        return self._apply(strategy, schema, version, report)

    # ------------------------------------------------------------------
    def _apply(
        self, strategy: str, schema: JoinSchema, version: int, report: DriftReport
    ) -> RefreshEvent:
        with self._refresh_lock:
            event = RefreshEvent(
                strategy=strategy,
                data_version=version,
                report=report,
                started_at=time.monotonic(),
            )
            try:
                # Chaos seam: inside the try, so an injected fault follows
                # the contract under test — a failed RefreshEvent, the old
                # model keeps serving, no retry until data moves on.
                injector = faults.get_active()
                if injector is not None:
                    injector.check("refresher.train")
                if strategy == "fast":
                    event.model_version = self.registry.refresh(
                        self.name,
                        schema,
                        fraction=self.policy.fast_fraction,
                        data_version=version,
                        throttle=self.policy.train_duty,
                    )
                elif strategy == "retrain":
                    config = self.registry.get(self.name).config
                    outcome = full_retrain(schema, config, data_version=version)
                    event.model_version = self.registry.swap(
                        self.name, outcome.estimator
                    )
                else:
                    raise ServingError(
                        f"unknown refresh strategy {strategy!r}; "
                        "expected 'fast' or 'retrain'"
                    )
                self.monitor.rebase(schema, version)
                self._failed_version = None
            except Exception as exc:
                # The old model keeps serving; retry only once data moves on.
                event.error = exc
                self.last_error = exc
                self._failed_version = version
            event.finished_at = time.monotonic()
            event.seconds = event.finished_at - event.started_at
            self._last_finish = event.finished_at
        with self._history_lock:
            self.history.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._history_lock:
            done = [e for e in self.history if e.ok]
            failed = [e for e in self.history if not e.ok]
            return {
                "refreshes": len(done),
                "failures": len(failed),
                "last_data_version": done[-1].data_version if done else 0,
                "last_refresh_seconds": done[-1].seconds if done else 0.0,
            }


__all__ = [
    "StreamingIngestor",
    "DriftMonitor",
    "DriftReport",
    "RefreshPolicy",
    "RefreshEvent",
    "BackgroundRefresher",
]
