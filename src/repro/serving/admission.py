"""Request admission: per-tenant quotas, bounded queue, deadline shedding.

The HTTP front end admits a request *before* it may consume scheduler
batch slots; this module is the gatekeeper. Three independent checks, in
order, each with its own rejection status so clients can react correctly:

1. **tenant resolution** — unknown tenants are rejected (``403``) when the
   controller is strict; otherwise they fall back to the default quota.
2. **token-bucket quota** (``429``) — each tenant owns a bucket refilled at
   ``rate`` tokens/second up to ``burst``; a request costs one token per
   query it carries, so a 64-query batch draws 64 tokens. Rejections carry
   the exact ``Retry-After`` the bucket needs to cover the request.
3. **bounded queue + deadline shedding** (``503``) — at most ``max_queue``
   requests may be in flight behind the admission gate, and a request
   carrying a deadline is shed up front when the controller predicts it
   cannot be met: predicted completion is the EWMA of recent request
   latencies scaled by instantaneous occupancy,
   ``ewma * (1 + in_flight / max_queue)``. Shedding before submission is
   the whole point — a doomed request must not displace feasible ones from
   micro-batches.

The controller is deliberately model-agnostic (it never imports the
scheduler); time is injected via ``clock`` so tests drive it
deterministically. All state is lock-guarded: admission runs on the
asyncio loop while completions (:meth:`AdmissionController.release`) land
on scheduler worker threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ServingError

#: Latency EWMA smoothing factor (weight of the newest observation).
EWMA_ALPHA = 0.2


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission contract.

    ``rate`` is tokens (queries) per second; ``burst`` is the bucket
    capacity (defaults to ``rate``, i.e. up to one second of traffic may
    arrive instantaneously). ``rate=None`` disables rate limiting for the
    tenant (the bucket always admits).
    """

    name: str
    rate: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("tenant name must be non-empty")
        if self.rate is not None and self.rate <= 0:
            raise ServingError(f"tenant {self.name!r}: rate must be positive or None")
        if self.burst is not None and self.burst <= 0:
            raise ServingError(f"tenant {self.name!r}: burst must be positive")

    @property
    def capacity(self) -> Optional[float]:
        if self.rate is None:
            return None
        return self.burst if self.burst is not None else self.rate


class TokenBucket:
    """Classic token bucket; returns retry-after instead of raising.

    :meth:`acquire` atomically refills from elapsed time and either takes
    ``tokens`` (returning ``0.0``) or leaves the bucket untouched and
    returns the seconds until the deficit refills. Unlimited buckets
    (``rate=None``) always admit.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ServingError("rate must be positive (or None for unlimited)")
        self.rate = rate
        self.burst = (burst if burst is not None else rate) or 0.0
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now; 0.0 on success, else seconds to retry after."""
        if self.rate is None:
            return 0.0
        now = self._clock()
        with self._lock:
            elapsed = max(now - self._refilled_at, 0.0)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled_at = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call."""

    admitted: bool
    #: HTTP status to surface on rejection (403/429/503); 200 when admitted.
    status: int = 200
    #: Rejection class: ``tenant`` / ``rate`` / ``queue`` / ``deadline``.
    reason: str = ""
    #: Suggested client back-off in seconds (Retry-After, rounded up).
    retry_after: float = 0.0


class AdmissionController:
    """Per-tenant token buckets + one bounded in-flight queue + shedding.

    ``admit`` must be paired with ``release`` for every admitted request
    (the HTTP layer does so in a ``finally``); ``release`` feeds the
    latency EWMA that powers deadline prediction.
    """

    def __init__(
        self,
        *,
        max_queue: int = 64,
        default_quota: Optional[TenantQuota] = None,
        tenants: Tuple[TenantQuota, ...] = (),
        strict_tenants: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_queue < 1:
            raise ServingError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.strict_tenants = strict_tenants
        self._clock = clock
        self._default_quota = (
            default_quota if default_quota is not None else TenantQuota("default")
        )
        self._quotas: Dict[str, TenantQuota] = {q.name: q for q in tenants}
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._in_flight = 0
        self._ewma_latency: Optional[float] = None
        # Monotonic counters, by tenant then reason/outcome; the /metrics
        # endpoint mirrors them, the load generator reconciles against them.
        self.admitted: Dict[str, int] = {}
        self.shed: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> Optional[TenantQuota]:
        """The quota governing ``tenant``; None for unknown-and-strict."""
        quota = self._quotas.get(tenant)
        if quota is not None:
            return quota
        if self.strict_tenants:
            return None
        return TenantQuota(tenant, self._default_quota.rate, self._default_quota.burst)

    def _bucket(self, quota: TenantQuota) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(quota.name)
            if bucket is None:
                bucket = TokenBucket(quota.rate, quota.burst, clock=self._clock)
                self._buckets[quota.name] = bucket
            return bucket

    # ------------------------------------------------------------------
    def admit(
        self,
        tenant: str,
        *,
        cost: int = 1,
        deadline_s: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit or reject one request of ``cost`` queries.

        ``deadline_s`` is the remaining time the caller can wait (already
        relative); pass None for no deadline.
        """
        quota = self.quota_for(tenant)
        if quota is None:
            return self._reject(tenant, "tenant", 403, 0.0)
        wait = self._bucket(quota).acquire(float(cost))
        if wait > 0.0:
            return self._reject(tenant, "rate", 429, wait)
        with self._lock:
            ewma = self._ewma_latency
            if self._in_flight >= self.max_queue:
                reason, retry = "queue", ewma if ewma is not None else 0.05
            elif deadline_s is not None and (
                deadline_s <= 0.0
                or (
                    ewma is not None
                    and ewma * (1.0 + self._in_flight / self.max_queue) > deadline_s
                )
            ):
                reason, retry = "deadline", ewma or 0.0
            else:
                self._in_flight += 1
                self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
                return AdmissionDecision(True)
        # The bucket took this request's tokens but the queue/deadline gate
        # turned it away; refund so the gates stay independent.
        if quota.rate is not None:
            bucket = self._bucket(quota)
            with bucket._lock:
                bucket._tokens = min(bucket.burst, bucket._tokens + float(cost))
        return self._reject(tenant, reason, 503, retry)

    def release(self, latency_s: Optional[float] = None) -> None:
        """Mark one admitted request complete; feed the latency EWMA."""
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1
            if latency_s is not None:
                if self._ewma_latency is None:
                    self._ewma_latency = float(latency_s)
                else:
                    self._ewma_latency = (
                        EWMA_ALPHA * float(latency_s)
                        + (1.0 - EWMA_ALPHA) * self._ewma_latency
                    )

    def _reject(
        self, tenant: str, reason: str, status: int, retry_after: float
    ) -> AdmissionDecision:
        with self._lock:
            key = (tenant, reason)
            self.shed[key] = self.shed.get(key, 0) + 1
        return AdmissionDecision(False, status, reason, retry_after)

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def ewma_latency(self) -> Optional[float]:
        with self._lock:
            return self._ewma_latency

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "max_queue": self.max_queue,
                "ewma_latency_s": self._ewma_latency,
                "admitted": dict(self.admitted),
                "shed": {f"{t}/{r}": n for (t, r), n in self.shed.items()},
            }


__all__ = [
    "EWMA_ALPHA",
    "AdmissionController",
    "AdmissionDecision",
    "TenantQuota",
    "TokenBucket",
]
