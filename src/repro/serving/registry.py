"""Model registry: named fitted estimators with lazy load, eviction, hot-swap.

A long-lived serving process owns many estimators (one per schema, per
tenant, per snapshot generation). The registry is the single place they
live:

* **lazy load** — entries registered by artifact path (via
  :func:`repro.core.persistence.load_model`) are materialized on first
  :meth:`get` and can be dropped again under memory pressure;
* **eviction** — an optional ``budget_bytes`` bounds the summed
  ``size_bytes`` of resident models; least-recently-used *reloadable*
  entries (those backed by a path) are unloaded first, pinned in-memory
  entries never are;
* **hot-swap** — :meth:`swap` and :meth:`refresh` replace a model behind a
  name with one reference assignment and bump the entry's version, so
  readers holding the old object finish their batches untouched and result
  caches keyed on ``(name, version)`` invalidate themselves. Incremental
  refreshes train on a *copy* of the live estimator; readers are never
  blocked by gradient steps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.estimator import NeuroCard
from repro.core.refresh import clone_estimator
from repro.errors import ServingError
from repro.relational.schema import JoinSchema
from repro.serving import faults


@dataclass
class _Entry:
    """One named model slot. ``model`` is None while lazily unloaded."""

    name: str
    model: Optional[NeuroCard] = None
    path: Optional[Path] = None
    schema: Optional[JoinSchema] = None
    version: int = 0
    pinned: bool = field(default=False)
    #: Serializes lazy loads of this entry without the registry lock, so
    #: a seconds-long artifact load never stalls serving on other models.
    load_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def reloadable(self) -> bool:
        return self.path is not None

    @property
    def resident_bytes(self) -> int:
        return self.model.size_bytes if self.model is not None else 0


class ModelRegistry:
    """Thread-safe owner of named fitted estimators.

    The mutation lock only guards the registry's bookkeeping (entry dict,
    LRU order, versions) — never model inference. ``get`` returns the
    estimator object itself; a reader that obtained a model keeps using it
    even if the name is swapped or evicted mid-flight.
    """

    def __init__(self, budget_bytes: Optional[int] = None):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ServingError("budget_bytes must be positive (or None for unbounded)")
        self.budget_bytes = budget_bytes
        self._entries: Dict[str, _Entry] = {}
        self._lru: Dict[str, None] = {}  # insertion-ordered recency list
        self._lock = threading.RLock()
        self._subscribers: List[Callable[[str, NeuroCard, int], None]] = []
        self.loads = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Swap notifications
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[str, NeuroCard, int], None]) -> None:
        """Call ``callback(name, estimator, version)`` after every swap.

        Fired outside the registry lock, after the new version is visible
        to ``get_with_version``. The serving layer uses this to publish
        swapped models to worker pools *eagerly*, so a hot-swap under
        multiprocess load never serves a post-swap request from a stale
        worker version. Callback exceptions are swallowed per-callback —
        a broken observer must not break the swap.
        """
        with self._lock:
            self._subscribers.append(callback)

    def _notify_swap(self, name: str, estimator: NeuroCard, version: int) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(name, estimator, version)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, estimator: NeuroCard) -> None:
        """Register a fitted in-memory estimator under ``name`` (pinned)."""
        if not estimator.is_fitted:
            raise ServingError(f"model {name!r} must be fitted before registration")
        with self._lock:
            if name in self._entries:
                raise ServingError(f"model {name!r} already registered; use swap()")
            self._entries[name] = _Entry(name=name, model=estimator, pinned=True)
            self._touch(name)
            self._evict_over_budget()

    def register_path(self, name: str, path: str | Path, schema: JoinSchema) -> None:
        """Register a saved artifact; it is loaded lazily on first ``get``."""
        with self._lock:
            if name in self._entries:
                raise ServingError(f"model {name!r} already registered; use swap()")
            self._entries[name] = _Entry(name=name, path=Path(path), schema=schema)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> NeuroCard:
        """The current estimator for ``name`` (loading it if needed)."""
        return self.get_with_version(name)[0]

    def get_with_version(self, name: str) -> Tuple[NeuroCard, int]:
        """``(model, version)`` atomically — the pair cache keys need."""
        with self._lock:
            entry = self._entry(name)
            if entry.model is not None:
                self._touch(name)
                self._evict_over_budget(keep=name)
                return entry.model, entry.version
        # Load outside the registry lock: rebuilding counts/sampler takes
        # seconds and must not stall serving on other (resident) models.
        # The per-entry lock keeps concurrent getters from loading twice.
        with entry.load_lock:
            with self._lock:
                if entry.model is None:
                    path, schema, version = entry.path, entry.schema, entry.version
                else:
                    path = None
            loaded = None
            if path is not None:
                from repro.core.persistence import load_model  # cycle-free at call time

                injector = faults.get_active()
                if injector is not None:
                    injector.check("registry.load")
                loaded = load_model(path, schema)
                # Fold the serving kernels before the model goes live, so
                # the first request after a lazy load is already compiled.
                loaded.precompile()
                with self._lock:
                    # A swap may have raced the load; the swapped-in model
                    # wins and the stale load is discarded.
                    if entry.model is None and entry.version == version:
                        entry.model = loaded
                        self.loads += 1
        with self._lock:
            self._touch(name)
            self._evict_over_budget(keep=name)
            if entry.model is not None:
                return entry.model, entry.version
        if loaded is not None:  # unloaded again mid-call: serve the fresh copy
            return loaded, version
        return self.get_with_version(name)

    def version(self, name: str) -> int:
        with self._lock:
            return self._entry(name).version

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    @property
    def resident_bytes(self) -> int:
        """Summed ``size_bytes`` of currently loaded models."""
        with self._lock:
            return sum(e.resident_bytes for e in self._entries.values())

    # ------------------------------------------------------------------
    # Hot-swap / refresh
    # ------------------------------------------------------------------
    def swap(self, name: str, estimator: NeuroCard) -> int:
        """Atomically replace the model behind ``name``; returns the new version.

        Readers that already hold the old object are unaffected; new ``get``
        calls see the new model and version immediately.
        """
        if not estimator.is_fitted:
            raise ServingError(f"swap({name!r}) requires a fitted estimator")
        injector = faults.get_active()
        if injector is not None:
            injector.check("registry.swap")  # fails the swap; old model serves
        # Compile outside the registry lock so a slow fold never stalls
        # lookups; duck-typed test models without the hook are fine.
        precompile = getattr(estimator, "precompile", None)
        if precompile is not None:
            precompile()
        with self._lock:
            entry = self._entry(name)
            entry.model = estimator
            # A stale artifact path must not resurrect the pre-swap weights
            # after an eviction; the swapped-in model lives in memory only
            # until save_model/register_path re-associate it with a file.
            entry.path = None
            entry.schema = None
            entry.pinned = True
            entry.version += 1
            self._touch(name)
            self._evict_over_budget(keep=name)
            version = entry.version
        self._notify_swap(name, estimator, version)
        return version

    def refresh(
        self,
        name: str,
        new_schema: JoinSchema,
        train_tuples: Optional[int] = None,
        *,
        fraction: Optional[float] = None,
        data_version: Optional[int] = None,
        throttle: Optional[float] = None,
    ) -> int:
        """Incremental-update ``name`` onto a new snapshot without blocking readers.

        The live estimator keeps serving while a clone
        (:func:`repro.core.refresh.clone_estimator` — the live inference
        engine is excluded from the copy and rebuilt, so its concurrently
        mutated caches are never touched and the clone never reuses kernels
        folded from pre-update weights) ingests the snapshot and takes the
        extra gradient steps; the trained copy is then swapped in. The
        incremental budget is ``train_tuples``, or ``fraction`` of the
        config's original budget (the streaming refresher passes the
        policy's fast fraction); with neither, only counts/sampler rebuild.
        ``data_version`` stamps the clone's snapshot generation, and
        ``throttle`` paces the background gradient steps so concurrent
        serving threads keep the GIL (pure pacing — weights are bitwise
        unaffected under a single-threaded sampler). Returns the new
        registry version.
        """
        current = self.get(name)  # materializes lazy entries before copying
        candidate = clone_estimator(current)
        candidate.update(
            new_schema,
            train_tuples=train_tuples,
            fraction=fraction,
            data_version=data_version,
            throttle=throttle,
        )
        return self.swap(name, candidate)

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def unload(self, name: str) -> bool:
        """Drop a reloadable entry's resident model; True if memory was freed."""
        with self._lock:
            entry = self._entry(name)
            if entry.model is None or not entry.reloadable:
                return False
            entry.model = None
            self.evictions += 1
            return True

    def _evict_over_budget(self, keep: Optional[str] = None) -> None:
        if self.budget_bytes is None:
            return
        over = self.resident_bytes - self.budget_bytes
        if over <= 0:
            return
        for name in list(self._lru):  # oldest first
            if over <= 0:
                break
            if name == keep:
                continue
            entry = self._entries.get(name)
            if entry is None or entry.model is None or not entry.reloadable:
                continue
            over -= entry.resident_bytes
            entry.model = None
            self.evictions += 1

    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _Entry:
        entry = self._entries.get(name)
        if entry is None:
            raise ServingError(
                f"unknown model {name!r}; registered: {sorted(self._entries)}"
            )
        return entry

    def _touch(self, name: str) -> None:
        self._lru.pop(name, None)
        self._lru[name] = None
