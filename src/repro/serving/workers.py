"""Sharded multi-process serving: a worker pool over zero-copy model memory.

Every PR 1-5 serving number is single-core: the GIL serializes all numpy
prep and the scheduler executes micro-batches inline on its flusher
thread. :class:`WorkerPool` breaks that ceiling with N worker *processes*,
each hosting the compiled engine, fed by the existing
:class:`~repro.serving.scheduler.MicroBatchScheduler` through its
``executor`` hook — micro-batches are **sharded** across the least-loaded
workers instead of executed inline, so concurrent load scales with cores.

Zero-copy model memory
----------------------
Model state is published as immutable **versioned blobs** in
``multiprocessing.shared_memory``: one segment per registry version,
holding the trained weights plus every deterministic compiled buffer of
:class:`~repro.nn.compiled.CompiledResMADE` (folded LUTs, degree-permuted
GEMM weights, warmed wildcard-pattern constants — see
``CompiledResMADE.export_state``). Workers rebuild only the cheap
skeleton (counts/sampler/layout, deterministic given schema + config) and
*attach* read-only views — no weight copy, no refolding, and N workers
share one physical copy of the kernels. ``ModelRegistry.swap()`` /
``refresh()`` publish one new version; the pool ships it in-band on each
worker's command pipe, so a worker never interleaves an old batch with a
new model (no torn reads across processes), and segments older than every
worker's attached version are unlinked.

Models that are not shared-memory exportable (duck-typed test models, the
tabular-oracle engine) fall back to a pickled-blob transport with the
same message protocol.

Failure semantics mirror :class:`~repro.errors.SamplerError`'s fail-fast
contract: a dead worker (crash, OOM kill) fails every in-flight shard's
batch future with a chained :class:`~repro.errors.ServingError` naming
the exit code, and the pool respawns the worker and republishes the
current model version — subsequent pinned-seed requests return results
bitwise-identical to the pre-crash pool.

The single-process inline path stays untouched and remains the bitwise
oracle for this pool (per-query Monte Carlo streams are independent, so
sharding a batch cannot change any query's draw sequence).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from concurrent.futures import Future
from multiprocessing import connection, shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import NeuroCard
from repro.core.inference import attach_engine_state, export_engine_state
from repro.errors import ServingError
from repro.nn.compiled import pack_layout, read_blob, write_blob
from repro.relational.query import Query
from repro.serving import faults

#: ``source`` contract (same as the scheduler's): current (model, version).
ModelSource = Callable[[], Tuple[object, int]]

_COMPILED_PREFIX = "compiled::"


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting attached segments.

    Pre-3.13 ``SharedMemory`` registers with the resource tracker on
    *attach*, not just create — so a worker exiting would unlink the
    parent's live blob, and attach-then-unregister from many workers
    corrupts the shared tracker's per-name set (the parent's own entry
    gets removed and its final unlink logs a KeyError). Workers never
    create segments, so suppressing shared-memory registration entirely
    in the worker process is both sufficient and side-effect-free: the
    parent remains the single owner of every segment's lifetime.
    """
    try:  # pragma: no cover - tracker internals differ across versions
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = register
    except Exception:
        pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting cleanup responsibility."""
    return shared_memory.SharedMemory(name=name)


def _unlink_segments(segments: Dict[int, shared_memory.SharedMemory]) -> None:
    for segment in list(segments.values()):
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass
    segments.clear()


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _WorkerState:
    """Per-process model slot: install versioned payloads, retire segments."""

    def __init__(self) -> None:
        self.est = None
        self.version: Optional[int] = None
        self.segment: Optional[shared_memory.SharedMemory] = None
        #: Segments whose views may still be referenced somewhere (a close
        #: raised BufferError); retried on the next install and at exit.
        self.retired: List[shared_memory.SharedMemory] = []

    def install(self, payload: dict) -> None:
        old_segment = self.segment
        if payload["transport"] == "pickle":
            self.est = pickle.loads(payload["blob"])
            self.segment = None
        else:
            segment = _attach_segment(payload["shm"])
            arrays = read_blob(payload["manifest"], segment.buf)
            est = self.est
            # A payload carrying a schema means the layout changed (first
            # publish, refresh onto a new snapshot, or this worker was
            # respawned): rebuild the deterministic skeleton. Weight-only
            # swaps ship ``schema=None`` and reuse it.
            if payload.get("schema") is not None or not isinstance(est, NeuroCard):
                est = NeuroCard(payload["schema"], payload["config"]).prepare(
                    compile=payload["mode"]
                )
            est.attach_parameters(
                [arrays[f"param::{i}"] for i in range(payload["n_params"])]
            )
            attach_engine_state(
                est.inference,
                {
                    key[len(_COMPILED_PREFIX):]: value
                    for key, value in arrays.items()
                    if key.startswith(_COMPILED_PREFIX)
                },
            )
            del arrays
            self.est = est
            self.segment = segment
        self.version = payload["version"]
        if old_segment is not None:
            self.retired.append(old_segment)
        self._drain_retired()

    def _drain_retired(self) -> None:
        still = []
        for segment in self.retired:
            try:
                segment.close()
            except BufferError:
                still.append(segment)
            except Exception:
                pass
        self.retired = still

    def shutdown(self) -> None:
        if self.segment is not None:
            self.retired.append(self.segment)
            self.segment = None
        self.est = None
        self._drain_retired()


def _worker_main(slot: int, conn) -> None:
    """Worker loop: strictly ordered commands on one duplex pipe.

    In-band ordering is the torn-read defense: a ``("model", ...)``
    message is processed only after every batch dispatched before it, so
    a worker never serves a batch on a half-installed or wrong-version
    model. Batches stamped with a version other than the installed one
    (impossible under the parent's dispatch lock; defensive here) are
    rejected rather than silently served.
    """
    _disable_shm_tracking()
    state = _WorkerState()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "model":
                try:
                    # The parent's fault plan rides every model payload so a
                    # spawned (or respawned) worker joins the same chaos
                    # experiment; scope="worker-{slot}" gives each slot its
                    # own deterministic per-site schedule. Re-publishes of
                    # the same plan keep the running injector (and its hit
                    # counters) instead of resetting the schedule.
                    plan = msg[1].get("fault_plan")
                    current = faults.get_active()
                    if plan is None:
                        faults.uninstall()
                    elif current is None or current.plan != plan:
                        faults.install(plan, scope=f"worker-{slot}")
                    injector = faults.get_active()
                    if injector is not None:
                        injector.check("worker.attach")
                    state.install(msg[1])
                except BaseException as exc:
                    # Keep serving the previous model; the parent surfaces
                    # the install failure on publish(wait=True) instead of
                    # entering a crash/respawn/crash storm.
                    try:
                        conn.send(("install_error", slot, exc))
                    except Exception:
                        conn.send(
                            ("install_error", slot,
                             ServingError(f"{type(exc).__name__}: {exc}"))
                        )
                    continue
                conn.send(("ready", slot, state.version))
            elif kind == "batch":
                _, chunk_id, version, queries, rngs, n_samples, max_rel_var = msg
                try:
                    injector = faults.get_active()
                    if injector is not None:
                        injector.check("worker.crash")  # kind="crash": dies here
                        injector.check("worker.batch")
                    if state.est is None:
                        raise ServingError("worker has no model installed")
                    if version != state.version:
                        raise ServingError(
                            f"worker holds model version {state.version} but "
                            f"received a batch for version {version}"
                        )
                    kwargs = {"rngs": rngs}
                    if n_samples is not None:
                        kwargs["n_samples"] = n_samples
                    if max_rel_var is not None:
                        kwargs["max_rel_var"] = max_rel_var
                    values = state.est.estimate_batch(queries, **kwargs)
                    conn.send(("result", slot, chunk_id, [float(v) for v in values]))
                except BaseException as exc:
                    try:
                        conn.send(("error", slot, chunk_id, exc))
                    except Exception:  # unpicklable exception: describe it
                        conn.send(
                            ("error", slot, chunk_id,
                             ServingError(f"{type(exc).__name__}: {exc}"))
                        )
    finally:
        state.shutdown()


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
class _PendingBatch:
    """One submit_batch call: a future gathering its shards in order."""

    __slots__ = ("future", "results", "remaining", "failed")

    def __init__(self, n: int):
        self.future: Future = Future()
        self.results = np.zeros(n, dtype=np.float64)
        self.remaining = 0
        self.failed = False


class _Handle:
    """Parent-side view of one worker process."""

    __slots__ = (
        "slot", "proc", "conn", "send_lock", "inflight",
        "ready_version", "install_error", "alive",
    )

    def __init__(self, slot: int, proc, conn):
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        #: chunk_id -> (_PendingBatch, positions into its results array)
        self.inflight: Dict[int, Tuple[_PendingBatch, np.ndarray]] = {}
        self.ready_version: Optional[int] = None
        self.install_error: Optional[BaseException] = None
        self.alive = True

    def send(self, msg) -> None:
        with self.send_lock:
            self.conn.send(msg)


class WorkerPool:
    """N estimator processes behind one batched-executor + client surface.

    Three ways in:

    * **scheduler executor** — pass ``executor=pool`` to
      :class:`~repro.serving.scheduler.MicroBatchScheduler` (the service
      does this when ``ServingConfig.workers > 0``); every flushed
      micro-batch is sharded across the least-loaded workers via
      :meth:`submit_batch`;
    * **EstimationClient** — :meth:`estimate` / :meth:`estimate_batch` /
      :meth:`submit` serve direct callers against the published model;
    * **publisher** — :meth:`publish` installs a model version explicitly
      (the scheduler/registry path publishes implicitly on version bumps).

    Start method defaults to ``spawn``: workers import numpy fresh
    instead of inheriting a forked BLAS state mid-operation, and the cost
    is paid once per worker, not per request.
    """

    def __init__(
        self,
        source: Optional[ModelSource] = None,
        *,
        n_workers: Optional[int] = None,
        name: str = "pool",
        start_method: Optional[str] = None,
        min_shard: int = 4,
        max_inflight: int = 2,
    ):
        if n_workers is not None and n_workers < 1:
            raise ServingError("n_workers must be >= 1")
        if min_shard < 1:
            raise ServingError("min_shard must be >= 1")
        if max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        self._source = source
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.name = name
        self.min_shard = min_shard
        self.max_inflight = max_inflight
        self._ctx = multiprocessing.get_context(start_method or "spawn")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: Serializes every pipe write of "model"/"batch" messages, so the
        #: per-worker message order always matches version bookkeeping
        #: (a batch stamped v is never sent after the model message for
        #: v+1). Never held across anything that needs the collector.
        self._dispatch_lock = threading.Lock()
        self._handles: List[_Handle] = []
        self._collector: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._segments: Dict[int, shared_memory.SharedMemory] = {}
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)
        self._published_version: Optional[int] = None
        self._published_model = None
        self._current_payload: Optional[dict] = None
        self._shipped_context: Optional[tuple] = None
        self._chunk_ids = itertools.count()
        self._rng = np.random.default_rng(0)
        self._closed = False
        # Telemetry (guarded writes, approximate reads).
        self.respawns = 0
        self.batches = 0
        self.chunks = 0
        self.inline_fallbacks = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_started_locked(self) -> None:
        if self._handles:
            return
        for slot in range(self.n_workers):
            self._handles.append(self._spawn(slot))
        self._collector = threading.Thread(
            target=self._collect, name=f"pool-collector-{self.name}", daemon=True
        )
        self._collector.start()

    def _spawn(self, slot: int) -> _Handle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(slot, child_conn),
            name=f"estimator-worker-{self.name}-{slot}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Handle(slot, proc, parent_conn)

    def warm(self, timeout: float = 120.0) -> None:
        """Spawn the workers and wait for the published model to attach."""
        with self._lock:
            if self._closed:
                raise ServingError(f"worker pool {self.name!r} is closed")
            self._ensure_started_locked()
            version = self._published_version
        if version is not None:
            self._await_ready(version, timeout)

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (test fault injection targets these)."""
        with self._lock:
            return [h.proc.pid for h in self._handles if h.alive]

    def close(self) -> None:
        """Drain in-flight shards, stop the workers, unlink every segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
            self._cond.notify_all()
        for handle in handles:
            if handle.alive:
                try:
                    handle.send(("stop",))
                except Exception:
                    pass
        for handle in handles:
            handle.proc.join(timeout=10)
            if handle.proc.is_alive():  # pragma: no cover - stuck worker
                handle.proc.terminate()
                handle.proc.join(timeout=5)
        try:
            self._wake_w.send(None)
        except Exception:
            pass
        if self._collector is not None:
            self._collector.join(timeout=10)
        with self._lock:
            stranded = [
                entry for h in handles for entry in h.inflight.values()
            ]
            for handle in handles:
                handle.inflight.clear()
        for pending, _positions in stranded:
            self._fail_batch(
                pending,
                ServingError(f"worker pool {self.name!r} closed with requests in flight"),
            )
        _unlink_segments(self._segments)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Publishing versioned model blobs
    # ------------------------------------------------------------------
    def publish(self, model, version: Optional[int] = None, *,
                wait: bool = True, timeout: float = 120.0) -> int:
        """Install ``model`` as an immutable versioned blob on every worker.

        Idempotent for versions at or below the published one. With
        ``wait``, blocks until every live worker has attached the version
        (surfacing any worker-side install failure); without, workers
        attach in-band before their next batch.
        """
        with self._lock:
            if self._closed:
                raise ServingError(f"worker pool {self.name!r} is closed")
            self._ensure_started_locked()
            if version is None:
                version = (self._published_version or 0) + 1
        with self._dispatch_lock:
            if self._published_version is None or version > self._published_version:
                self._publish_dispatch_locked(model, version)
        if wait:
            self._await_ready(version, timeout)
        return version

    def _publish_dispatch_locked(self, model, version: int) -> None:
        payload, segment = self._build_payload(model, version)
        with self._lock:
            if segment is not None:
                self._segments[version] = segment
            self._published_version = version
            self._published_model = model
            self._current_payload = payload
            handles = [h for h in self._handles if h.alive]
        slim = self._slim_payload(payload)
        for handle in handles:
            try:
                handle.send(("model", slim))
            except Exception:
                pass  # the collector handles the death and respawns
        self._shipped_context = self._context_key(payload)

    @staticmethod
    def _context_key(payload: dict) -> Optional[tuple]:
        if payload["transport"] != "shared":
            return None
        return (id(payload["schema"]), id(payload["config"]), payload["mode"])

    def _slim_payload(self, payload: dict) -> dict:
        """Drop schema/config when the workers' skeleton already matches.

        The schema carries the actual column data (workers need it to
        rebuild counts/sampler), so weight-only republishes to already-
        initialized workers skip shipping it. Respawned workers always get
        the retained full payload.
        """
        key = self._context_key(payload)
        if key is None or key != self._shipped_context:
            return payload
        slim = dict(payload)
        slim["schema"] = None
        slim["config"] = None
        return slim

    def _build_payload(self, model, version: int):
        """``(payload, segment)`` for one immutable model version.

        Estimators with a real parameterized model export through shared
        memory (weights + compiled deterministic buffers, zero-copy on
        attach); anything else — duck-typed test models, bare oracle
        engines — ships as one pickled blob. When a fault plan is installed
        in this (parent) process it rides along, so worker processes run
        the same chaos experiment under their own per-slot scopes.
        """
        injector = faults.get_active()
        fault_plan = injector.plan if injector is not None else None
        if isinstance(model, NeuroCard) and model.model is not None:
            arrays: Dict[str, np.ndarray] = {}
            params = model.model.parameters()
            for i, param in enumerate(params):
                arrays[f"param::{i}"] = param.value
            for key, value in export_engine_state(model.inference).items():
                arrays[_COMPILED_PREFIX + key] = value
            manifest, nbytes = pack_layout(arrays)
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
            write_blob(arrays, manifest, segment.buf)
            payload = {
                "transport": "shared",
                "version": version,
                "shm": segment.name,
                "manifest": manifest,
                "n_params": len(params),
                "schema": model.schema,
                "config": model.config,
                "mode": model._compile_mode,  # noqa: SLF001 - serving twin
                "fault_plan": fault_plan,
            }
            return payload, segment
        try:
            blob = pickle.dumps(model)
        except Exception as exc:
            raise ServingError(
                f"model {type(model).__name__} is neither shared-memory "
                "exportable (NeuroCard) nor picklable; cannot serve it "
                "from a worker pool"
            ) from exc
        return {
            "transport": "pickle",
            "version": version,
            "blob": blob,
            "fault_plan": fault_plan,
        }, None

    def _await_ready(self, version: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                for handle in self._handles:
                    if handle.alive and handle.install_error is not None:
                        error = ServingError(
                            f"worker {handle.slot} of pool {self.name!r} "
                            f"failed to install model version {version}"
                        )
                        error.__cause__ = handle.install_error
                        raise error
                live = [h for h in self._handles if h.alive]
                if live and all(
                    h.ready_version is not None and h.ready_version >= version
                    for h in live
                ):
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServingError(
                        f"pool {self.name!r} workers did not attach model "
                        f"version {version} within {timeout:.0f}s"
                    )
                self._cond.wait(timeout=min(remaining, 0.25))

    # ------------------------------------------------------------------
    # Batched executor surface (the scheduler hook)
    # ------------------------------------------------------------------
    def submit_batch(
        self,
        model,
        version: int,
        queries: Sequence[Query],
        *,
        rngs: Sequence[np.random.Generator],
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
    ) -> Future:
        """Shard one micro-batch across the pool; future -> ordered array.

        ``max_rel_var`` rides each shard's pipe message: sharding cannot
        change any query's result because the adaptive probe draws from a
        child stream spawned off that query's own generator.

        Publishes ``version`` first when it is ahead of the pool (the
        in-band model message precedes the shards on every worker pipe, so
        post-swap dispatches can never be served by a stale version). A
        ``version`` *behind* the pool means the caller's source read raced
        a newer swap — that batch runs inline on the model object the
        caller already holds, mirroring the scheduler's "in-flight batches
        finish on the old model" contract.
        """
        queries = list(queries)
        rngs = list(rngs)
        if len(rngs) != len(queries):
            raise ServingError(
                f"submit_batch needs one rng per query "
                f"({len(rngs)} != {len(queries)})"
            )
        with self._lock:
            if self._closed:
                raise ServingError(f"worker pool {self.name!r} is closed")
            self._ensure_started_locked()
        injector = faults.get_active()
        if injector is not None:
            injector.check("worker.dispatch")  # raises into the caller's try
        self._await_capacity()
        pending = _PendingBatch(len(queries))
        assignments = None
        with self._dispatch_lock:
            published = self._published_version
            if published is None or version > published:
                self._publish_dispatch_locked(model, version)
                published = version
            if version < published:
                with self._lock:
                    self.inline_fallbacks += 1
            else:
                assignments = self._assign_chunks(pending, len(queries))
                for handle, chunk_id, lo, hi in assignments:
                    try:
                        handle.send(
                            ("batch", chunk_id, version,
                             queries[lo:hi], rngs[lo:hi], n_samples, max_rel_var)
                        )
                    except Exception as exc:
                        with self._lock:
                            handle.inflight.pop(chunk_id, None)
                        error = ServingError(
                            f"worker {handle.slot} of pool {self.name!r} "
                            "is unreachable"
                        )
                        error.__cause__ = exc
                        self._fail_batch(pending, error)
        if assignments is None:  # stale version: inline on the caller's model
            kwargs = {"rngs": rngs}
            if n_samples is not None:
                kwargs["n_samples"] = n_samples
            if max_rel_var is not None:
                kwargs["max_rel_var"] = max_rel_var
            try:
                pending.future.set_result(
                    np.asarray(model.estimate_batch(queries, **kwargs), dtype=np.float64)
                )
            except BaseException as exc:
                pending.future.set_exception(exc)
        return pending.future

    def _await_capacity(self) -> None:
        """Soft backpressure: block while every worker is at max_inflight.

        Blocking the caller (the scheduler's flusher) is the feature: new
        submits keep queueing behind it and coalesce into larger
        micro-batches, exactly like inline execution time used to provide.
        """
        with self._lock:
            while not self._closed:
                live = [h for h in self._handles if h.alive]
                if live and min(len(h.inflight) for h in live) < self.max_inflight:
                    return
                self._cond.wait(timeout=0.1)
            raise ServingError(f"worker pool {self.name!r} is closed")

    def _assign_chunks(self, pending: _PendingBatch, n: int):
        with self._lock:
            live = sorted(
                (h for h in self._handles if h.alive),
                key=lambda h: len(h.inflight),
            )
            if not live:
                raise ServingError(f"worker pool {self.name!r} has no live workers")
            n_chunks = min(len(live), max(1, -(-n // self.min_shard)))
            base, extra = divmod(n, n_chunks)
            assignments = []
            at = 0
            for i in range(n_chunks):
                size = base + (1 if i < extra else 0)
                if size == 0:
                    continue
                chunk_id = next(self._chunk_ids)
                handle = live[i]
                handle.inflight[chunk_id] = (
                    pending, np.arange(at, at + size)
                )
                pending.remaining += 1
                assignments.append((handle, chunk_id, at, at + size))
                at += size
            self.batches += 1
            self.chunks += len(assignments)
        return assignments

    # ------------------------------------------------------------------
    # EstimationClient surface (direct callers, no scheduler in front)
    # ------------------------------------------------------------------
    def _client_source(self) -> Tuple[object, int]:
        if self._source is not None:
            return self._source()
        with self._lock:
            if self._closed:
                raise ServingError(f"worker pool {self.name!r} is closed")
            if self._published_model is None:
                raise ServingError(
                    f"pool {self.name!r} has no model; publish() one or "
                    "construct the pool with a source"
                )
            return self._published_model, self._published_version

    def estimate(self, query: Query, *, seed: Optional[int] = None,
                 n_samples: Optional[int] = None,
                 max_rel_var: Optional[float] = None) -> float:
        """Blocking single-query estimate on the pool (client protocol)."""
        return float(
            self.submit(
                query, seed=seed, n_samples=n_samples, max_rel_var=max_rel_var
            ).result()
        )

    def estimate_batch(
        self,
        queries: Sequence[Query],
        *,
        n_samples: Optional[int] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        max_rel_var: Optional[float] = None,
    ) -> np.ndarray:
        """Sharded batch estimate; same contract as the inline engines."""
        queries = list(queries)
        model, version = self._client_source()
        if rngs is None:
            with self._lock:
                rngs = list(self._rng.spawn(len(queries)))
        return np.asarray(
            self.submit_batch(
                model, version, queries, rngs=list(rngs), n_samples=n_samples,
                max_rel_var=max_rel_var,
            ).result()
        )

    def submit(self, query: Query, *, seed: Optional[int] = None,
               n_samples: Optional[int] = None,
               max_rel_var: Optional[float] = None) -> Future:
        """One query as a Future (scheduler-compatible client surface)."""
        model, version = self._client_source()
        if seed is not None:
            rng = np.random.default_rng(seed)
        else:
            with self._lock:
                rng = self._rng.spawn(1)[0]
        inner = self.submit_batch(
            model, version, [query], rngs=[rng], n_samples=n_samples,
            max_rel_var=max_rel_var,
        )
        out: Future = Future()

        def relay(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                out.set_exception(exc)
            else:
                out.set_result(float(done.result()[0]))

        inner.add_done_callback(relay)
        return out

    # ------------------------------------------------------------------
    # Collector: results, version acks, worker death
    # ------------------------------------------------------------------
    def _collect(self) -> None:
        while True:
            with self._lock:
                conns = {h.conn: h for h in self._handles if h.alive}
                closed = self._closed
            if not conns:
                if closed:
                    return
                time.sleep(0.01)
                continue
            ready = connection.wait(list(conns) + [self._wake_r], timeout=1.0)
            for obj in ready:
                if obj is self._wake_r:
                    try:
                        self._wake_r.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                handle = conns[obj]
                try:
                    msg = obj.recv()
                except (EOFError, OSError):
                    self._on_worker_death(handle)
                    continue
                self._on_message(handle, msg)

    def _on_message(self, handle: _Handle, msg) -> None:
        kind = msg[0]
        if kind == "ready":
            with self._lock:
                handle.ready_version = msg[2]
                handle.install_error = None
                self._cond.notify_all()
            self._gc_segments()
        elif kind == "install_error":
            with self._lock:
                handle.install_error = msg[2]
                self._cond.notify_all()
        elif kind in ("result", "error"):
            _, _slot, chunk_id, payload = msg
            with self._lock:
                entry = handle.inflight.pop(chunk_id, None)
                self._cond.notify_all()
            if entry is None:
                return  # batch already failed fast (death race)
            pending, positions = entry
            if kind == "result":
                self._complete_chunk(pending, positions, payload)
            else:
                self._fail_batch(pending, payload)

    def _complete_chunk(self, pending: _PendingBatch, positions, values) -> None:
        with self._lock:
            if pending.failed:
                return
            pending.results[positions] = values
            pending.remaining -= 1
            done = pending.remaining == 0
        if done:
            # Outside the lock: done-callbacks (the scheduler's completion)
            # run synchronously on this collector thread.
            pending.future.set_result(pending.results)

    def _fail_batch(self, pending: _PendingBatch, exc: BaseException) -> None:
        with self._lock:
            if pending.failed:
                return
            pending.failed = True
        pending.future.set_exception(exc)

    def _on_worker_death(self, handle: _Handle) -> None:
        with self._lock:
            if not handle.alive:
                return
            handle.alive = False
            stranded = list(handle.inflight.values())
            handle.inflight.clear()
            closed = self._closed
            if not closed:
                self.respawns += 1
            self._cond.notify_all()
        try:
            handle.conn.close()
        except Exception:
            pass
        if closed:
            return
        handle.proc.join(timeout=1)
        exitcode = handle.proc.exitcode
        for pending, _positions in stranded:
            error = ServingError(
                f"worker {handle.slot} of pool {self.name!r} died mid-batch; "
                "its in-flight shards failed fast and the worker was respawned"
            )
            error.__cause__ = RuntimeError(
                f"worker process exited with code {exitcode}"
            )
            self._fail_batch(pending, error)
        # Respawn into the same slot and replay the current model version,
        # so recovered workers serve bitwise the same blob as the others.
        replacement = self._spawn(handle.slot)
        with self._lock:
            self._handles[handle.slot] = replacement
            payload = self._current_payload
        if payload is not None:
            try:
                replacement.send(("model", payload))
            except Exception:
                pass

    def _gc_segments(self) -> None:
        """Unlink blob versions every worker has moved past.

        Safe because the dispatch lock orders each worker's pipe: all
        batches stamped with an old version precede the newer model
        message, so a worker acking version v has no pre-v work left.
        """
        with self._lock:
            live = [h for h in self._handles if h.alive]
            if not live:
                return
            min_ready = min(
                (h.ready_version if h.ready_version is not None else -1)
                for h in live
            )
            victims = [
                v for v in self._segments
                if v < min_ready and v != self._published_version
            ]
            segments = [self._segments.pop(v) for v in victims]
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass

    # ------------------------------------------------------------------
    @property
    def shared_bytes(self) -> int:
        """Bytes of published shared-memory blobs (one copy serves N workers)."""
        with self._lock:
            return sum(segment.size for segment in self._segments.values())

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "workers": sum(1 for h in self._handles if h.alive),
                "respawns": self.respawns,
                "batches": self.batches,
                "chunks": self.chunks,
                "inline_fallbacks": self.inline_fallbacks,
                "inflight": sum(len(h.inflight) for h in self._handles),
                "published_version": (
                    self._published_version if self._published_version is not None else -1
                ),
                "shared_segments": len(self._segments),
                "shared_bytes": sum(s.size for s in self._segments.values()),
            }
