"""HTTP client adapter: the estimation service's wire API as a local object.

:class:`HttpEstimationClient` speaks to an
:class:`~repro.serving.http.EstimationHttpServer` and conforms to the
:class:`~repro.serving.EstimationClient` protocol (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and every accuracy/latency
harness written against in-process clients — point the harness at a URL
instead of a model and nothing else changes.

Built on :mod:`http.client` (stdlib): one keep-alive connection per
thread (thread-local, so the harness's ``concurrency=N`` closed loop gets
N independent connections), ``TCP_NODELAY`` against Nagle/delayed-ACK
stalls, and a single transparent retry when a kept-alive connection turns
out to have been closed server-side (estimates are read-only, so the
retry is safe).

Error mapping: 4xx responses raise :class:`~repro.errors.QueryError`
(caller bug — malformed DSL, unknown model/tenant, quota), 5xx raise
:class:`~repro.errors.ServingError` (server state — shed, draining,
deadline); both carry the server's JSON ``error`` message.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import QueryError, ServingError
from repro.relational.dsl import query_to_dict
from repro.relational.query import Query


class HttpEstimationClient:
    """Estimate over the wire; protocol-compatible with in-process clients.

    Parameters
    ----------
    host, port:
        The server's bound address (``HttpServerThread.host/.port``).
    model:
        Model name for the ``/v1/models/{model}/estimate`` route.
    tenant:
        Sent as ``X-Tenant`` (admission quota identity); None omits the
        header (the server applies the default quota).
    timeout:
        Socket timeout in seconds for connect/read.
    """

    def __init__(
        self,
        host: str,
        port: int,
        model: str,
        *,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.model = model
        self.tenant = tenant
        self.timeout = timeout
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            conn.connect()
            if conn.sock is not None:
                conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's connection (others close on their threads)."""
        self._drop_connection()

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> "tuple[int, Dict[str, str], bytes]":
        headers = {"Connection": "keep-alive"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        # A kept-alive connection may have been closed server-side (drain,
        # idle timeout) between requests; estimates are read-only, so one
        # transparent retry on a fresh connection is safe.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except (
                http.client.RemoteDisconnected,
                http.client.BadStatusLine,
                ConnectionError,
                BrokenPipeError,
            ):
                self._drop_connection()
                if attempt:
                    raise
                continue
            if response.getheader("Connection", "").lower() == "close":
                self._drop_connection()
            return response.status, dict(response.getheaders()), payload
        raise ServingError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(status: int, payload: bytes) -> dict:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"server returned non-JSON body (status {status})"
            ) from exc
        if 200 <= status < 300:
            return doc
        message = doc.get("error", "") if isinstance(doc, dict) else str(doc)
        if 400 <= status < 500:
            raise QueryError(f"HTTP {status}: {message}")
        raise ServingError(f"HTTP {status}: {message}")

    # ------------------------------------------------------------------
    # EstimationClient protocol
    # ------------------------------------------------------------------
    def estimate(
        self,
        query: Query,
        *,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> float:
        """Blocking single-query estimate over the wire."""
        body: Dict[str, object] = {"query": query_to_dict(query)}
        if seed is not None:
            body["seed"] = seed
        if n_samples is not None:
            body["n_samples"] = n_samples
        if max_rel_var is not None:
            body["max_rel_var"] = max_rel_var
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        doc = self._post_estimate(body)
        return float(doc["estimate"])

    def estimate_batch(
        self,
        queries: Sequence[Query],
        *,
        seeds: Optional[Sequence[Optional[int]]] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Batch estimate over the wire; one request, order-preserving."""
        body: Dict[str, object] = {
            "queries": [query_to_dict(q) for q in queries]
        }
        if seeds is not None:
            body["seeds"] = list(seeds)
        if n_samples is not None:
            body["n_samples"] = n_samples
        if max_rel_var is not None:
            body["max_rel_var"] = max_rel_var
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        doc = self._post_estimate(body)
        return np.array(doc["estimates"], dtype=np.float64)

    def _post_estimate(self, body: Dict[str, object]) -> dict:
        status, _, payload = self._request(
            "POST",
            f"/v1/models/{self.model}/estimate",
            json.dumps(body).encode("utf-8"),
        )
        return self._decode(status, payload)

    # ------------------------------------------------------------------
    # Operational endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The server's ``/healthz`` JSON (raises ServingError on 5xx)."""
        status, _, payload = self._request("GET", "/healthz")
        return self._decode(status, payload)

    def metrics_text(self) -> str:
        """The raw Prometheus text from ``/metrics``."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServingError(f"/metrics returned HTTP {status}")
        return payload.decode("utf-8")


__all__ = ["HttpEstimationClient"]
