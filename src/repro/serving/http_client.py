"""HTTP client adapter: the estimation service's wire API as a local object.

:class:`HttpEstimationClient` speaks to an
:class:`~repro.serving.http.EstimationHttpServer` and conforms to the
:class:`~repro.serving.EstimationClient` protocol (``estimate`` /
``estimate_batch``), so it drops straight into
:func:`repro.eval.harness.evaluate_estimator` and every accuracy/latency
harness written against in-process clients — point the harness at a URL
instead of a model and nothing else changes.

Built on :mod:`http.client` (stdlib): one keep-alive connection per
thread (thread-local, so the harness's ``concurrency=N`` closed loop gets
N independent connections), ``TCP_NODELAY`` against Nagle/delayed-ACK
stalls, and bounded retries with exponential backoff + jitter: dropped
connections and 429/503 estimate responses are retried up to
``max_retries`` times (honoring the server's ``Retry-After``), then the
last typed error is raised. Estimates are read-only, so retries are safe;
``max_retries=0`` restores fail-fast behavior for callers that reconcile
request counts exactly.

Error mapping: 4xx responses raise :class:`~repro.errors.QueryError`
(caller bug — malformed DSL, unknown model/tenant, quota), 5xx raise
:class:`~repro.errors.ServingError` (server state — shed, draining,
deadline); both carry the server's JSON ``error`` message.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import QueryError, ServingError
from repro.relational.dsl import query_to_dict
from repro.relational.query import Query


class HttpEstimationClient:
    """Estimate over the wire; protocol-compatible with in-process clients.

    Parameters
    ----------
    host, port:
        The server's bound address (``HttpServerThread.host/.port``).
    model:
        Model name for the ``/v1/models/{model}/estimate`` route.
    tenant:
        Sent as ``X-Tenant`` (admission quota identity); None omits the
        header (the server applies the default quota).
    timeout:
        Socket timeout in seconds for connect/read.
    max_retries:
        Retries after the first attempt, covering dropped connections
        (all requests) and 429/503 responses (estimate requests only —
        ``/healthz`` legitimately answers 503 while draining). 0 fails
        fast: exactly one wire request per call.
    backoff_base_s, backoff_cap_s:
        Exponential backoff schedule: retry ``k`` sleeps
        ``min(cap, base * 2**k)`` scaled by uniform jitter in
        ``[0.5, 1.0]``, or the server's ``Retry-After`` if larger.
    retry_seed:
        Pins the jitter RNG for reproducible retry timing.
    """

    def __init__(
        self,
        host: str,
        port: int,
        model: str,
        *,
        tenant: Optional[str] = None,
        timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_seed: Optional[int] = None,
    ):
        if max_retries < 0:
            raise ServingError("max_retries must be >= 0")
        self.host = host
        self.port = port
        self.model = model
        self.tenant = tenant
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._rng = random.Random(retry_seed)
        #: Wire-level retries performed (connection drops + retried 429/503).
        self.n_retries = 0
        #: Tier(s) that answered the most recent estimate call (None when
        #: the server has no cascade attached). Per-call, not thread-safe.
        self.last_tier = None
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            conn.connect()
            if conn.sock is not None:
                conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's connection (others close on their threads)."""
        self._drop_connection()

    def _backoff_delay(self, retry: int, retry_after: Optional[float]) -> float:
        """Sleep before retry number ``retry`` (0-based), honoring Retry-After."""
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2.0 ** retry))
        delay *= 0.5 + 0.5 * self._rng.random()  # jitter against thundering herds
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    @staticmethod
    def _retry_after(headers: Dict[str, str]) -> Optional[float]:
        for name, value in headers.items():
            if name.lower() == "retry-after":
                try:
                    return float(value)
                except ValueError:
                    return None
        return None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        *,
        retry_statuses: "tuple[int, ...]" = (),
    ) -> "tuple[int, Dict[str, str], bytes]":
        headers = {"Connection": "keep-alive"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self.tenant is not None:
            headers["X-Tenant"] = self.tenant
        # Estimates are read-only, so retrying is always safe. Two failure
        # shapes are retried with exponential backoff + jitter: dropped
        # connections (drain, idle timeout, mid-flight crash) and — for the
        # estimate route — 429/503 sheds, sleeping at least the server's
        # Retry-After. The final attempt's failure surfaces as the usual
        # typed error (connection exception here, QueryError/ServingError
        # from _decode for an HTTP status).
        delay = 0.0
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.n_retries += 1
                if delay > 0:
                    time.sleep(delay)
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
            except (
                http.client.RemoteDisconnected,
                http.client.BadStatusLine,
                ConnectionError,
                BrokenPipeError,
            ):
                self._drop_connection()
                if attempt == self.max_retries:
                    raise
                delay = self._backoff_delay(attempt, None)
                continue
            if response.getheader("Connection", "").lower() == "close":
                self._drop_connection()
            result = response.status, dict(response.getheaders()), payload
            if response.status in retry_statuses and attempt < self.max_retries:
                delay = self._backoff_delay(attempt, self._retry_after(result[1]))
                continue
            return result
        raise ServingError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(status: int, payload: bytes) -> dict:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"server returned non-JSON body (status {status})"
            ) from exc
        if 200 <= status < 300:
            return doc
        message = doc.get("error", "") if isinstance(doc, dict) else str(doc)
        if 400 <= status < 500:
            raise QueryError(f"HTTP {status}: {message}")
        raise ServingError(f"HTTP {status}: {message}")

    # ------------------------------------------------------------------
    # EstimationClient protocol
    # ------------------------------------------------------------------
    def estimate(
        self,
        query: Query,
        *,
        seed: Optional[int] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        budget_ms: Optional[float] = None,
        max_q_error: Optional[float] = None,
    ) -> float:
        """Blocking single-query estimate over the wire.

        ``budget_ms``/``max_q_error`` are the cascade routing contract
        (servers without an attached cascade accept and ignore them); the
        answering tier is recorded on :attr:`last_tier`.
        """
        body: Dict[str, object] = {"query": query_to_dict(query)}
        if seed is not None:
            body["seed"] = seed
        if n_samples is not None:
            body["n_samples"] = n_samples
        if max_rel_var is not None:
            body["max_rel_var"] = max_rel_var
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if budget_ms is not None:
            body["budget_ms"] = budget_ms
        if max_q_error is not None:
            body["max_q_error"] = max_q_error
        doc = self._post_estimate(body)
        self.last_tier = doc.get("tier")
        return float(doc["estimate"])

    def estimate_batch(
        self,
        queries: Sequence[Query],
        *,
        seeds: Optional[Sequence[Optional[int]]] = None,
        n_samples: Optional[int] = None,
        max_rel_var: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        budget_ms: Optional[float] = None,
        max_q_error: Optional[float] = None,
    ) -> np.ndarray:
        """Batch estimate over the wire; one request, order-preserving.

        With a cascade attached server-side, :attr:`last_tier` holds the
        per-query tier list from the response.
        """
        body: Dict[str, object] = {
            "queries": [query_to_dict(q) for q in queries]
        }
        if seeds is not None:
            body["seeds"] = list(seeds)
        if n_samples is not None:
            body["n_samples"] = n_samples
        if max_rel_var is not None:
            body["max_rel_var"] = max_rel_var
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if budget_ms is not None:
            body["budget_ms"] = budget_ms
        if max_q_error is not None:
            body["max_q_error"] = max_q_error
        doc = self._post_estimate(body)
        self.last_tier = doc.get("tiers")
        return np.array(doc["estimates"], dtype=np.float64)

    def _post_estimate(self, body: Dict[str, object]) -> dict:
        status, _, payload = self._request(
            "POST",
            f"/v1/models/{self.model}/estimate",
            json.dumps(body).encode("utf-8"),
            retry_statuses=(429, 503),
        )
        return self._decode(status, payload)

    # ------------------------------------------------------------------
    # Operational endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """The server's ``/healthz`` JSON (raises ServingError on 5xx)."""
        status, _, payload = self._request("GET", "/healthz")
        return self._decode(status, payload)

    def metrics_text(self) -> str:
        """The raw Prometheus text from ``/metrics``."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServingError(f"/metrics returned HTTP {status}")
        return payload.decode("utf-8")


__all__ = ["HttpEstimationClient"]
