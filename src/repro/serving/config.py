"""ServingConfig: every serving knob in one validated, serializable place.

Through PR 5 the serving knobs accreted as loose keyword arguments —
scheduler options on :class:`~repro.serving.service.EstimationService`,
refresh thresholds on :class:`~repro.serving.updates.RefreshPolicy`,
byte budgets on :class:`~repro.serving.registry.ModelRegistry` — so a
deployment's serving posture was scattered across three constructors and
could not be written down. :class:`ServingConfig` consolidates them, adds
the PR 6 worker-pool knobs, validates eagerly (a typo'd field fails at
construction with a :class:`~repro.errors.ServingError`, not at the first
flush), and round-trips through plain dicts (:meth:`from_dict` /
:meth:`to_dict`) so a config can live in a JSON/YAML deployment file.

Legacy keyword arguments on ``EstimationService`` keep working for one
release with a :class:`DeprecationWarning`; the field mapping is:

======================  ==========================================
legacy kwarg            ServingConfig field
======================  ==========================================
``max_batch``           ``max_batch``
``max_wait_us``         ``max_wait_us``
``cache_size``          ``cache_size``
``n_samples``           ``n_samples``
``poll_interval``       ``poll_interval`` (serve_with_updates)
(registry ctor)         ``budget_bytes``
(RefreshPolicy ctor)    ``drift_threshold`` … ``min_interval_seconds``
(new in PR 6)           ``workers``, ``worker_start``, ``min_shard``,
                        ``max_inflight``
======================  ==========================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.refresh import FAST_REFRESH_FRACTION
from repro.errors import ServingError
from repro.serving.admission import TenantQuota
from repro.serving.updates import RefreshPolicy


@dataclass(frozen=True)
class HttpConfig:
    """Network front-end knobs: bind address, admission, drain behavior.

    Lives as the ``http`` section of :class:`ServingConfig` so one
    deployment file describes the whole serving posture, wire to weights.
    Same contract as its parent: frozen, eagerly validated, and
    dict-round-trippable (``tenants`` serializes as a list of
    ``{"name", "rate", "burst"}`` objects).
    """

    #: Bind address; port 0 asks the OS for an ephemeral port (tests/bench).
    host: str = "127.0.0.1"
    port: int = 0
    #: Bounded accept queue: max estimate requests past admission at once.
    max_queue: int = 64
    #: Default tenant token rate (queries/second; None = unlimited).
    rate: Optional[float] = None
    #: Default tenant bucket capacity (None = one second of ``rate``).
    burst: Optional[float] = None
    #: Per-tenant quota overrides.
    tenants: Tuple[TenantQuota, ...] = ()
    #: Reject tenants without an explicit quota (403) instead of applying
    #: the default quota.
    strict_tenants: bool = False
    #: Deadline applied to requests that do not carry one (None = none).
    default_deadline_ms: Optional[float] = None
    #: Largest accepted request body.
    max_body_bytes: int = 1 << 20
    #: Seconds :meth:`~repro.serving.http.EstimationHttpServer.drain`
    #: waits for in-flight requests before giving up.
    drain_grace_s: float = 10.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ServingError` naming the first invalid field."""
        if not self.host:
            raise ServingError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ServingError(f"port must be within [0, 65535], got {self.port}")
        if self.max_queue < 1:
            raise ServingError("max_queue must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ServingError("rate must be positive (or None for unlimited)")
        if self.burst is not None and self.burst <= 0:
            raise ServingError("burst must be positive (or None = 1s of rate)")
        seen = set()
        for quota in self.tenants:
            if not isinstance(quota, TenantQuota):
                raise ServingError(
                    f"tenants entries must be TenantQuota, got {type(quota).__name__}"
                )
            if quota.name in seen:
                raise ServingError(f"duplicate tenant quota for {quota.name!r}")
            seen.add(quota.name)
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ServingError("default_deadline_ms must be positive (or None)")
        if self.max_body_bytes < 1:
            raise ServingError("max_body_bytes must be >= 1")
        if self.drain_grace_s < 0:
            raise ServingError("drain_grace_s must be >= 0")

    @classmethod
    def from_dict(cls, values: dict) -> "HttpConfig":
        """Build from a plain mapping; unknown keys are hard errors."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(values) - known)
        if unknown:
            raise ServingError(
                f"unknown HttpConfig field(s) {unknown}; known: {sorted(known)}"
            )
        values = dict(values)
        tenants = values.get("tenants", ())
        values["tenants"] = tuple(
            q if isinstance(q, TenantQuota) else TenantQuota(**q) for q in tenants
        )
        return cls(**values)

    def to_dict(self) -> dict:
        """Plain-dict form; ``from_dict(to_dict())`` round-trips exactly."""
        out = dataclasses.asdict(self)
        out["tenants"] = [dataclasses.asdict(q) for q in self.tenants]
        return out

    def default_quota(self) -> TenantQuota:
        return TenantQuota("default", self.rate, self.burst)


@dataclass(frozen=True)
class CascadeConfig:
    """Estimator-cascade knobs: tier order, routing contract, calibration.

    Lives as the ``cascade`` section of :class:`ServingConfig` (same
    contract: frozen, eagerly validated, dict-round-trippable). The tier
    names map to the estimators
    :meth:`~repro.serving.service.EstimationService.enable_cascade`
    builds (``per_table``, ``deepdb``, ``join_samples``) plus the final
    ``neural`` tier served by the scheduler; ``docs/estimators.md`` is
    the per-tier accuracy/latency contract these knobs route against.
    """

    #: Ordered tier names, cheapest first; the last entry is the final
    #: (neural) tier the scheduler serves.
    tiers: Tuple[str, ...] = ("per_table", "neural")
    #: JSON calibration file persisted alongside the model (None = routes
    #: uncalibrated until :meth:`EstimatorCascade.calibrate` runs).
    calibration_path: Optional[str] = None
    #: Default per-query accuracy contract: a tier answers only when its
    #: calibrated p95 q-error bound for the query's class fits this.
    default_max_q_error: float = 4.0
    #: Default per-query latency budget in milliseconds (None = none);
    #: requests may override it per call (HTTP ``budget_ms``).
    default_budget_ms: Optional[float] = None
    #: Minimum held-out queries per (tier, class) before the calibrated
    #: bound is trusted; thinner classes escalate.
    min_class_queries: int = 8
    #: Rolling staleness q-error at which the neural tier's bound is
    #: demoted (multiplied by the staleness), leaning routing on the
    #: cheap tiers while the model drifts.
    demote_staleness_qerror: float = 2.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", tuple(self.tiers))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ServingError` naming the first invalid field."""
        if not self.tiers:
            raise ServingError("tiers must name at least one tier")
        seen = set()
        for name in self.tiers:
            if not name or not isinstance(name, str):
                raise ServingError(f"tier names must be non-empty strings, got {name!r}")
            if name in seen:
                raise ServingError(f"duplicate cascade tier {name!r}")
            seen.add(name)
        if self.default_max_q_error < 1.0:
            raise ServingError("default_max_q_error must be >= 1")
        if self.default_budget_ms is not None and self.default_budget_ms <= 0:
            raise ServingError("default_budget_ms must be positive (or None)")
        if self.min_class_queries < 1:
            raise ServingError("min_class_queries must be >= 1")
        if self.demote_staleness_qerror < 1.0:
            raise ServingError("demote_staleness_qerror must be >= 1")

    @classmethod
    def from_dict(cls, values: dict) -> "CascadeConfig":
        """Build from a plain mapping; unknown keys are hard errors."""
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(values) - known)
        if unknown:
            raise ServingError(
                f"unknown CascadeConfig field(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**values)

    def to_dict(self) -> dict:
        """Plain-dict form; ``from_dict(to_dict())`` round-trips exactly."""
        out = dataclasses.asdict(self)
        out["tiers"] = list(self.tiers)
        return out


@dataclass(frozen=True)
class ServingConfig:
    """Validated bundle of scheduler, pool, registry and refresh knobs.

    Frozen so a config shared between a service, its pools and its
    refreshers can never drift; derive variants with
    :func:`dataclasses.replace`.
    """

    # -- micro-batching scheduler ------------------------------------
    #: Largest micro-batch one flush may coalesce.
    max_batch: int = 64
    #: Longest a request waits (microseconds) for batch-mates.
    max_wait_us: int = 2000
    #: Plan-keyed LRU result-cache entries per model (0 disables).
    cache_size: int = 1024
    #: Default progressive-sample count (None = each model's config).
    n_samples: Optional[int] = None
    #: Default variance-adaptive sampling bound: queries probe with a small
    #: walk and escalate to the full ``n_samples`` only when their relative
    #: standard error exceeds this (None = fixed-samples serving). Requests
    #: may override it per call.
    max_rel_var: Optional[float] = None

    # -- registry -----------------------------------------------------
    #: Byte budget for resident models (None = unbounded).
    budget_bytes: Optional[int] = None

    # -- worker pool (PR 6) -------------------------------------------
    #: Worker processes per served model; 0 = inline single-process
    #: serving (the bitwise-reference path, and the default).
    workers: int = 0
    #: multiprocessing start method (None = "spawn"; "fork" is unsafe
    #: with threaded BLAS and exists for constrained test environments).
    worker_start: Optional[str] = None
    #: Smallest per-worker shard; batches below ``workers * min_shard``
    #: queries use fewer workers rather than shipping tiny shards.
    min_shard: int = 4
    #: In-flight micro-batches per worker before the scheduler's flusher
    #: blocks (backpressure that re-enables request coalescing).
    max_inflight: int = 2

    # -- resilience (PR 9) --------------------------------------------
    #: Consecutive primary failures before a model's circuit breaker
    #: opens and (when a fallback estimator is registered) traffic is
    #: served degraded; see :mod:`repro.serving.resilience`.
    breaker_failures: int = 5
    #: Seconds an open breaker waits before letting a half-open probe
    #: through to the primary.
    breaker_cooldown_s: float = 1.0

    # -- streaming refresh (RefreshPolicy twin) -----------------------
    drift_threshold: float = 0.05
    ingest_threshold: float = 0.10
    qerror_threshold: Optional[float] = None
    retrain_drift_threshold: float = 0.5
    fast_fraction: float = FAST_REFRESH_FRACTION
    train_duty: Optional[float] = 0.3
    min_interval_seconds: float = 0.0
    #: Background refresher poll cadence (seconds).
    poll_interval: float = 0.05

    # -- HTTP front end (PR 7) ----------------------------------------
    #: Network front-end section (None = in-process serving only).
    http: Optional[HttpConfig] = None

    # -- estimator cascade (PR 10) ------------------------------------
    #: Routing section for :meth:`EstimationService.enable_cascade`
    #: (None = every query goes straight to the neural model).
    cascade: Optional[CascadeConfig] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ServingError` naming the first invalid field."""
        if self.max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if self.max_wait_us < 0:
            raise ServingError("max_wait_us must be >= 0")
        if self.cache_size < 0:
            raise ServingError("cache_size must be >= 0 (0 disables caching)")
        if self.n_samples is not None and self.n_samples < 1:
            raise ServingError("n_samples must be >= 1 (or None for per-model default)")
        if self.max_rel_var is not None and self.max_rel_var < 0:
            raise ServingError("max_rel_var must be >= 0 (or None for fixed samples)")
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ServingError("budget_bytes must be positive (or None for unbounded)")
        if self.workers < 0:
            raise ServingError("workers must be >= 0 (0 serves inline)")
        if self.worker_start is not None and self.worker_start not in (
            "spawn", "fork", "forkserver"
        ):
            raise ServingError(
                f"worker_start must be spawn/fork/forkserver, got {self.worker_start!r}"
            )
        if self.min_shard < 1:
            raise ServingError("min_shard must be >= 1")
        if self.max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        if self.breaker_failures < 1:
            raise ServingError("breaker_failures must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ServingError("breaker_cooldown_s must be >= 0")
        for field in ("drift_threshold", "ingest_threshold", "retrain_drift_threshold"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ServingError(f"{field} must be within [0, 1], got {value!r}")
        if self.qerror_threshold is not None and self.qerror_threshold < 1.0:
            raise ServingError("qerror_threshold must be >= 1 (or None to disable)")
        if not 0.0 < self.fast_fraction <= 1.0:
            raise ServingError("fast_fraction must be within (0, 1]")
        if self.train_duty is not None and not 0.0 < self.train_duty <= 1.0:
            raise ServingError("train_duty must be within (0, 1] (or None = unthrottled)")
        if self.min_interval_seconds < 0:
            raise ServingError("min_interval_seconds must be >= 0")
        if self.poll_interval <= 0:
            raise ServingError("poll_interval must be positive")
        if self.http is not None:
            if not isinstance(self.http, HttpConfig):
                raise ServingError(
                    f"http must be an HttpConfig (or None), got {type(self.http).__name__}"
                )
            self.http.validate()
        if self.cascade is not None:
            if not isinstance(self.cascade, CascadeConfig):
                raise ServingError(
                    "cascade must be a CascadeConfig (or None), got "
                    f"{type(self.cascade).__name__}"
                )
            self.cascade.validate()

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, values: dict) -> "ServingConfig":
        """Build from a plain mapping; unknown keys are hard errors.

        Serving configs come from deployment files — a misspelled knob
        silently falling back to its default is exactly the failure mode
        this class exists to kill.
        """
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(values) - known)
        if unknown:
            raise ServingError(
                f"unknown ServingConfig field(s) {unknown}; known: {sorted(known)}"
            )
        http = values.get("http")
        if isinstance(http, dict):
            values = dict(values)
            values["http"] = HttpConfig.from_dict(http)
        cascade = values.get("cascade")
        if isinstance(cascade, dict):
            values = dict(values)
            values["cascade"] = CascadeConfig.from_dict(cascade)
        return cls(**values)

    def to_dict(self) -> dict:
        """Plain-dict form; ``from_dict(to_dict())`` round-trips exactly."""
        out = dataclasses.asdict(self)
        if self.http is not None:
            out["http"] = self.http.to_dict()
        if self.cascade is not None:
            out["cascade"] = self.cascade.to_dict()
        return out

    # ------------------------------------------------------------------
    def scheduler_opts(self) -> dict:
        """Keyword arguments for :class:`MicroBatchScheduler`."""
        return dict(
            max_batch=self.max_batch,
            max_wait_us=self.max_wait_us,
            cache_size=self.cache_size,
            n_samples=self.n_samples,
            max_rel_var=self.max_rel_var,
        )

    def pool_opts(self) -> dict:
        """Keyword arguments for :class:`~repro.serving.workers.WorkerPool`."""
        return dict(
            n_workers=max(self.workers, 1),
            start_method=self.worker_start,
            min_shard=self.min_shard,
            max_inflight=self.max_inflight,
        )

    def refresh_policy(self) -> RefreshPolicy:
        """The :class:`RefreshPolicy` twin of this config's refresh fields."""
        return RefreshPolicy(
            drift_threshold=self.drift_threshold,
            ingest_threshold=self.ingest_threshold,
            qerror_threshold=self.qerror_threshold,
            retrain_drift_threshold=self.retrain_drift_threshold,
            fast_fraction=self.fast_fraction,
            train_duty=self.train_duty,
            min_interval_seconds=self.min_interval_seconds,
        )
