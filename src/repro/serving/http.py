"""Asyncio HTTP front end: the estimation service meets the network.

A hand-rolled HTTP/1.1 server over :func:`asyncio.start_server` (stdlib
only — no framework dependency) exposing an
:class:`~repro.serving.service.EstimationService` to remote callers:

``POST /v1/models/{name}/estimate``
    Single (``{"query": {...}}``) or batch (``{"queries": [...]}``)
    bodies, queries in the JSON filter DSL of
    :mod:`repro.relational.dsl`. Optional ``seed``/``seeds`` pin
    per-query generators (the wire answer is then bitwise-equal to the
    in-process scheduler's), ``n_samples`` overrides the progressive
    sample count, ``max_rel_var`` opts the request into
    variance-adaptive sampling (probe walk, escalate only past the
    bound), and ``deadline_ms`` bounds the whole request —
    requests predicted to miss it are shed with 503 *before* consuming
    scheduler batch slots (see :mod:`repro.serving.admission`).
    With an estimator cascade attached (:mod:`repro.serving.cascade`),
    ``budget_ms``/``max_q_error`` set the per-query routing contract and
    responses carry ``"tier"`` (or per-query ``"tiers"``) naming the
    estimator that answered.

``GET /healthz``
    Liveness/readiness JSON: registry contents, scheduler/pool/refresher
    state, draining flag (503 while draining).

``GET /metrics``
    Prometheus text format: per-tenant request/shed counters and latency
    histograms plus scheduler, worker-pool, registry, and
    DriftMonitor-staleness gauges scraped live from the service.

Concurrency model: the event loop parses requests and compiles the DSL;
``service.submit`` hands queries to the micro-batching scheduler whose
flusher/pool threads do the heavy lifting, and the resulting
``concurrent.futures.Future`` is awaited via :func:`asyncio.wrap_future`.
The loop therefore stays responsive while NumPy crunches — wire requests
coalesce into micro-batches exactly like in-process submits do.

Graceful drain (SIGTERM in :func:`serve`, or :meth:`drain`): stop
accepting connections, answer in-flight requests to completion, reject
late arrivals with 503 + ``Retry-After``, then optionally close the
service (schedulers, then worker pools). Zero in-flight futures are
dropped.
"""

from __future__ import annotations

import asyncio
import json
import math
import socket
import threading
import time
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlineError, InjectedFaultError, QueryError, ReproError, ServingError
from repro.relational.dsl import query_from_dict
from repro.serving import faults
from repro.serving.admission import AdmissionController
from repro.serving.config import HttpConfig
from repro.serving.metrics import MetricsRegistry
from repro.serving.service import EstimationService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_ESTIMATE_KEYS = frozenset(
    {
        "query",
        "queries",
        "seed",
        "seeds",
        "n_samples",
        "max_rel_var",
        "deadline_ms",
        "budget_ms",
        "max_q_error",
    }
)


class _BadRequest(Exception):
    """Internal: maps straight to a 400 with its message."""


class _Conn:
    """Per-connection state the drain loop inspects."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class EstimationHttpServer:
    """The asyncio server object; one per bound socket.

    ``config`` precedence: explicit argument, then
    ``service.config.http``, then :class:`HttpConfig` defaults. Use
    :class:`HttpServerThread` from synchronous code, or :func:`serve` as
    a blocking process entrypoint with SIGTERM-triggered drain.
    """

    def __init__(
        self,
        service: EstimationService,
        config: Optional[HttpConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if config is None:
            config = getattr(service.config, "http", None) or HttpConfig()
        self.service = service
        self.config = config
        self.admission = AdmissionController(
            max_queue=config.max_queue,
            default_quota=config.default_quota(),
            tenants=config.tenants,
            strict_tenants=config.strict_tenants,
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_http_requests_total",
            "Estimate-endpoint responses by tenant and status code.",
        )
        self._queries = self.metrics.counter(
            "repro_http_queries_total",
            "Queries answered with a 200 by tenant.",
        )
        self._shed = self.metrics.counter(
            "repro_http_shed_total",
            "Requests rejected by admission, by tenant and reason.",
        )
        self._latency = self.metrics.histogram(
            "repro_http_request_seconds",
            "Admitted estimate-request wall time by tenant.",
        )
        self._degraded_queries = self.metrics.counter(
            "repro_http_degraded_total",
            "Queries answered by the degraded-mode fallback, by tenant.",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._draining = False
        self._drained = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "EstimationHttpServer":
        if self._server is not None:
            raise ServingError("server already started")
        self._server = await asyncio.start_server(
            self._serve_conn, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise ServingError("server not started")
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(
        self, *, grace_s: Optional[float] = None, close_service: bool = False
    ) -> None:
        """Stop accepting, flush in-flight requests, optionally close the pool.

        Idempotent. In-flight requests (including their scheduler futures)
        complete and are answered; idle keep-alive connections are closed;
        anything still running after ``grace_s`` is abandoned to the
        daemon threads.
        """
        grace = grace_s if grace_s is not None else self.config.drain_grace_s
        first = not self._draining
        self._draining = True
        if first and self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        # Let busy connections answer their current request, then close
        # idle ones (their readline sees EOF and the handler exits).
        while any(c.busy for c in self._conns) and loop.time() < deadline:
            await asyncio.sleep(0.005)
        for conn in list(self._conns):
            if not conn.busy:
                conn.writer.close()
        while self._conns and loop.time() < deadline:
            await asyncio.sleep(0.005)
        if close_service and not self._drained:
            self._drained = True
            await loop.run_in_executor(None, self.service.close)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        injector = faults.get_active()
        if injector is not None:
            # Chaos seam: an ``http.connection`` fault (any kind) aborts the
            # connection before the first request is read — the client sees
            # the mid-flight disconnect its retry policy must survive.
            try:
                fired = injector.check("http.connection") is not None
            except InjectedFaultError:
                fired = True
            if fired:
                writer.close()
                return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        conn = _Conn(writer)
        self._conns.add(conn)
        try:
            while True:
                conn.busy = False
                try:
                    request_line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not request_line:
                    break  # client closed (or drain closed an idle conn)
                conn.busy = True
                keep_alive = await self._serve_request(
                    request_line, reader, writer
                )
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(conn)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _serve_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Parse one request, route it, write the response; True = keep alive."""
        try:
            method, path, _version = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return False
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(writer, 400, {"error": "bad Content-Length"})
            return False
        if length > self.config.max_body_bytes:
            await self._respond(
                writer,
                413,
                {"error": f"body exceeds {self.config.max_body_bytes} bytes"},
            )
            return False
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return False
        status, payload, extra = await self._route(method, path, headers, body)
        content_type = "application/json"
        if isinstance(payload, str):
            data = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload).encode()
        keep_alive = (
            not self._draining
            and headers.get("connection", "keep-alive").lower() != "close"
        )
        await self._respond(
            writer, status, data, keep_alive=keep_alive,
            content_type=content_type, extra=extra, encoded=True,
        )
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        *,
        keep_alive: bool = False,
        content_type: str = "application/json",
        extra: Sequence[Tuple[str, str]] = (),
        encoded: bool = False,
    ) -> None:
        data = payload if encoded else json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, object, List[Tuple[str, str]]]:
        path = path.partition("?")[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, []
            return self._healthz()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, []
            return 200, self._render_metrics(), []
        parts = path.split("/")
        # /v1/models/{name}/estimate -> ["", "v1", "models", name, "estimate"]
        if len(parts) == 5 and parts[1:3] == ["v1", "models"] and parts[4] == "estimate":
            if method != "POST":
                return 405, {"error": "use POST"}, []
            return await self._estimate(parts[3], headers, body)
        return 404, {"error": f"no route for {path!r}"}, []

    # ------------------------------------------------------------------
    # POST /v1/models/{name}/estimate
    # ------------------------------------------------------------------
    async def _estimate(
        self, model: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, object, List[Tuple[str, str]]]:
        tenant = headers.get("x-tenant", "default")
        started = time.perf_counter()

        def finish(status: int, payload, extra=()) -> Tuple[int, object, list]:
            self._requests.inc(tenant=tenant, code=str(status))
            return status, payload, list(extra)

        if self._draining:
            self._shed.inc(tenant=tenant, reason="draining")
            return finish(503, {"error": "server is draining"}, [("Retry-After", "1")])
        try:
            (
                queries, seeds, single, n_samples, max_rel_var, deadline_s,
                budget_ms, max_q_error,
            ) = self._parse_estimate(body)
        except _BadRequest as exc:
            return finish(400, {"error": str(exc)})
        if model not in self.service.registry:
            return finish(404, {"error": f"unknown model {model!r}"})

        decision = self.admission.admit(
            tenant, cost=len(queries), deadline_s=deadline_s
        )
        if not decision.admitted:
            self._shed.inc(tenant=tenant, reason=decision.reason)
            retry = [("Retry-After", str(max(1, math.ceil(decision.retry_after))))]
            return finish(
                decision.status,
                {"error": f"rejected by admission ({decision.reason})"},
                retry if decision.status in (429, 503) else [],
            )
        # Absolute deadline rides the request through scheduler and pool:
        # work still queued when it passes fails with DeadlineError (504
        # here) *before* dispatch, so expired requests never hold a worker.
        abs_deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )
        try:
            try:
                futures = [
                    self.service.submit(
                        query, model=model, seed=seed, n_samples=n_samples,
                        max_rel_var=max_rel_var, deadline=abs_deadline,
                        budget_ms=budget_ms, max_q_error=max_q_error,
                    )
                    for query, seed in zip(queries, seeds)
                ]
            except QueryError as exc:
                return finish(400, {"error": str(exc)})
            except ServingError as exc:
                return finish(503, {"error": str(exc)})
            gathered = asyncio.gather(
                *[asyncio.wrap_future(f) for f in futures]
            )
            try:
                if deadline_s is not None:
                    remaining = deadline_s - (time.perf_counter() - started)
                    estimates = await asyncio.wait_for(gathered, max(remaining, 0.001))
                else:
                    estimates = await gathered
            except asyncio.TimeoutError:
                return finish(504, {"error": "deadline exceeded in flight"})
            except DeadlineError as exc:
                return finish(504, {"error": str(exc)})
            except QueryError as exc:
                return finish(400, {"error": str(exc)})
            except ReproError as exc:
                return finish(503, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - surfaced as a 500
                return finish(500, {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            elapsed = time.perf_counter() - started
            self.admission.release(elapsed)
            self._latency.observe(elapsed, tenant=tenant)
        self._queries.inc(len(queries), tenant=tenant)
        n_degraded = sum(
            1 for f in futures if getattr(f, "degraded", False)
        )
        if n_degraded:
            self._degraded_queries.inc(n_degraded, tenant=tenant)
        payload: Dict[str, object] = {"model": model}
        if single:
            payload["estimate"] = float(estimates[0])
        else:
            payload["estimates"] = [float(e) for e in estimates]
        if n_degraded:
            payload["degraded"] = True
        tiers = [getattr(f, "tier", None) for f in futures]
        if any(t is not None for t in tiers):
            # Cascade-routed answers report who answered; responses keep
            # their pre-cascade shape when no cascade is attached.
            if single:
                payload["tier"] = tiers[0]
            else:
                payload["tiers"] = tiers
        return finish(200, payload)

    def _parse_estimate(self, body: bytes):
        """Decode and validate an estimate body; raises :class:`_BadRequest`."""
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise _BadRequest("body must be a JSON object")
        unknown = sorted(set(doc) - _ESTIMATE_KEYS)
        if unknown:
            raise _BadRequest(
                f"unknown body key(s) {unknown}; known: {sorted(_ESTIMATE_KEYS)}"
            )
        if ("query" in doc) == ("queries" in doc):
            raise _BadRequest("body must carry exactly one of 'query' or 'queries'")
        single = "query" in doc
        raw_queries = [doc["query"]] if single else doc["queries"]
        if not isinstance(raw_queries, list) or not raw_queries:
            raise _BadRequest("'queries' must be a non-empty list")
        if single and "seeds" in doc:
            raise _BadRequest("'seeds' requires 'queries'; use 'seed' with 'query'")
        if not single and "seed" in doc:
            raise _BadRequest("'seed' requires 'query'; use 'seeds' with 'queries'")
        seeds = [doc.get("seed")] if single else doc.get("seeds")
        if seeds is None:
            seeds = [None] * len(raw_queries)
        if not isinstance(seeds, list) or len(seeds) != len(raw_queries):
            raise _BadRequest("'seeds' must be a list matching 'queries' in length")
        for seed in seeds:
            if seed is not None and not isinstance(seed, int):
                raise _BadRequest("seeds must be integers (or null)")
        n_samples = doc.get("n_samples")
        if n_samples is not None and (not isinstance(n_samples, int) or n_samples < 1):
            raise _BadRequest("'n_samples' must be a positive integer")
        max_rel_var = doc.get("max_rel_var")
        if max_rel_var is not None:
            if not isinstance(max_rel_var, (int, float)) or isinstance(
                max_rel_var, bool
            ) or max_rel_var < 0:
                raise _BadRequest("'max_rel_var' must be a non-negative number")
            max_rel_var = float(max_rel_var)
        deadline_ms = doc.get("deadline_ms", self.config.default_deadline_ms)
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise _BadRequest("'deadline_ms' must be a positive number")
        budget_ms = doc.get("budget_ms")
        if budget_ms is not None:
            if (
                not isinstance(budget_ms, (int, float))
                or isinstance(budget_ms, bool)
                or budget_ms <= 0
            ):
                raise _BadRequest("'budget_ms' must be a positive number")
            budget_ms = float(budget_ms)
        max_q_error = doc.get("max_q_error")
        if max_q_error is not None:
            if (
                not isinstance(max_q_error, (int, float))
                or isinstance(max_q_error, bool)
                or max_q_error < 1
            ):
                raise _BadRequest("'max_q_error' must be a number >= 1")
            max_q_error = float(max_q_error)
        try:
            queries = [query_from_dict(q) for q in raw_queries]
        except QueryError as exc:
            raise _BadRequest(str(exc)) from exc
        deadline_s = deadline_ms / 1e3 if deadline_ms is not None else None
        return (
            queries, seeds, single, n_samples, max_rel_var, deadline_s,
            budget_ms, max_q_error,
        )

    # ------------------------------------------------------------------
    # GET /healthz
    # ------------------------------------------------------------------
    def _healthz(self) -> Tuple[int, object, List[Tuple[str, str]]]:
        service_stats = self.service.stats()
        refreshers = {}
        degraded = False
        for refresher in self.service.refreshers:
            alive = (
                refresher._thread is not None and refresher._thread.is_alive()
            )
            failed = refresher.last_error is not None
            degraded = degraded or failed or not alive
            refreshers[refresher.name] = {
                "alive": alive,
                "last_error": (
                    str(refresher.last_error) if failed else None
                ),
                **refresher.stats(),
            }
        status = "draining" if self._draining else (
            "degraded" if degraded else "ok"
        )
        payload = {
            "status": status,
            "models": sorted(self.service.registry.names()),
            "registry": service_stats["registry"],
            "schedulers": service_stats.get("models", {}),
            "pools": service_stats.get("pools", {}),
            "refreshers": refreshers,
            "admission": self.admission.stats(),
            "cascade": service_stats.get("cascade", {}),
        }
        return (503 if self._draining else 200), payload, []

    # ------------------------------------------------------------------
    # GET /metrics
    # ------------------------------------------------------------------
    def _render_metrics(self) -> str:
        """Request counters plus live service gauges, Prometheus text."""
        inflight = self.metrics.gauge(
            "repro_http_inflight", "Requests currently past admission."
        )
        inflight.set(self.admission.in_flight)
        service_stats = self.service.stats()
        scheduler_g = self.metrics.gauge(
            "repro_scheduler_stat", "Micro-batch scheduler telemetry."
        )
        for model, stats in service_stats.get("models", {}).items():
            for key, value in stats.items():
                scheduler_g.set(float(value), model=model, stat=key)
        pool_g = self.metrics.gauge(
            "repro_worker_pool_stat", "Worker-pool telemetry."
        )
        for model, stats in service_stats.get("pools", {}).items():
            for key, value in stats.items():
                pool_g.set(float(value), model=model, stat=key)
        registry_g = self.metrics.gauge(
            "repro_registry_stat", "Model-registry telemetry."
        )
        for key, value in service_stats["registry"].items():
            registry_g.set(float(value), stat=key)
        resilience_g = self.metrics.gauge(
            "repro_resilience_stat",
            "Circuit-breaker + degraded-fallback telemetry "
            "(state: 0=closed 1=half_open 2=open).",
        )
        for model, stats in service_stats.get("resilience", {}).items():
            for key, value in stats.items():
                resilience_g.set(float(value), model=model, stat=key)
        tier_g = self.metrics.gauge(
            "repro_cascade_tier_total",
            "Cascade-routed queries answered, by model and tier.",
        )
        escalation_g = self.metrics.gauge(
            "repro_cascade_escalation_rate",
            "Fraction of cascade-routed queries escalated to the final tier.",
        )
        demotion_g = self.metrics.gauge(
            "repro_cascade_staleness_demotion",
            "Multiplier applied to the neural tier's calibrated bound "
            "(1.0 = fresh model).",
        )
        for model, cstats in service_stats.get("cascade", {}).items():
            for tier, count in cstats.get("tiers", {}).items():
                tier_g.set(float(count), model=model, tier=tier)
            escalation_g.set(float(cstats.get("escalation_rate", 0.0)), model=model)
            demotion_g.set(float(cstats.get("staleness_demotion", 1.0)), model=model)
        staleness_qerror = self.metrics.gauge(
            "repro_drift_staleness_qerror",
            "Rolling served-estimate q-error vs reported truths.",
        )
        divergence = self.metrics.gauge(
            "repro_drift_max_divergence",
            "Max per-column TV divergence of live data vs the served model.",
        )
        ingested = self.metrics.gauge(
            "repro_drift_ingested_fraction",
            "Rows ingested since the served model's snapshot, as a fraction.",
        )
        for refresher in self.service.refreshers:
            report = refresher.monitor.observe(*refresher.ingestor.snapshot())
            staleness_qerror.set(report.staleness_qerror, model=refresher.name)
            divergence.set(report.max_divergence, model=refresher.name)
            ingested.set(report.ingested_fraction, model=refresher.name)
        return self.metrics.render()


class HttpServerThread:
    """Run an :class:`EstimationHttpServer` on a background event loop.

    The synchronous adapter everything non-async uses (tests, benchmarks,
    examples)::

        with HttpServerThread(service, HttpConfig(port=0)) as server:
            client = HttpEstimationClient(server.host, server.port, ...)

    ``stop`` (or context exit) drains gracefully: in-flight requests are
    answered, late ones see 503, the loop is torn down. Pass
    ``close_service=True`` to also close the underlying service after the
    drain (the SIGTERM path of :func:`serve` always does).
    """

    def __init__(
        self, service: EstimationService, config: Optional[HttpConfig] = None
    ):
        self._service = service
        self._config = config
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[EstimationHttpServer] = None
        #: True once a stop() drain exceeded its timeout — requests may
        #: have been abandoned mid-flight when the loop was torn down.
        self.drain_timed_out = False

    # ------------------------------------------------------------------
    def start(self) -> "HttpServerThread":
        if self._thread is not None:
            raise ServingError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="http-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise ServingError("HTTP server failed to start") from self._startup_error
        if self.server is None:
            raise ServingError("HTTP server did not start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = EstimationHttpServer(self._service, self._config)
            loop.run_until_complete(server.start())
            self.server = server
            self._ready.set()
            loop.run_forever()
            # Drain scheduled by stop(): run callbacks queued at shutdown.
            loop.run_until_complete(asyncio.sleep(0))
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    def stop(self, *, close_service: bool = False, timeout: float = 60.0) -> None:
        """Drain the server and tear the loop down. Idempotent."""
        thread, loop, server = self._thread, self._loop, self.server
        if thread is None or loop is None:
            return
        self._thread = None
        if server is not None and not loop.is_closed():
            drained = asyncio.run_coroutine_threadsafe(
                server.drain(close_service=close_service), loop
            )
            try:
                drained.result(timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError):
                # Don't swallow a botched drain: flag it and warn so tests
                # and operators see that in-flight requests may have been
                # abandoned when the loop went down.
                self.drain_timed_out = True
                drained.cancel()
                warnings.warn(
                    f"HTTP server drain did not complete within {timeout}s; "
                    "tearing the event loop down with requests possibly "
                    "still in flight",
                    RuntimeWarning,
                    stacklevel=2,
                )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        if self.server is None:
            raise ServingError("server not started")
        return self.server.host

    @property
    def port(self) -> int:
        if self.server is None:
            raise ServingError("server not started")
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "HttpServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    service: EstimationService, config: Optional[HttpConfig] = None
) -> None:
    """Blocking process entrypoint: serve until SIGTERM/SIGINT, then drain.

    The production shape: bind, install signal handlers, serve forever;
    on the first signal stop accepting, flush in-flight futures, close
    the service (schedulers then worker pools), and return.
    """
    asyncio.run(_serve_async(service, config))


async def _serve_async(
    service: EstimationService, config: Optional[HttpConfig]
) -> None:
    import signal

    server = EstimationHttpServer(service, config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platform without signal support
    await stop.wait()
    await server.drain(close_service=True)


__all__ = [
    "EstimationHttpServer",
    "HttpServerThread",
    "serve",
]
