"""Concurrent estimation service: registry + scheduler + worker pools.

The serving layer turns many concurrent single-query callers into the
batched inference fast path:

* :class:`ModelRegistry` — named fitted estimators with lazy artifact
  loading, size-budgeted eviction, and non-blocking hot-swap/refresh;
* :class:`MicroBatchScheduler` — coalesces concurrent ``submit(query)``
  calls into single ``estimate_batch`` invocations (max-batch /
  max-wait-µs policy) with per-caller futures and a plan-keyed LRU result
  cache;
* :class:`WorkerPool` — shards those micro-batches across N worker
  processes that attach the model's weights and compiled buffers from
  immutable versioned shared-memory blobs (zero-copy, hot-swap aware);
* :class:`ServingConfig` — every serving knob in one validated,
  dict-round-trippable dataclass;
* :class:`EstimationService` — the façade tying all of it together;
* :mod:`repro.serving.updates` — streaming ingest, drift monitoring, and
  background refresh, so the served model stays fresh while the underlying
  data changes under load (:class:`StreamingIngestor`,
  :class:`DriftMonitor`, :class:`RefreshPolicy`,
  :class:`BackgroundRefresher`);
* :mod:`repro.serving.http` — an asyncio HTTP/1.1 front end exposing the
  service over the network (:class:`EstimationHttpServer`,
  :class:`HttpServerThread`, :func:`~repro.serving.http.serve`) with
  per-tenant admission control (:class:`~repro.serving.admission.AdmissionController`,
  :class:`TenantQuota`, :class:`HttpConfig`) and Prometheus ``/metrics``;
* :class:`HttpEstimationClient` — the wire client, protocol-compatible
  with every in-process client above;
* :mod:`repro.serving.faults` — deterministic fault injection
  (:class:`FaultPlan`, :class:`FaultInjector`) at named seams across the
  stack, and :mod:`repro.serving.resilience` — the per-model
  :class:`CircuitBreaker` behind
  :meth:`EstimationService.register_fallback`'s degraded-mode cascade
  (see ``docs/resilience.md``);
* :mod:`repro.serving.cascade` — the latency-budgeted estimator cascade
  (:class:`EstimatorCascade`, :class:`CascadeCalibration`,
  :class:`QueryFeatures`): cheap tiers answer easy queries inline, only
  the hard tail escalates to the neural model (see
  ``docs/estimators.md``); configured via :class:`CascadeConfig` and
  attached with :meth:`EstimationService.attach_cascade` /
  :meth:`EstimationService.enable_cascade`.

Everything that answers queries — a bare estimator, a scheduler, a
service, a worker pool — satisfies the :class:`EstimationClient`
protocol, so harnesses and applications can be written once against the
protocol and handed any serving depth.
"""

from typing import Protocol, Sequence, runtime_checkable

from repro.serving.admission import AdmissionController, TenantQuota
from repro.serving.cascade import CascadeCalibration, EstimatorCascade, QueryFeatures
from repro.serving.config import CascadeConfig, HttpConfig, ServingConfig
from repro.serving.faults import FaultInjector, FaultPlan, FaultSpec, injected
from repro.serving.http import EstimationHttpServer, HttpServerThread, serve
from repro.serving.http_client import HttpEstimationClient
from repro.serving.metrics import MetricsRegistry
from repro.serving.registry import ModelRegistry
from repro.serving.resilience import CircuitBreaker
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.service import EstimationService
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    DriftReport,
    RefreshEvent,
    RefreshPolicy,
    StreamingIngestor,
)
from repro.serving.workers import WorkerPool


@runtime_checkable
class EstimationClient(Protocol):
    """Anything that answers cardinality queries, at any serving depth.

    :class:`~repro.core.estimator.NeuroCard`, :class:`MicroBatchScheduler`,
    :class:`EstimationService` and :class:`WorkerPool` all conform, so
    :func:`repro.eval.harness.evaluate_estimator` (including its
    ``concurrency=N`` closed-loop mode) and application code accept any of
    them interchangeably. Clients with a ``submit(query) -> Future`` method
    additionally support pipelined (non-blocking) submission; callers that
    need it should feature-test with ``hasattr``.
    """

    def estimate(self, query, **kwargs) -> float:
        """Blocking single-query COUNT(*) estimate."""
        ...  # pragma: no cover - protocol stub

    def estimate_batch(self, queries: Sequence, **kwargs):
        """Estimates for ``queries``, in order (array-like of float)."""
        ...  # pragma: no cover - protocol stub


__all__ = [
    "EstimationClient",
    "EstimationService",
    "MicroBatchScheduler",
    "ModelRegistry",
    "ServingConfig",
    "WorkerPool",
    "StreamingIngestor",
    "DriftMonitor",
    "DriftReport",
    "RefreshPolicy",
    "RefreshEvent",
    "BackgroundRefresher",
    "AdmissionController",
    "TenantQuota",
    "HttpConfig",
    "EstimationHttpServer",
    "HttpServerThread",
    "HttpEstimationClient",
    "MetricsRegistry",
    "serve",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "injected",
    "CircuitBreaker",
    "EstimatorCascade",
    "CascadeCalibration",
    "CascadeConfig",
    "QueryFeatures",
]
