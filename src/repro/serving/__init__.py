"""Concurrent estimation service: model registry + micro-batching scheduler.

The serving layer turns many concurrent single-query callers into the
batched inference fast path:

* :class:`ModelRegistry` — named fitted estimators with lazy artifact
  loading, size-budgeted eviction, and non-blocking hot-swap/refresh;
* :class:`MicroBatchScheduler` — coalesces concurrent ``submit(query)``
  calls into single ``estimate_batch`` invocations (max-batch /
  max-wait-µs policy) with per-caller futures and a plan-keyed LRU result
  cache;
* :class:`EstimationService` — the façade tying both together;
* :mod:`repro.serving.updates` — streaming ingest, drift monitoring, and
  background refresh, so the served model stays fresh while the underlying
  data changes under load (:class:`StreamingIngestor`,
  :class:`DriftMonitor`, :class:`RefreshPolicy`,
  :class:`BackgroundRefresher`).
"""

from repro.serving.registry import ModelRegistry
from repro.serving.scheduler import MicroBatchScheduler
from repro.serving.service import EstimationService
from repro.serving.updates import (
    BackgroundRefresher,
    DriftMonitor,
    DriftReport,
    RefreshEvent,
    RefreshPolicy,
    StreamingIngestor,
)

__all__ = [
    "EstimationService",
    "MicroBatchScheduler",
    "ModelRegistry",
    "StreamingIngestor",
    "DriftMonitor",
    "DriftReport",
    "RefreshPolicy",
    "RefreshEvent",
    "BackgroundRefresher",
]
